//! End-to-end integration: the full pipeline from rule generation
//! through training to a validated, deployable tree, spanning every
//! crate in the workspace.

use baselines::{build_hicuts, HiCutsConfig};
use classbench::{
    generate_rules, generate_trace, parse_rules, write_rules, ClassifierFamily, GeneratorConfig,
    TraceConfig,
};
use dtree::validate::assert_tree_valid;
use dtree::TreeStats;
use neurocuts::{NeuroCutsConfig, PartitionMode, Trainer};

mod common;
use common::best_or_greedy;

#[test]
fn generate_train_classify_pipeline() {
    // Generate -> serialise -> parse (the ClassBench interchange loop).
    let generated =
        generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(100));
    let rules = parse_rules(&write_rules(&generated)).expect("format round-trips");
    assert_eq!(rules.len(), generated.len());

    // Train with a tiny budget.
    let mut trainer = Trainer::new(rules.clone(), NeuroCutsConfig::smoke_test()).unwrap();
    let (tree, _) = best_or_greedy(&mut trainer);
    assert_tree_valid(&tree, 400, 101);

    // The learned tree and the baseline agree with the ground truth on
    // a realistic trace.
    let hicuts = build_hicuts(&rules, &HiCutsConfig::default());
    let trace = generate_trace(&rules, &TraceConfig::new(600).with_seed(102));
    for p in &trace {
        let truth = rules.classify(p);
        assert_eq!(tree.classify(p), truth);
        assert_eq!(hicuts.classify(p), truth);
    }
}

#[test]
fn trained_policy_transfers_within_same_rules() {
    // Checkpoint a policy, restore it into a fresh trainer, and verify
    // the greedy trees coincide — the deployment story for retraining
    // on classifier updates.
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 90).with_seed(103));
    let mut a = Trainer::new(rules.clone(), NeuroCutsConfig::smoke_test()).unwrap();
    let _ = a.step().unwrap();
    let ckpt = a.save_policy();
    let (_, sa) = a.greedy_tree();

    let mut b = Trainer::new(rules, NeuroCutsConfig::smoke_test()).unwrap();
    b.load_policy(&ckpt).unwrap();
    let (tb, sb) = b.greedy_tree();
    assert_eq!(sa, sb);
    assert_tree_valid(&tb, 300, 104);
}

#[test]
fn all_partition_modes_end_to_end() {
    for mode in [PartitionMode::None, PartitionMode::Simple, PartitionMode::EffiCuts] {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(105));
        let cfg = NeuroCutsConfig::smoke_test().with_partition_mode(mode);
        let mut trainer = Trainer::new(rules.clone(), cfg).unwrap();
        let (tree, stats) = best_or_greedy(&mut trainer);
        assert_tree_valid(&tree, 300, 106);
        assert!(stats.time >= 1, "{mode:?}");
    }
}

#[test]
fn space_objective_trains_smaller_trees_than_it_reports() {
    // Untrained-policy rollouts are heavy-tailed; scan a few seeds until
    // one training run completes a tree within the smoke budget.
    let best = (107u64..117)
        .find_map(|seed| {
            let rules =
                generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(seed));
            let cfg = NeuroCutsConfig::smoke_test().with_coeff(0.0).with_seed(seed);
            Trainer::new(rules, cfg).unwrap().train().unwrap().best
        })
        .expect("at least one of ten seeds completes a tree");
    // c = 0 with log scaling: objective is log(bytes).
    let expect = (best.stats.bytes as f64
        - (dtree::MemoryModel::default().rule_table_entry * best.tree.num_active_rules()) as f64)
        .max(1.0)
        .ln();
    assert!((best.objective - expect).abs() < 1e-6);
}

#[test]
fn stats_are_consistent_across_the_stack() {
    // TreeStats (dtree), subtree_metrics (neurocuts::reward) and the
    // harness memory model must agree about the same tree.
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 150).with_seed(108));
    let tree = build_hicuts(&rules, &HiCutsConfig::default());
    let stats = TreeStats::compute(&tree);
    let model = dtree::MemoryModel::default();
    let (time, bytes) = neurocuts::reward::subtree_metrics(&tree, &model);
    assert_eq!(stats.time, time[tree.root()]);
    assert_eq!(stats.bytes, bytes[tree.root()] + model.rule_table_entry * tree.num_active_rules());
}
