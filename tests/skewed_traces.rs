//! Differential suite for the skewed traffic generators: seed
//! determinism is pinned with golden trace hashes, and skewed traffic
//! classifies identically to the linear-scan ground truth through
//! every [`Classifier`] implementation — skew changes *which* packets
//! arrive, never *what* they match.

use baselines::Classifier;
use classbench::{
    generate_rules, generate_skewed_trace, generate_trace, trace_hash, ClassifierFamily,
    GeneratorConfig, SkewedTraceConfig, TraceConfig, TrafficSkew,
};
use neurocuts::NeuroCutsConfig;

/// Golden `trace_hash` values for acl/300/seed 0 rules with trace
/// seed 42 and 512 packets. These pin the generators' byte-for-byte
/// output across refactors and platforms (the default Zipf exponent
/// avoids `powf` precisely so these stay stable); regenerating them
/// means every committed `BENCH_sweep.json` trace identity changes,
/// so treat a mismatch as a bug unless the generator intentionally
/// changed.
const GOLDEN_UNIFORM: u64 = 0x73de_3a19_fd2e_5deb;
const GOLDEN_ZIPF: u64 = 0x062a_5562_261c_34d8;
const GOLDEN_LOCALITY: u64 = 0xbf54_2383_b871_d59c;

const SKEWS: [TrafficSkew; 3] = [TrafficSkew::Uniform, TrafficSkew::ZIPF, TrafficSkew::LOCALITY];

fn golden_rules() -> classbench::RuleSet {
    generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 300).with_seed(0))
}

fn skewed(rules: &classbench::RuleSet, skew: TrafficSkew, seed: u64) -> Vec<classbench::Packet> {
    generate_skewed_trace(rules, &SkewedTraceConfig::new(512, skew).with_seed(seed))
}

#[test]
fn golden_hashes_pin_generator_output() {
    let rules = golden_rules();
    for (skew, golden) in [
        (TrafficSkew::Uniform, GOLDEN_UNIFORM),
        (TrafficSkew::ZIPF, GOLDEN_ZIPF),
        (TrafficSkew::LOCALITY, GOLDEN_LOCALITY),
    ] {
        let h = trace_hash(&skewed(&rules, skew, 42));
        assert_eq!(
            h,
            golden,
            "{} trace hash drifted: got {h:#018x}, golden {golden:#018x}",
            skew.tag()
        );
    }
}

#[test]
fn same_seed_reproduces_different_seed_diverges() {
    let rules = golden_rules();
    for skew in SKEWS {
        let a = skewed(&rules, skew, 7);
        let b = skewed(&rules, skew, 7);
        assert_eq!(a, b, "{}: same seed must reproduce the trace", skew.tag());
        let c = skewed(&rules, skew, 8);
        assert_ne!(trace_hash(&a), trace_hash(&c), "{}: different seeds must diverge", skew.tag());
    }
}

/// The three skews generate *different* traffic from each other (same
/// seed, same rules) — otherwise the sweep's skew axis measures
/// nothing.
#[test]
fn skews_generate_distinct_traffic() {
    let rules = golden_rules();
    let hashes: Vec<u64> = SKEWS.iter().map(|&s| trace_hash(&skewed(&rules, s, 42))).collect();
    assert_ne!(hashes[0], hashes[1], "uniform vs zipf");
    assert_ne!(hashes[0], hashes[2], "uniform vs locality");
    assert_ne!(hashes[1], hashes[2], "zipf vs locality");
}

/// Skew must not perturb classification semantics: every classifier
/// answers skewed traffic exactly as the linear scan does, and the
/// uniform skew variant agrees packet-for-packet with whatever the
/// classifier says about the plain uniform generator's packets.
#[test]
fn skewed_traffic_classifies_identically_to_ground_truth() {
    let rules = golden_rules();
    let cfg = NeuroCutsConfig::smoke_test();
    let classifiers: Vec<Box<dyn Classifier>> = nc_bench::CLASSIFIER_NAMES
        .iter()
        .map(|n| nc_bench::build_classifier(n, &rules, &cfg))
        .collect();

    // Plain uniform trace: the pre-existing ground-truth path.
    let uniform = generate_trace(&rules, &TraceConfig::new(256).with_seed(9));
    for c in &classifiers {
        for p in &uniform {
            assert_eq!(c.classify(p), rules.classify(p), "{} uniform at {p}", c.name());
        }
    }

    // Skewed traces: same contract, scalar and batch.
    for skew in SKEWS {
        let trace = skewed(&rules, skew, 9);
        let truth: Vec<_> = trace.iter().map(|p| rules.classify(p)).collect();
        assert!(truth.iter().all(|t| t.is_some()), "{}: skewed packets hit rules", skew.tag());
        for c in &classifiers {
            let mut batch = vec![None; trace.len()];
            c.classify_batch(&trace, &mut batch);
            for (i, p) in trace.iter().enumerate() {
                assert_eq!(
                    c.classify(p),
                    truth[i],
                    "{} scalar on {} trace at {p}",
                    c.name(),
                    skew.tag()
                );
                assert_eq!(batch[i], truth[i], "{} batch on {} trace at {p}", c.name(), skew.tag());
            }
        }
    }
}

/// `TrafficSkew::parse` round-trips every tag the sweep emits.
#[test]
fn skew_tags_round_trip() {
    for skew in SKEWS {
        assert_eq!(TrafficSkew::parse(skew.tag()), Some(skew));
    }
    assert_eq!(TrafficSkew::parse("zipf:1.3"), Some(TrafficSkew::Zipf { exponent: 1.3 }));
    assert_eq!(
        TrafficSkew::parse("locality:8x16"),
        Some(TrafficSkew::LocalityBurst { working_set: 8, burst: 16 })
    );
    assert_eq!(TrafficSkew::parse("bursty"), None);
}
