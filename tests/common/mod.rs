//! Shared helpers for the workspace-level integration suites (each
//! suite pulls in what it needs; the rest is `dead_code` per-binary).
#![allow(dead_code)]

use classbench::RuleSet;
use dtree::{DecisionTree, TreeStats};
use neurocuts::Trainer;
use std::sync::Arc;

/// Every baseline tree builder, by harness name (the bench harness's
/// `BASELINE_NAMES` plus HyperSplit, which the figures exclude).
pub const ALL_BASELINES: [&str; 5] = ["HiCuts", "HyperCuts", "HyperSplit", "EffiCuts", "CutSplit"];

/// Build one baseline by name on `rules` with its default config.
///
/// # Panics
/// Panics on an unknown name.
pub fn build(name: &str, rules: &RuleSet) -> DecisionTree {
    nc_bench::build_baseline(name, rules)
}

/// Best completed training tree, or the greedy tree when the tiny smoke
/// budget never completed a rollout (untrained policies are heavy-
/// tailed; the bench harness uses the same fallback).
pub fn best_or_greedy(trainer: &mut Trainer) -> (Arc<DecisionTree>, TreeStats) {
    let report = trainer.train().expect("training makes progress");
    match report.best {
        Some(b) => (b.tree, b.stats),
        None => trainer.greedy_tree(),
    }
}
