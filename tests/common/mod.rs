//! Shared helpers for the workspace-level integration suites (each
//! suite pulls in what it needs; the rest is `dead_code` per-binary).
#![allow(dead_code)]

use classbench::{DimRange, Packet, Rule, RuleSet};
use dtree::{DecisionTree, TreeStats};
use neurocuts::Trainer;
use proptest::prelude::*;
use std::sync::Arc;

/// Every baseline tree builder, by harness name (the bench harness's
/// `BASELINE_NAMES` plus HyperSplit, which the figures exclude).
pub const ALL_BASELINES: [&str; 5] = ["HiCuts", "HyperCuts", "HyperSplit", "EffiCuts", "CutSplit"];

/// Build one baseline by name on `rules` with its default config.
///
/// # Panics
/// Panics on an unknown name.
pub fn build(name: &str, rules: &RuleSet) -> DecisionTree {
    nc_bench::build_baseline(name, rules)
}

/// Strategy for one random rule: each dimension is a wildcard, an
/// exact value, or a range.
pub fn arb_rule(priority: i32) -> impl Strategy<Value = Rule> {
    let dim_range = |span: u64| {
        prop_oneof![
            Just((0u64, span)),
            (0..span).prop_map(move |v| (v, v + 1)),
            (0..span, 1..=span).prop_map(move |(lo, len)| {
                let hi = (lo + len).min(span);
                (lo.min(hi - 1), hi)
            }),
        ]
    };
    (dim_range(1 << 32), dim_range(1 << 32), dim_range(1 << 16), dim_range(1 << 16), dim_range(256))
        .prop_map(move |(s, d, sp, dp, pr)| {
            Rule::from_fields(
                DimRange::new(s.0, s.1),
                DimRange::new(d.0, d.1),
                DimRange::new(sp.0, sp.1),
                DimRange::new(dp.0, dp.1),
                DimRange::new(pr.0, pr.1),
                priority,
            )
        })
}

/// Strategy for a random rule set of 1..`max_rules` rules plus a
/// trailing default rule (so every packet matches something).
pub fn arb_ruleset(max_rules: usize) -> impl Strategy<Value = RuleSet> {
    proptest::collection::vec(arb_rule(0), 1..max_rules).prop_map(|mut rules| {
        rules.push(Rule::default_rule(0));
        RuleSet::from_ordered(rules)
    })
}

/// Strategy for one uniformly random packet (full 5-tuple space, so it
/// probes rule-free regions the generated traces never reach).
pub fn arb_packet() -> impl Strategy<Value = Packet> {
    (0..1u64 << 32, 0..1u64 << 32, 0..1u64 << 16, 0..1u64 << 16, 0..256u64)
        .prop_map(|(a, b, c, d, e)| Packet::new(a, b, c, d, e))
}

/// Best completed training tree, or the greedy tree when the tiny smoke
/// budget never completed a rollout (untrained policies are heavy-
/// tailed; the bench harness uses the same fallback).
pub fn best_or_greedy(trainer: &mut Trainer) -> (Arc<DecisionTree>, TreeStats) {
    let report = trainer.train().expect("training makes progress");
    match report.best {
        Some(b) => (b.tree, b.stats),
        None => trainer.greedy_tree(),
    }
}
