//! Conformance suite for the unified [`Classifier`] trait: every
//! implementation (the five hand-tuned baselines plus NeuroCuts) must
//! agree with the linear-scan ground truth on scalar *and* batch
//! paths, and report sane build statistics.
//!
//! The baselines run under full proptest randomisation; NeuroCuts
//! (which trains per case) runs on generated ClassBench rule sets with
//! randomised seeds and a smoke-scale budget.

use baselines::{build_baseline_classifier, Classifier, BASELINE_CLASSIFIERS};
use classbench::{
    generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, Packet, RuleSet, TraceConfig,
};
use neurocuts::{NeuroCutsClassifier, NeuroCutsConfig};
use proptest::prelude::*;

mod common;
use common::{arb_packet, arb_ruleset};

/// The shared conformance contract: scalar classify, batch classify,
/// and the linear scan must agree packet-for-packet, and the reported
/// stats must satisfy the trait's invariants.
fn assert_conforms(c: &dyn Classifier, rules: &RuleSet, packets: &[Packet]) {
    let name = c.name();
    let mut batch = vec![None; packets.len()];
    c.classify_batch(packets, &mut batch);
    for (i, p) in packets.iter().enumerate() {
        let scalar = c.classify(p);
        assert_eq!(scalar, rules.classify(p), "{name} scalar vs linear scan at {p}");
        assert_eq!(batch[i], scalar, "{name} batch vs scalar at {p}");
    }

    let s = c.stats();
    assert!(s.depth() >= 1, "{name}: depth {} < 1", s.depth());
    assert!(s.tree.nodes >= 1, "{name}: no nodes");
    // `max_depth` counts edges, so a root-only tree reports 0; it can
    // never reach the node count.
    assert!(s.tree.max_depth < s.tree.nodes, "{name}: max_depth ≥ nodes");
    assert!(s.tree.leaves >= 1, "{name}: no leaves");
    assert!(s.tree.bytes > 0, "{name}: zero tree bytes");
    assert!(
        s.tree.bytes_per_rule.is_finite() && s.tree.bytes_per_rule > 0.0,
        "{name}: bytes_per_rule {} not positive-finite",
        s.tree.bytes_per_rule
    );
    assert!(s.resident_bytes > 0, "{name}: zero resident bytes");
    assert!(s.build_secs >= 0.0, "{name}: negative build time");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All five baseline implementations conform on fully random rule
    /// sets and uniformly random packets (including packets far from
    /// any generated trace).
    #[test]
    fn prop_baseline_classifiers_conform(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 40))
    {
        for name in BASELINE_CLASSIFIERS {
            let c = build_baseline_classifier(name, &rules).expect("known baseline");
            prop_assert_eq!(c.name(), name);
            assert_conforms(c.as_ref(), &rules, &packets);
        }
    }
}

proptest! {
    // Each case trains a policy, so keep the case count small; the
    // seed randomisation still varies rules and traffic across runs.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// NeuroCuts conforms on generated rule sets: trace packets (which
    /// hit rules) plus random packets (which mostly miss).
    #[test]
    fn prop_neurocuts_classifier_conforms(
        seed in 0u64..64,
        random_packets in proptest::collection::vec(arb_packet(), 20))
    {
        let rules = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(seed));
        let mut packets =
            generate_trace(&rules, &TraceConfig::new(60).with_seed(seed ^ 0xffff));
        packets.extend(random_packets);
        let c = NeuroCutsClassifier::train(&rules, NeuroCutsConfig::smoke_test())
            .expect("trainable rule set");
        prop_assert_eq!(c.name(), "NeuroCuts");
        assert_conforms(&c, &rules, &packets);
    }
}

/// One deterministic pass over all six implementations through the
/// bench harness factory — the exact objects `bench_sweep` measures.
#[test]
fn all_six_classifiers_conform_via_factory() {
    for family in ClassifierFamily::ALL {
        let rules = generate_rules(&GeneratorConfig::new(family, 120).with_seed(7));
        let trace = generate_trace(&rules, &TraceConfig::new(256).with_seed(8));
        let cfg = NeuroCutsConfig::smoke_test();
        for name in nc_bench::CLASSIFIER_NAMES {
            let c = nc_bench::build_classifier(name, &rules, &cfg);
            assert_eq!(c.name(), name);
            let mut batch = vec![None; trace.len()];
            c.classify_batch(&trace, &mut batch);
            for (i, p) in trace.iter().enumerate() {
                let scalar = c.classify(p);
                assert_eq!(scalar, rules.classify(p), "{name} scalar at {p}");
                assert_eq!(batch[i], scalar, "{name} batch at {p}");
            }
            assert!(c.stats().depth() >= 1, "{name}");
            assert!(c.stats().resident_bytes > 0, "{name}");
        }
    }
}
