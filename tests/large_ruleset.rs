//! Nightly-scale smoke test: a 100k-rule `fw` classifier built and
//! served end-to-end through the [`Classifier`] trait.
//!
//! `#[ignore]` by default — it takes minutes in release mode and far
//! longer in debug — and runs in CI only on the nightly schedule:
//!
//! ```text
//! cargo test --release --test large_ruleset -- --ignored --nocapture
//! ```
//!
//! EffiCuts is the builder under test because it is the baseline
//! designed for exactly this regime (memory-bounded trees on 100k+
//! rule sets); the RL loop's large-scale behaviour is covered by the
//! figure harnesses, not here.

use baselines::{Classifier, EffiCutsClassifier};
use classbench::{
    generate_rules, generate_skewed_trace, ClassifierFamily, GeneratorConfig, SkewedTraceConfig,
    TrafficSkew,
};

/// Upper bound on the compiled `FlatTree`'s resident footprint for
/// fw/100k/seed 0. Measured 2026-08: ~20.6 MB resident (depth 110,
/// ~35.6k nodes, 56.5 tree-model bytes/rule — EffiCuts' separable
/// trees keep replication near 1). The 48 MB bound leaves >2x headroom
/// for node-layout changes while still tripping on a replication
/// regression (which shows up as 5-10x, not 2x).
const RESIDENT_BYTES_BOUND: usize = 48 * 1024 * 1024;

#[test]
#[ignore = "nightly scale: ~100k rules, minutes in release mode"]
fn efficuts_serves_100k_fw_rules() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 100_000).with_seed(0));
    assert!(rules.len() >= 90_000, "generator under-delivered: {} rules", rules.len());

    let c = EffiCutsClassifier::build(&rules);
    let s = c.stats();
    eprintln!(
        "fw/100k: depth={} nodes={} bytes/rule={:.1} resident={} B built in {:.1}s",
        s.depth(),
        s.tree.nodes,
        s.tree.bytes_per_rule,
        s.resident_bytes,
        s.build_secs
    );
    assert!(s.depth() >= 1);
    assert!(
        s.resident_bytes <= RESIDENT_BYTES_BOUND,
        "FlatTree resident footprint {} B exceeds the {} B bound — replication regression?",
        s.resident_bytes,
        RESIDENT_BYTES_BOUND
    );

    // Sampled verification against the linear scan, over skewed as
    // well as uniform arrival patterns (the sweep's three cells).
    for skew in [TrafficSkew::Uniform, TrafficSkew::ZIPF, TrafficSkew::LOCALITY] {
        let trace =
            generate_skewed_trace(&rules, &SkewedTraceConfig::new(2_000, skew).with_seed(3));
        let mut batch = vec![None; trace.len()];
        c.classify_batch(&trace, &mut batch);
        for (i, p) in trace.iter().enumerate() {
            let truth = rules.classify(p);
            assert_eq!(c.classify(p), truth, "scalar on {} trace at {p}", skew.tag());
            assert_eq!(batch[i], truth, "batch on {} trace at {p}", skew.tag());
        }
    }
}
