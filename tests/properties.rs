//! Workspace-level property tests: randomised rule sets, packets, and
//! builder choices must never break the classification invariant.

use classbench::{generate_rules, ClassifierFamily, Dim, GeneratorConfig};
use proptest::prelude::*;

mod common;
use common::{arb_packet, arb_rule, arb_ruleset, build};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_hicuts_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("HiCuts", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_hypersplit_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("HyperSplit", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_efficuts_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("EffiCuts", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_cutsplit_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("CutSplit", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_updates_preserve_invariant(
        seed in 0u64..50,
        extra in arb_rule(1_000_000),
        packets in proptest::collection::vec(arb_packet(), 20))
    {
        let rules = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(seed));
        let mut tree = build("HiCuts", &rules);
        let id = dtree::updates::insert_rule(&mut tree, extra);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), tree.linear_classify(p), "after insert at {}", p);
        }
        dtree::updates::delete_rule(&mut tree, id).unwrap();
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "after delete at {}", p);
        }
    }

    #[test]
    fn prop_rule_matching_is_geometric(rule in arb_rule(0), packet in arb_packet()) {
        // A rule matches iff the packet is inside in every dimension —
        // matching must equal the per-dimension containment conjunction.
        let expect = classbench::DIMS.iter().all(|&d| {
            rule.range(d).contains(packet.value(d))
        });
        prop_assert_eq!(rule.matches(&packet), expect);
        let _ = Dim::SrcIp; // keep the import exercised under cfg changes
    }
}
