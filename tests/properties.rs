//! Workspace-level property tests: randomised rule sets, packets, and
//! builder choices must never break the classification invariant.

use classbench::{
    generate_rules, ClassifierFamily, Dim, DimRange, GeneratorConfig, Packet, Rule, RuleSet,
};
use proptest::prelude::*;

mod common;
use common::build;

fn arb_rule(priority: i32) -> impl Strategy<Value = Rule> {
    // Each dimension: either a wildcard, an exact value, or a range.
    let dim_range = |span: u64| {
        prop_oneof![
            Just((0u64, span)),
            (0..span).prop_map(move |v| (v, v + 1)),
            (0..span, 1..=span).prop_map(move |(lo, len)| {
                let hi = (lo + len).min(span);
                (lo.min(hi - 1), hi)
            }),
        ]
    };
    (dim_range(1 << 32), dim_range(1 << 32), dim_range(1 << 16), dim_range(1 << 16), dim_range(256))
        .prop_map(move |(s, d, sp, dp, pr)| {
            Rule::from_fields(
                DimRange::new(s.0, s.1),
                DimRange::new(d.0, d.1),
                DimRange::new(sp.0, sp.1),
                DimRange::new(dp.0, dp.1),
                DimRange::new(pr.0, pr.1),
                priority,
            )
        })
}

fn arb_ruleset(max_rules: usize) -> impl Strategy<Value = RuleSet> {
    proptest::collection::vec(arb_rule(0), 1..max_rules).prop_map(|mut rules| {
        rules.push(Rule::default_rule(0));
        RuleSet::from_ordered(rules)
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (0..1u64 << 32, 0..1u64 << 32, 0..1u64 << 16, 0..1u64 << 16, 0..256u64)
        .prop_map(|(a, b, c, d, e)| Packet::new(a, b, c, d, e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_hicuts_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("HiCuts", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_hypersplit_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("HyperSplit", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_efficuts_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("EffiCuts", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_cutsplit_matches_linear_scan(
        rules in arb_ruleset(40),
        packets in proptest::collection::vec(arb_packet(), 30))
    {
        let tree = build("CutSplit", &rules);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "at {}", p);
        }
    }

    #[test]
    fn prop_updates_preserve_invariant(
        seed in 0u64..50,
        extra in arb_rule(1_000_000),
        packets in proptest::collection::vec(arb_packet(), 20))
    {
        let rules = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(seed));
        let mut tree = build("HiCuts", &rules);
        let id = dtree::updates::insert_rule(&mut tree, extra);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), tree.linear_classify(p), "after insert at {}", p);
        }
        dtree::updates::delete_rule(&mut tree, id).unwrap();
        for p in &packets {
            prop_assert_eq!(tree.classify(p), rules.classify(p), "after delete at {}", p);
        }
    }

    #[test]
    fn prop_rule_matching_is_geometric(rule in arb_rule(0), packet in arb_packet()) {
        // A rule matches iff the packet is inside in every dimension —
        // matching must equal the per-dimension containment conjunction.
        let expect = classbench::DIMS.iter().all(|&d| {
            rule.range(d).contains(packet.value(d))
        });
        prop_assert_eq!(rule.matches(&packet), expect);
        let _ = Dim::SrcIp; // keep the import exercised under cfg changes
    }
}
