//! Persistence integration: trees and policies must survive a
//! serialise/deserialise round trip bit-for-bit in behaviour — the
//! deployment path (train once, ship the tree).

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::DecisionTree;

mod common;
use common::build;

#[test]
fn tree_json_roundtrip_preserves_classification() {
    for family in ClassifierFamily::ALL {
        let rules = generate_rules(&GeneratorConfig::new(family, 200).with_seed(300));
        let tree = build("HiCuts", &rules);
        let restored = DecisionTree::from_json(&tree.to_json()).expect("round-trips");
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(301));
        for p in &trace {
            assert_eq!(tree.classify(p), restored.classify(p), "{family} at {p}");
        }
        assert_eq!(tree.num_nodes(), restored.num_nodes());
        assert_eq!(tree.num_active_rules(), restored.num_active_rules());
    }
}

#[test]
fn partitioned_tree_roundtrips() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 250).with_seed(302));
    for tree in [build("EffiCuts", &rules), build("CutSplit", &rules)] {
        let restored = DecisionTree::from_json(&tree.to_json()).unwrap();
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(303));
        for p in &trace {
            assert_eq!(tree.classify(p), restored.classify(p));
        }
    }
}

#[test]
fn updated_tree_roundtrips_with_inactive_rules() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(304));
    let mut tree = build("HiCuts", &rules);
    let top = tree.rules().iter().map(|r| r.priority).max().unwrap();
    let id = dtree::updates::insert_rule(&mut tree, classbench::Rule::default_rule(top + 1));
    dtree::updates::delete_rule(&mut tree, id).unwrap();
    let restored = DecisionTree::from_json(&tree.to_json()).unwrap();
    assert!(!restored.is_active(id));
    let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(305));
    for p in &trace {
        assert_eq!(restored.classify(p), rules.classify(p));
    }
}

#[test]
fn corrupted_json_is_rejected() {
    assert!(DecisionTree::from_json("{}").is_err());
    assert!(DecisionTree::from_json("not json").is_err());
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 20).with_seed(306));
    let tree = build("HiCuts", &rules);
    let mut json = tree.to_json();
    json.truncate(json.len() / 2);
    assert!(DecisionTree::from_json(&json).is_err());
}
