//! Cross-algorithm integration: all five baselines and NeuroCuts must
//! classify every probe identically to the linear-scan ground truth on
//! every family — the "perfect accuracy by construction" premise (§3.2).

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::validate::assert_tree_valid;
use dtree::TreeStats;

mod common;
use common::{build, ALL_BASELINES};

#[test]
fn every_algorithm_matches_ground_truth_on_every_family() {
    for family in ClassifierFamily::ALL {
        let rules = generate_rules(&GeneratorConfig::new(family, 250).with_seed(200));
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(201));
        for name in ALL_BASELINES {
            let tree = build(name, &rules);
            assert_tree_valid(&tree, 200, 202);
            for p in &trace {
                assert_eq!(
                    tree.classify(p),
                    rules.classify(p),
                    "{name} on {family} disagrees at {p}"
                );
            }
        }
    }
}

#[test]
fn expected_shape_relationships_hold() {
    // The qualitative relationships the paper's Figures 8/9 rest on,
    // aggregated over seeds so individual instances may deviate.
    let mut hicuts_time = 0.0f64;
    let mut efficuts_time = 0.0f64;
    let mut hicuts_space = 0.0f64;
    let mut efficuts_space = 0.0f64;
    for seed in 0..3u64 {
        let rules =
            generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 400).with_seed(seed));
        let hi = TreeStats::compute(&build("HiCuts", &rules));
        let ef = TreeStats::compute(&build("EffiCuts", &rules));
        hicuts_time += hi.time as f64;
        efficuts_time += ef.time as f64;
        hicuts_space += hi.bytes_per_rule;
        efficuts_space += ef.bytes_per_rule;
    }
    // EffiCuts trades classification time for much less memory.
    assert!(
        efficuts_space < hicuts_space,
        "EffiCuts {efficuts_space} should use less memory than HiCuts {hicuts_space}"
    );
    assert!(
        efficuts_time >= hicuts_time * 0.7,
        "EffiCuts should not also dominate time on FW sets"
    );
}

#[test]
fn all_families_and_algorithms_have_sane_stats() {
    for family in ClassifierFamily::ALL {
        let rules = generate_rules(&GeneratorConfig::new(family, 200).with_seed(203));
        for name in ALL_BASELINES {
            let stats = TreeStats::compute(&build(name, &rules));
            assert!(stats.time >= 1, "{name}/{family}");
            assert!(stats.nodes >= 1);
            assert!(stats.leaves >= 1);
            assert!(stats.bytes_per_rule.is_finite());
            assert!(stats.replication >= 0.99, "{name}/{family}: {stats}");
        }
    }
}
