//! Integration tests of the traffic-aware objective extension (§8):
//! expected lookup cost under a trace, end to end through the trainer.

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, Packet, TraceConfig,
};
use dtree::average_lookup_cost;
use neurocuts::{NeuroCutsConfig, Trainer};

mod common;
use common::{best_or_greedy, build};

#[test]
fn traffic_aware_training_runs_and_validates() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(400));
    let trace = generate_trace(&rules, &TraceConfig::new(500).with_seed(401));
    let mut trainer = Trainer::new(rules.clone(), NeuroCutsConfig::smoke_test())
        .unwrap()
        .set_traffic(trace.clone());
    let (tree, _) = best_or_greedy(&mut trainer);
    // Exactness is independent of the objective.
    for p in &trace {
        assert_eq!(tree.classify(p), rules.classify(p));
    }
    // The measured average cost is consistent with the tree.
    let avg = average_lookup_cost(&tree, &trace);
    assert!(avg >= 1.0);
    assert!(avg <= dtree::TreeStats::compute(&tree).time as f64 + 1e-9);
}

#[test]
fn average_cost_reacts_to_traffic_concentration() {
    // Build one fixed tree; a trace hitting only shallow paths must
    // yield a lower average cost than one hitting deep paths.
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(402));
    let tree = build("HiCuts", &rules);
    // Find a shallow and a deep packet by probing.
    let probe = generate_trace(&rules, &TraceConfig::new(2000).with_seed(403));
    let mut costs: Vec<(usize, Packet)> =
        probe.iter().map(|p| (tree.classify_traced(p).1, *p)).collect();
    costs.sort_by_key(|&(c, _)| c);
    let shallow = costs.first().unwrap();
    let deep = costs.last().unwrap();
    if shallow.0 == deep.0 {
        return; // degenerate tree: every path equal, nothing to test
    }
    let avg_shallow = average_lookup_cost(&tree, &vec![shallow.1; 50]);
    let avg_deep = average_lookup_cost(&tree, &vec![deep.1; 50]);
    assert!(avg_shallow < avg_deep, "{avg_shallow} !< {avg_deep}");
}

#[test]
fn objective_consistency_between_env_and_measurement() {
    // The env's traffic objective for a built tree must equal the
    // weighted-average recursion over the same trace.
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(404));
    let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(405));
    let cfg = NeuroCutsConfig::smoke_test().with_seed(406);
    let env = neurocuts::NeuroCutsEnv::new(rules, cfg).with_traffic(trace.clone());
    // Build one tree through the env.
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(407);
    let net = nn::PolicyValueNet::new(
        nn::NetConfig {
            obs_dim: env.encoder.obs_dim(),
            dim_actions: env.action_space.dim_actions(),
            num_actions: env.action_space.num_actions(),
            hidden: [16, 16],
        },
        &mut rng,
    );
    let ep = env.build_tree(&net, 1, false);
    let counts = ep.tree.node_visit_counts(&trace);
    let avg = neurocuts::reward::subtree_avg_time(&ep.tree, &counts);
    assert!(
        (ep.objective - avg[ep.tree.root()]).abs() < 1e-9,
        "env {} vs recursion {}",
        ep.objective,
        avg[ep.tree.root()]
    );
}
