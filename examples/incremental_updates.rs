//! Classifier updates without retraining (§4, "Handling classifier
//! updates"): add access-control rules for new devices into an
//! existing learned tree, delete stale ones, and rebuild only when the
//! accumulated churn crosses a threshold.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, DimRange, GeneratorConfig, Rule,
    TraceConfig,
};
use dtree::updates::{delete_rule, insert_rule, UpdateLog};
use dtree::validate::validate_tree;
use dtree::TreeStats;
use neurocuts::{NeuroCutsConfig, Trainer};

fn main() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(5));
    let cfg = NeuroCutsConfig::small(12_000);
    let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");
    let report = trainer.train().expect("training makes progress");
    // Updates mutate the tree in place, so take it out of the shared
    // best-tree snapshot (clones only if the record still holds it).
    let mut tree = std::sync::Arc::unwrap_or_clone(match report.best {
        Some(b) => b.tree,
        None => trainer.greedy_tree().0,
    });
    println!("trained tree: {}", TreeStats::compute(&tree));

    // New devices come online: add one high-priority allow rule each.
    let top = tree.rules().iter().map(|r| r.priority).max().unwrap();
    let mut log = UpdateLog::default();
    let mut added = Vec::new();
    for i in 0..20u64 {
        let mut r = Rule::default_rule(top + 1 + i as i32);
        r.ranges[Dim::SrcIp.index()] = DimRange::from_prefix(0xc0a80000 + (i << 8), 24, 32); // 192.168.i.0/24
        r.ranges[Dim::DstPort.index()] = DimRange::exact(443);
        added.push(insert_rule(&mut tree, r));
        log.inserted += 1;
    }
    println!("inserted {} device rules in place", log.inserted);

    // A packet from a new device now matches its rule.
    let p = classbench::Packet::new(0xc0a80001, 0, 12345, 443, 6);
    assert_eq!(tree.classify(&p), Some(added[0]));

    // Devices decommissioned: delete half the new rules.
    for &id in added.iter().step_by(2) {
        delete_rule(&mut tree, id).expect("rule is active");
        log.deleted += 1;
    }
    println!("deleted {} rules in place", log.deleted);
    assert_ne!(tree.classify(&p), Some(added[0]));

    // The updated tree still classifies perfectly.
    let violations = validate_tree(&tree, 2000, 0);
    assert!(violations.is_empty(), "updates broke the tree: {violations:?}");
    let trace = generate_trace(&rules, &TraceConfig::new(5000));
    for pkt in &trace {
        assert_eq!(tree.classify(pkt), tree.linear_classify(pkt));
    }
    println!("validated: tree lookup ≡ linear scan after all updates");

    // Rebuild policy: retrain once churn is large (the paper: "when
    // enough small updates accumulate ... NeuroCuts re-runs training").
    let churn = log.churn(tree.num_active_rules());
    println!("accumulated churn: {:.1}% of active rules", churn * 100.0);
    if churn > 0.10 {
        println!("churn over 10% -> this is where a production deployment would retrain");
    }
}
