//! Sweep the time-space coefficient `c` on one classifier — a
//! single-classifier miniature of Figure 11: classification time
//! improves as `c → 1`, bytes-per-rule improves as `c → 0`.
//!
//! ```text
//! cargo run --release --example tradeoff_sweep
//! ```

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
use neurocuts::{NeuroCutsConfig, PartitionMode, Trainer};

fn main() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 300).with_seed(3));
    println!("sweeping c on {} rules (simple partitioner, log reward scaling)\n", rules.len());
    println!("{:>5} | {:>10} | {:>12}", "c", "time", "bytes/rule");
    println!("{:->5}-+-{:->10}-+-{:->12}", "", "", "");

    for &c in &[0.0, 0.1, 0.5, 1.0] {
        let cfg = NeuroCutsConfig::small(18_000)
            .with_coeff(c)
            .with_partition_mode(PartitionMode::Simple)
            .with_seed(11);
        let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");
        let report = trainer.train().expect("training makes progress");
        let stats = match report.best {
            Some(best) => best.stats,
            None => trainer.greedy_tree().1,
        };
        println!("{c:>5.1} | {:>10} | {:>12.1}", stats.time, stats.bytes_per_rule);
    }
    println!("\nexpect time to shrink towards c=1 and bytes/rule towards c=0");
}
