//! Sweep the time-space coefficient `c` on one classifier — a
//! single-classifier miniature of Figure 11: classification time
//! improves as `c → 1`, bytes-per-rule improves as `c → 0`.
//!
//! Each point trains through the unified `Classifier` trait
//! (`NeuroCutsClassifier::train`) and is cross-checked against the
//! direct `Trainer` path: training is deterministic for a fixed
//! `(rules, config)`, so the two must produce bit-identical
//! `TreeStats`.
//!
//! ```text
//! cargo run --release --example tradeoff_sweep
//! ```

use baselines::Classifier;
use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
use neurocuts::{NeuroCutsClassifier, NeuroCutsConfig, PartitionMode, Trainer};

fn main() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 300).with_seed(3));
    println!("sweeping c on {} rules (simple partitioner, log reward scaling)\n", rules.len());
    println!("{:>5} | {:>10} | {:>12} | {:>9}", "c", "time", "bytes/rule", "build (s)");
    println!("{:->5}-+-{:->10}-+-{:->12}-+-{:->9}", "", "", "", "");

    for &c in &[0.0, 0.1, 0.5, 1.0] {
        let cfg = NeuroCutsConfig::small(18_000)
            .with_coeff(c)
            .with_partition_mode(PartitionMode::Simple)
            .with_seed(11);
        let classifier =
            NeuroCutsClassifier::train(&rules, cfg.clone()).expect("trainable rule set");
        let s = classifier.stats();
        println!(
            "{c:>5.1} | {:>10} | {:>12.1} | {:>9.2}",
            s.tree.time, s.tree.bytes_per_rule, s.build_secs
        );

        // The trait path must pick the exact tree the direct trainer
        // does — bit-identical stats, not merely similar ones.
        let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");
        let (_, direct, _) = trainer.train_to_tree().expect("training makes progress");
        assert_eq!(
            s.tree, direct,
            "c={c}: trait-trained tree diverged from the direct Trainer path"
        );
    }
    println!("\nexpect time to shrink towards c=1 and bytes/rule towards c=0");
    println!("all trait-trained trees bit-identical to the direct Trainer path");
}
