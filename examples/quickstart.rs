//! Quickstart: generate a classifier, train NeuroCuts briefly, and
//! compare the learned tree against HiCuts on the same rules.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use baselines::{build_hicuts, HiCutsConfig};
use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::TreeStats;
use neurocuts::{NeuroCutsConfig, Trainer};

fn main() {
    // 1. A synthetic ACL classifier (ClassBench-style).
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 256).with_seed(1));
    println!("generated {} rules (default rule: {})", rules.len(), rules.has_default());

    // 2. Train a NeuroCuts policy with a small budget. `small(n)` is a
    //    few-hundred-rule configuration; `paper_default()` is Table 1.
    let cfg = NeuroCutsConfig::small(30_000);
    let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");
    println!("training...");
    let report = trainer.train().expect("training makes progress");
    for h in &report.history {
        println!(
            "  iter {:>2}: {:>6} steps, mean return {:>10.2}, best objective {:>8.1}",
            h.iteration, h.timesteps, h.mean_return, h.best_objective
        );
    }

    // Best tree found during training, or the current policy's greedy
    // tree if every training rollout truncated (tiny budgets only).
    let (tree, stats) = match report.best {
        Some(best) => (best.tree, best.stats),
        None => trainer.greedy_tree(),
    };
    println!("\nNeuroCuts tree: {stats}");

    // 3. The hand-tuned baseline on the same rules.
    let hicuts = build_hicuts(&rules, &HiCutsConfig::default());
    println!("HiCuts tree:    {}", TreeStats::compute(&hicuts));

    // 4. Both classify identically to the linear-scan ground truth.
    let trace = generate_trace(&rules, &TraceConfig::new(1000));
    for p in &trace {
        let truth = rules.classify(p);
        assert_eq!(tree.classify(p), truth, "NeuroCuts mismatch on {p}");
        assert_eq!(hicuts.classify(p), truth, "HiCuts mismatch on {p}");
    }
    println!("\nverified {} packets: both trees match the linear scan exactly", trace.len());
}
