//! Domain scenario: an access-control firewall.
//!
//! Parses a ClassBench-format ACL (the interchange format real seed
//! files use), trains a time-optimised NeuroCuts policy, then serves a
//! skewed packet trace through the learned tree, reporting per-rule hit
//! counts — the workload the paper's introduction motivates (firewalls
//! and access control, §1).
//!
//! ```text
//! cargo run --release --example acl_firewall
//! ```

use classbench::{
    generate_rules, generate_trace, parse_rules, write_rules, ClassifierFamily, GeneratorConfig,
    TraceConfig,
};
use neurocuts::{NeuroCutsConfig, Trainer};

fn main() {
    // Export + re-import through the ClassBench text format, as one
    // would with real seed-generated filter sets.
    let generated = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 300).with_seed(9));
    let text = write_rules(&generated);
    println!("ACL in ClassBench format (first 3 rules):");
    for line in text.lines().take(3) {
        println!("  {line}");
    }
    let rules = parse_rules(&text).expect("round-trips");
    assert_eq!(rules.len(), generated.len());

    // Time-optimised NeuroCuts (c = 1, no partitioning): the firewall
    // fast path cares about worst-case lookup latency.
    let cfg = NeuroCutsConfig::small(24_000).with_coeff(1.0);
    let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");
    let report = trainer.train().expect("training makes progress");
    let (tree, stats) = match report.best {
        Some(b) => (b.tree, b.stats),
        None => trainer.greedy_tree(),
    };
    println!(
        "\nlearned firewall tree: depth {} ({} nodes, {:.0} bytes/rule)",
        stats.time, stats.nodes, stats.bytes_per_rule
    );

    // Serve a skewed traffic trace and account per-rule hits.
    let trace = generate_trace(&rules, &TraceConfig::new(20_000).with_seed(4));
    let mut hits = vec![0usize; rules.len()];
    let mut misses = 0usize;
    for p in &trace {
        match tree.classify(p) {
            Some(rule_id) => hits[rule_id] += 1,
            None => misses += 1,
        }
    }
    assert_eq!(misses, 0, "the default rule catches everything");

    let mut ranked: Vec<(usize, usize)> =
        hits.iter().copied().enumerate().filter(|&(_, h)| h > 0).collect();
    ranked.sort_by_key(|&(_, h)| std::cmp::Reverse(h));
    println!("\ntop-5 matched rules over {} packets:", trace.len());
    for (rule_id, count) in ranked.iter().take(5) {
        println!("  rule #{rule_id:<4} {count:>6} hits   {}", rules.rule(*rule_id));
    }
    let default_hits = hits.last().copied().unwrap_or(0);
    println!("  default rule: {default_hits} hits");
}
