//! Build all five algorithms on the same classifiers through the
//! unified `Classifier` trait and print a side-by-side comparison of
//! classification time (tree depth) and memory (bytes/rule) — a
//! miniature of the paper's Figures 8 and 9 without the RL training
//! (see the `nc-bench` binaries for the full figure regeneration, and
//! `bench_sweep` for the full scenario matrix).
//!
//! Each row is built twice — once through `Classifier::build`, once
//! through the direct builder function — and the two trees are
//! asserted bit-identical (`TreeStats` equality), pinning that the
//! trait refactor changed the boundary, not the algorithms.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use baselines::{
    build_cutsplit, build_efficuts, build_hicuts, build_hypercuts, build_hypersplit, Classifier,
    CompiledClassifier, CutSplitClassifier, CutSplitConfig, EffiCutsClassifier, EffiCutsConfig,
    HiCutsClassifier, HiCutsConfig, HyperCutsClassifier, HyperCutsConfig, HyperSplitClassifier,
    HyperSplitConfig,
};
use classbench::{generate_rules, ClassifierFamily, GeneratorConfig, RuleSet};
use dtree::{validate::assert_tree_valid, TreeStats};

fn row(c: &CompiledClassifier, direct: TreeStats) {
    let s = c.stats();
    println!(
        "  {:<11} time={:>3}  bytes/rule={:>9.1}  nodes={:>6}  replication={:>6.2}x  \
         built in {:>8.4}s",
        c.name(),
        s.tree.time,
        s.tree.bytes_per_rule,
        s.tree.nodes,
        s.tree.replication,
        s.build_secs
    );
    assert_tree_valid(c.tree(), 200, 7);
    // The trait path must produce the exact tree the direct builder
    // does — bit-identical stats, not merely similar ones.
    assert_eq!(s.tree, direct, "{}: trait build diverged from the direct builder", c.name());
}

fn compare(rules: &RuleSet) {
    row(
        HiCutsClassifier::build(rules).inner(),
        TreeStats::compute(&build_hicuts(rules, &HiCutsConfig::default())),
    );
    row(
        HyperCutsClassifier::build(rules).inner(),
        TreeStats::compute(&build_hypercuts(rules, &HyperCutsConfig::default())),
    );
    row(
        HyperSplitClassifier::build(rules).inner(),
        TreeStats::compute(&build_hypersplit(rules, &HyperSplitConfig::default())),
    );
    row(
        EffiCutsClassifier::build(rules).inner(),
        TreeStats::compute(&build_efficuts(rules, &EffiCutsConfig::default())),
    );
    row(
        CutSplitClassifier::build(rules).inner(),
        TreeStats::compute(&build_cutsplit(rules, &CutSplitConfig::default())),
    );
}

fn main() {
    for family in ClassifierFamily::ALL {
        for seed in 0..2u64 {
            let cfg = GeneratorConfig::new(family, 1000).with_seed(seed);
            let rules = generate_rules(&cfg);
            println!("\n=== {} ({} rules) ===", cfg.label(), rules.len());
            compare(&rules);
        }
    }
    println!("\nall trait-built trees validated and bit-identical to the direct builders");
}
