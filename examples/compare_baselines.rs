//! Build all five algorithms on the same classifiers and print a
//! side-by-side comparison of classification time (tree depth) and
//! memory (bytes/rule) — a miniature of the paper's Figures 8 and 9
//! without the RL training (see the `nc-bench` binaries for the full
//! figure regeneration).
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use baselines::{
    build_cutsplit, build_efficuts, build_hicuts, build_hypercuts, build_hypersplit,
    CutSplitConfig, EffiCutsConfig, HiCutsConfig, HyperCutsConfig, HyperSplitConfig,
};
use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
use dtree::{validate::assert_tree_valid, DecisionTree, TreeStats};

fn row(name: &str, tree: &DecisionTree) {
    let s = TreeStats::compute(tree);
    println!(
        "  {name:<11} time={:>3}  bytes/rule={:>9.1}  nodes={:>6}  replication={:>6.2}x",
        s.time, s.bytes_per_rule, s.nodes, s.replication
    );
    assert_tree_valid(tree, 200, 7);
}

fn main() {
    for family in ClassifierFamily::ALL {
        for seed in 0..2u64 {
            let cfg = GeneratorConfig::new(family, 1000).with_seed(seed);
            let rules = generate_rules(&cfg);
            println!("\n=== {} ({} rules) ===", cfg.label(), rules.len());
            row("HiCuts", &build_hicuts(&rules, &HiCutsConfig::default()));
            row("HyperCuts", &build_hypercuts(&rules, &HyperCutsConfig::default()));
            row("HyperSplit", &build_hypersplit(&rules, &HyperSplitConfig::default()));
            row("EffiCuts", &build_efficuts(&rules, &EffiCutsConfig::default()));
            row("CutSplit", &build_cutsplit(&rules, &CutSplitConfig::default()));
        }
    }
    println!("\nall trees validated against the linear-scan ground truth");
}
