//! Self-check: the real workspace lints clean, the pragma counts are
//! pinned (so any new allow or kernel shows up in review as a test
//! diff), and seeding a violation into real source is caught with a
//! file:line diagnostic.

use std::fs;
use std::path::PathBuf;

use nc_lint::config::LintConfig;

/// Pinned count of allow pragmas in the workspace. If you add one,
/// bump this — the diff is the review hook.
const PINNED_ALLOWS: usize = 17;
/// Pinned count of kernel-marked functions.
const PINNED_KERNELS: usize = 13;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_lints_clean() {
    let report = nc_lint::lint_workspace(&workspace_root(), &LintConfig::workspace()).unwrap();
    assert!(report.files > 50, "walker should see the whole workspace, saw {}", report.files);
    assert!(report.violations.is_empty(), "workspace must lint clean:\n{}", report.render_text());
    assert_eq!(
        report.allows, PINNED_ALLOWS,
        "allow pragma count changed — review the new/removed pragmas and re-pin"
    );
    assert_eq!(
        report.kernels, PINNED_KERNELS,
        "kernel count changed — review the new/removed kernel marks and re-pin"
    );
}

#[test]
fn seeded_violation_in_real_source_is_caught() {
    // Append a violating fn to the real serving module and assert the
    // rule fires with the right file and a plausible line.
    let path = workspace_root().join("crates/dtree/src/flat.rs");
    let src = fs::read_to_string(&path).unwrap();
    let lines = src.lines().count() as u32;
    let seeded = format!(
        "{src}\nimpl FlatTree {{\n    pub fn bad(&self) -> u32 {{\n        \
         *self.children.first().unwrap()\n    }}\n}}\n"
    );
    let out = nc_lint::lint_source("crates/dtree/src/flat.rs", &seeded, &LintConfig::workspace());
    let hit = out
        .violations
        .iter()
        .find(|v| v.rule == "no-panic-in-serving")
        .expect("seeded unwrap must be caught");
    assert_eq!(hit.file, "crates/dtree/src/flat.rs");
    assert!(hit.line > lines, "diagnostic points into the seeded code: {hit}");
}

#[test]
fn seeded_determinism_violation_is_caught() {
    let path = workspace_root().join("crates/core/src/vecenv.rs");
    let src = fs::read_to_string(&path).unwrap();
    let seeded = format!("{src}\nfn sneak_clock() -> std::time::Instant {{ Instant::now() }}\n");
    let out = nc_lint::lint_source("crates/core/src/vecenv.rs", &seeded, &LintConfig::workspace());
    assert!(out.violations.iter().any(|v| v.rule == "determinism-purity"), "{:#?}", out.violations);
}
