// Negative fixture: failures surface as typed errors; debug_assert
// and non-pub / value-returning functions are out of scope.
pub fn configure(n: usize) -> Result<(), String> {
    if n == 0 {
        return Err("n must be positive".to_string());
    }
    Ok(())
}

pub fn checked(n: usize) {
    debug_assert!(n > 0);
}

fn private_guard(n: usize) {
    assert!(n > 0);
}
