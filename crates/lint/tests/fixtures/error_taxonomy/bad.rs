// Positive fixture: a pub fn with no way to report failure that
// panics anyway.
pub fn configure(n: usize) {
    assert!(n > 0, "n must be positive");
}
