// Positive fixture: retraining under the publish write lock, plus a
// re-entrant acquisition that would deadlock parking_lot.
impl Handle {
    pub fn adopt_wrong(&self) {
        let mut s = self.state.write();
        let tree = self.trainer.train_to_tree();
        s.tree = tree;
        let peek = self.state.read();
        drop(peek);
    }
}
