// Negative fixture: train first, then take the write lock only for
// the epoch-swap publish; an explicit drop ends the guard scope
// before the next acquisition.
impl Handle {
    pub fn adopt_right(&self) {
        let tree = self.trainer.train_to_tree();
        let mut s = self.state.write();
        s.tree = tree;
        drop(s);
        let peek = self.state.read();
        let _ = peek.len();
    }
}
