// Positive fixture: every panic avenue the rule guards against.
pub fn serve(xs: &[u32], i: usize) -> u32 {
    let v = xs.first().unwrap();
    if *v > 3 {
        panic!("serving code must not reach this");
    }
    xs[i]
}

pub fn expecting(x: Option<u32>) -> u32 {
    x.expect("serving code must not expect")
}
