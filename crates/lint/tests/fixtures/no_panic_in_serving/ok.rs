// Negative fixture: checked access in live code; tests and
// debug_assert interiors are exempt by rule config.
pub fn serve(xs: &[u32], i: usize) -> Option<u32> {
    debug_assert!(xs[0] < u32::MAX);
    xs.get(i).copied()
}

// nc-lint: kernel
pub fn hot(xs: &[u32], i: usize) -> u32 {
    xs[i % xs.len().max(1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_fine_in_tests() {
        let xs = [1u32, 2];
        assert_eq!(xs[0], 1);
        let _ = serve(&xs, 0).unwrap();
    }
}
