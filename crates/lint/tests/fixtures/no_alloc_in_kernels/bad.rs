// Positive fixture: a kernel-marked function that allocates and copies.
// nc-lint: kernel
pub fn hot(xs: &[u32]) -> Vec<u32> {
    let copy = xs.to_vec();
    let mut out = Vec::new();
    out.extend(copy.iter().map(|v| v + 1));
    let _label = format!("{} entries", out.len());
    out
}
