// Negative fixture: the kernel writes into caller-owned buffers;
// allocation is fine outside kernel-marked functions, and
// debug_assert interiors are exempt.
// nc-lint: kernel
pub fn hot(xs: &[u32], out: &mut [u32]) {
    debug_assert!(out.to_vec().len() == xs.len());
    for (o, x) in out.iter_mut().zip(xs) {
        *o = x + 1;
    }
}

pub fn cold(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}
