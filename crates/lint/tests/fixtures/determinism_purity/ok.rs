// Negative fixture: explicit seeding keeps rollouts reproducible;
// tests may time things.
pub fn rollout_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
