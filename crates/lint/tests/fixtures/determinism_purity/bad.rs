// Positive fixture: wall-clock and ambient randomness in the
// determinism domain.
pub fn rollout_seed() -> u64 {
    let _t = std::time::Instant::now();
    let _s = std::collections::hash_map::RandomState::new();
    let _rng = thread_rng();
    0
}
