//! Fixture-based tests: one positive (`bad.rs`) and one negative
//! (`ok.rs`) fixture per rule under `tests/fixtures/<rule>/`. The
//! fixture config maps each rule's domain to its fixture directory, so
//! every rule fires only on its own fixtures.

use std::fs;
use std::path::Path;

use nc_lint::config::{Domain, LintConfig};
use nc_lint::report::Violation;

fn fixture_cfg() -> LintConfig {
    let mut cfg = LintConfig::workspace();
    cfg.serving = Domain::new(&["no_panic_in_serving/"], &[]);
    cfg.determinism = Domain::new(&["determinism_purity/"], &[]);
    cfg.taxonomy = Domain::new(&["error_taxonomy/"], &[]);
    cfg
}

fn lint_fixture(rel: &str) -> Vec<Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    nc_lint::lint_source(rel, &src, &fixture_cfg()).violations
}

fn assert_all_rule(viols: &[Violation], rule: &str, expected: usize) {
    assert_eq!(viols.len(), expected, "{rule}: {viols:#?}");
    for v in viols {
        assert_eq!(v.rule, rule, "{v}");
        assert!(v.line > 0, "diagnostics carry a line: {v}");
    }
}

#[test]
fn no_panic_in_serving_fixtures() {
    let bad = lint_fixture("no_panic_in_serving/bad.rs");
    assert_all_rule(&bad, "no-panic-in-serving", 4);
    // unwrap, panic!, indexing, expect — each on its own line.
    assert!(bad.iter().any(|v| v.msg.contains(".unwrap()")));
    assert!(bad.iter().any(|v| v.msg.contains("panic!")));
    assert!(bad.iter().any(|v| v.msg.contains("slice indexing")));
    assert!(bad.iter().any(|v| v.msg.contains(".expect()")));
    assert_all_rule(&lint_fixture("no_panic_in_serving/ok.rs"), "", 0);
}

#[test]
fn no_alloc_in_kernels_fixtures() {
    let bad = lint_fixture("no_alloc_in_kernels/bad.rs");
    assert_all_rule(&bad, "no-alloc-in-kernels", 3);
    assert!(bad.iter().any(|v| v.msg.contains("`.to_vec()`")));
    assert!(bad.iter().any(|v| v.msg.contains("`Vec::`")));
    assert!(bad.iter().any(|v| v.msg.contains("`format!`")));
    assert_all_rule(&lint_fixture("no_alloc_in_kernels/ok.rs"), "", 0);
}

#[test]
fn determinism_purity_fixtures() {
    let bad = lint_fixture("determinism_purity/bad.rs");
    assert_all_rule(&bad, "determinism-purity", 3);
    assert_all_rule(&lint_fixture("determinism_purity/ok.rs"), "", 0);
}

#[test]
fn lock_discipline_fixtures() {
    let bad = lint_fixture("lock_discipline/bad.rs");
    assert_all_rule(&bad, "lock-discipline", 2);
    assert!(bad.iter().any(|v| v.msg.contains("train_to_tree")));
    assert!(bad.iter().any(|v| v.msg.contains("not reentrant")));
    assert_all_rule(&lint_fixture("lock_discipline/ok.rs"), "", 0);
}

#[test]
fn error_taxonomy_fixtures() {
    let bad = lint_fixture("error_taxonomy/bad.rs");
    assert_all_rule(&bad, "error-taxonomy", 1);
    assert!(bad[0].msg.contains("configure"));
    assert_all_rule(&lint_fixture("error_taxonomy/ok.rs"), "", 0);
}
