//! Per-domain lint configuration.
//!
//! Each contract rule applies to a *domain*: a set of workspace-relative
//! path prefixes (with optional carve-outs). [`LintConfig::workspace`]
//! is the checked-in configuration for this repository; fixture tests
//! build their own configs pointing at synthetic paths.

/// A set of files described by include/exclude path prefixes.
/// Paths are workspace-relative with `/` separators; an include of
/// `crates/core/src/` covers the whole directory, an include of a full
/// file path covers exactly that file.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    /// Prefixes a file must match one of.
    pub include: Vec<String>,
    /// Prefixes that carve files back out.
    pub exclude: Vec<String>,
}

impl Domain {
    /// Build a domain from include/exclude prefix lists.
    pub fn new(include: &[&str], exclude: &[&str]) -> Domain {
        Domain {
            include: include.iter().map(|s| s.to_string()).collect(),
            exclude: exclude.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// True when `rel` (workspace-relative, `/`-separated) is in the
    /// domain.
    pub fn contains(&self, rel: &str) -> bool {
        self.include.iter().any(|p| rel.starts_with(p.as_str()))
            && !self.exclude.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// The full lint configuration: rule domains plus the lock protocol.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Files covered by `no-panic-in-serving` (the hot serving domain).
    pub serving: Domain,
    /// Files covered by `determinism-purity`.
    pub determinism: Domain,
    /// Files covered by `error-taxonomy`.
    pub taxonomy: Domain,
    /// Lock receiver names participating in `lock-discipline`, in
    /// declared acquisition order (acquiring an earlier lock while a
    /// later one is held is a violation). Only these names are
    /// analysed, so unrelated `.write()` methods (e.g. `fs::write`,
    /// `io::Write`) never false-positive.
    pub lock_order: Vec<String>,
    /// Function names that must never be called while a `.write()`
    /// guard on any configured lock is in scope (the trainer/retrain
    /// entry points — training happens *before* the publish lock).
    pub forbidden_under_write: Vec<String>,
}

impl LintConfig {
    /// The checked-in configuration for this workspace. Domains mirror
    /// the contracts established by earlier PRs:
    ///
    /// * serving: the branch-free epoch-swap serving path
    ///   (`dtree::{flat, serve, engine, store}`) must be panic-free;
    ///   `dtree::wal` rides along because appends run inline under the
    ///   admission write lock — a panicking durability layer would take
    ///   the serving path down with it.
    /// * determinism: training and retraining (`core` minus
    ///   `lifecycle.rs`, `rl`, `nn`) must not read wall clocks or
    ///   ambient randomness; `lifecycle.rs` is the single file where
    ///   wall-clock time is allowed to enter.
    /// * taxonomy: `dtree` and `core` public APIs report failures as
    ///   typed errors, not panics.
    /// * locks: `state` (the `ClassifierHandle` epoch-swap lock) is the
    ///   only declared lock; retrain entry points are forbidden under
    ///   its write guard.
    pub fn workspace() -> LintConfig {
        LintConfig {
            serving: Domain::new(
                &[
                    "crates/dtree/src/flat.rs",
                    "crates/dtree/src/serve.rs",
                    "crates/dtree/src/engine.rs",
                    "crates/dtree/src/store.rs",
                    "crates/dtree/src/wal.rs",
                ],
                &[],
            ),
            determinism: Domain::new(
                &["crates/core/src/", "crates/rl/src/", "crates/nn/src/"],
                &["crates/core/src/lifecycle.rs"],
            ),
            taxonomy: Domain::new(&["crates/dtree/src/", "crates/core/src/"], &[]),
            lock_order: vec!["state".to_string()],
            forbidden_under_write: vec![
                "train".to_string(),
                "train_to_tree".to_string(),
                "retrain_snapshot".to_string(),
                "poll".to_string(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_prefix_matching() {
        let d = Domain::new(&["crates/core/src/"], &["crates/core/src/lifecycle.rs"]);
        assert!(d.contains("crates/core/src/env.rs"));
        assert!(!d.contains("crates/core/src/lifecycle.rs"));
        assert!(!d.contains("crates/rl/src/ppo.rs"));
    }

    #[test]
    fn workspace_config_shape() {
        let c = LintConfig::workspace();
        assert!(c.serving.contains("crates/dtree/src/flat.rs"));
        assert!(!c.serving.contains("crates/dtree/src/tree.rs"));
        assert!(c.determinism.contains("crates/rl/src/ppo.rs"));
        assert!(!c.determinism.contains("crates/core/src/lifecycle.rs"));
        assert_eq!(c.lock_order, ["state"]);
    }
}
