//! Token-level structure pass: function spans, `#[cfg(test)]` /
//! `#[test]` exemption spans, `debug_assert!` interiors, and a brace
//! map for lexical-scope queries.
//!
//! This is deliberately not an AST. Every question the rules ask —
//! "which function contains this token", "is this token in test code",
//! "where does the block enclosing this `let` end" — is answerable
//! from matched delimiters plus a few keyword patterns.

use crate::lexer::{Tok, TokKind};

/// One `fn` item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Token index of the item start (first attribute or visibility
    /// token), used to attach function-scoped pragmas written above
    /// the attributes.
    pub item_start: usize,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True when the signature has no `->` or returns `()`.
    pub returns_unit: bool,
    /// Token indices of the body `{` and its matching `}`; `None` for
    /// bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

/// Structure facts over one file's token stream.
#[derive(Debug, Default)]
pub struct Structure {
    /// All functions, in source order.
    pub fns: Vec<FnInfo>,
    /// Token-index spans (inclusive) of test-only items: anything under
    /// `#[cfg(test)]`, `#[test]`, or `#[should_panic]`.
    pub test_spans: Vec<(usize, usize)>,
    /// Token-index spans (inclusive) of `debug_assert*!(...)` interiors.
    pub debug_spans: Vec<(usize, usize)>,
    /// For each token, the token index of the innermost enclosing `{`
    /// (`usize::MAX` at top level).
    pub enclosing_brace: Vec<usize>,
    /// Map from `{` token index to its matching `}` token index.
    pub brace_match: Vec<(usize, usize)>,
}

/// Rust keywords that can legitimately precede `[` without the bracket
/// being an index expression (`match x { [a, b] => .. }` patterns,
/// `return [0; 4]`, etc.).
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "as", "ref", "move", "await", "loop",
    "while", "for", "break", "continue", "unsafe", "dyn", "impl", "where", "use", "pub", "fn",
    "static", "const", "type", "enum", "struct", "trait", "mod", "crate", "super",
];

impl Structure {
    /// Build the structure facts for a token stream.
    pub fn build(toks: &[Tok]) -> Structure {
        let mut s =
            Structure { enclosing_brace: vec![usize::MAX; toks.len()], ..Structure::default() };
        s.build_braces(toks);
        s.build_fns(toks);
        s.build_test_spans(toks);
        s.build_debug_spans(toks);
        s
    }

    fn build_braces(&mut self, toks: &[Tok]) {
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            self.enclosing_brace[i] = stack.last().copied().unwrap_or(usize::MAX);
            if t.is_punct('{') {
                stack.push(i);
            } else if t.is_punct('}') {
                if let Some(open) = stack.pop() {
                    self.brace_match.push((open, i));
                }
            }
        }
        self.brace_match.sort_unstable();
    }

    /// The matching `}` for a `{` token index.
    pub fn close_of(&self, open: usize) -> Option<usize> {
        self.brace_match
            .binary_search_by_key(&open, |&(o, _)| o)
            .ok()
            .map(|k| self.brace_match[k].1)
    }

    fn build_fns(&mut self, toks: &[Tok]) {
        let mut i = 0usize;
        while i < toks.len() {
            if !toks[i].is_ident("fn") {
                i += 1;
                continue;
            }
            // `fn` as a type (`fn(usize)`) has no following ident.
            let name = match toks.get(i + 1) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let (item_start, is_pub) = walk_back_item(toks, i);
            // Locate the argument list: the first `(` at angle-bracket
            // depth zero after the name, so `Fn(..) -> T` inside generic
            // bounds is never mistaken for the argument list. A `>`
            // preceded by `-` is an arrow, not a generic close.
            let mut angle = 0i32;
            let mut j = i + 2;
            let mut args_open = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') && !toks[j - 1].is_punct('-') {
                    angle -= 1;
                } else if angle == 0 && t.is_punct('(') {
                    args_open = Some(j);
                    break;
                } else if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            // Matching `)` of the argument list.
            let args_close = args_open.map(|o| {
                let mut depth = 0i32;
                let mut k = o;
                while k < toks.len() {
                    if toks[k].is_punct('(') {
                        depth += 1;
                    } else if toks[k].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k
            });
            // The return type, if any, starts immediately after `)`.
            let returns_unit = match args_close {
                Some(a)
                    if toks.get(a + 1).map(|t| t.is_punct('-')).unwrap_or(false)
                        && toks.get(a + 2).map(|t| t.is_punct('>')).unwrap_or(false) =>
                {
                    toks.get(a + 3).map(|t| t.is_punct('(')).unwrap_or(false)
                        && toks.get(a + 4).map(|t| t.is_punct(')')).unwrap_or(false)
                }
                _ => true,
            };
            // Find the body `{` (or terminating `;`) at zero
            // paren/bracket depth after the argument list.
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut j = args_close.map(|a| a + 1).unwrap_or(i + 1);
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                } else if paren == 0 && bracket == 0 && t.is_punct('{') {
                    body = Some((j, self.close_of(j).unwrap_or(toks.len() - 1)));
                    break;
                } else if paren == 0 && bracket == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            self.fns.push(FnInfo { name, item_start, fn_idx: i, is_pub, returns_unit, body });
            i += 1;
        }
    }

    fn build_test_spans(&mut self, toks: &[Tok]) {
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
                i += 1;
                continue;
            }
            // Collect idents inside the attribute group.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut names: Vec<&str> = Vec::new();
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Ident {
                    names.push(&t.text);
                }
                j += 1;
            }
            let is_test_attr = names.iter().any(|n| *n == "test" || *n == "should_panic");
            if !is_test_attr {
                i = j + 1;
                continue;
            }
            // Span: from the `#` through the end of the annotated item
            // (its first depth-0 `{` block, or the terminating `;`).
            let mut k = j + 1;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut end = toks.len().saturating_sub(1);
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if t.is_punct('[') {
                    bracket += 1;
                } else if t.is_punct(']') {
                    bracket -= 1;
                } else if paren == 0 && bracket == 0 && t.is_punct('{') {
                    end = self.close_of(k).unwrap_or(end);
                    break;
                } else if paren == 0 && bracket == 0 && t.is_punct(';') {
                    end = k;
                    break;
                }
                k += 1;
            }
            self.test_spans.push((i, end));
            i = j + 1;
        }
    }

    fn build_debug_spans(&mut self, toks: &[Tok]) {
        let mut i = 0usize;
        while i + 2 < toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text.starts_with("debug_assert")
                && toks[i + 1].is_punct('!')
            {
                // Macro body: match the delimiter after `!`.
                let open = i + 2;
                let (o, c) = (
                    &toks[open].text,
                    match toks[open].text.as_str() {
                        "(" => ")",
                        "[" => "]",
                        _ => "}",
                    },
                );
                let mut depth = 0i32;
                let mut j = open;
                while j < toks.len() {
                    if toks[j].kind == TokKind::Punct && toks[j].text == *o {
                        depth += 1;
                    } else if toks[j].kind == TokKind::Punct && toks[j].text == c {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                self.debug_spans.push((i, j.min(toks.len() - 1)));
                i = j;
            }
            i += 1;
        }
    }

    /// True when token `i` lies in any test span.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// True when token `i` lies inside a `debug_assert*!` invocation.
    pub fn in_debug(&self, i: usize) -> bool {
        self.debug_spans.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.map(|(o, c)| o <= i && i <= c).unwrap_or(false))
            .max_by_key(|f| f.body.unwrap().0)
    }
}

/// Walk back from a `fn` keyword over visibility, qualifiers, and
/// attribute groups to the start of the item. Returns the item-start
/// token index and whether the item is unrestricted-`pub`.
fn walk_back_item(toks: &[Tok], fn_idx: usize) -> (usize, bool) {
    let mut i = fn_idx;
    let mut is_pub = false;
    while i > 0 {
        let p = &toks[i - 1];
        if p.kind == TokKind::Ident
            && matches!(p.text.as_str(), "pub" | "const" | "unsafe" | "async" | "extern")
        {
            if p.text == "pub" {
                // Unrestricted unless followed by a `(...)` qualifier.
                is_pub = !toks.get(i).map(|t| t.is_punct('(')).unwrap_or(false);
            }
            i -= 1;
        } else if p.kind == TokKind::Str {
            // `extern "C"` ABI string.
            i -= 1;
        } else if p.is_punct(')') {
            // `pub(crate)` / `pub(in path)` qualifier: walk to `(`.
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_ident("pub") {
                i = j - 1;
            } else {
                break;
            }
        } else if p.is_punct(']') {
            // Attribute group: walk back to its `#`.
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_punct('#') {
                i = j - 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    (i, is_pub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_spans_and_signatures() {
        let src = r#"
pub fn unit_fn(x: usize) { let _ = x; }
fn returns_val() -> usize { 3 }
pub(crate) fn crate_fn() -> () {}
pub fn generic<F: Fn(usize) -> bool>(f: F) -> bool { f(1) }
pub fn callback<F: FnMut(usize) -> bool>(f: F) { f(1); }
fn whered<F>(f: F) where F: Fn() -> bool { f(); }
"#;
        let l = lex(src);
        let s = Structure::build(&l.tokens);
        assert_eq!(s.fns.len(), 6);
        assert!(s.fns[4].returns_unit, "arrow inside generic bounds is not a return type");
        assert!(s.fns[5].returns_unit, "arrow inside where clause is not a return type");
        assert!(s.fns[0].is_pub && s.fns[0].returns_unit);
        assert!(!s.fns[1].is_pub && !s.fns[1].returns_unit);
        assert!(!s.fns[2].is_pub, "pub(crate) is not unrestricted pub");
        assert!(s.fns[2].returns_unit, "-> () is unit");
        assert!(s.fns[3].is_pub && !s.fns[3].returns_unit, "closure arrow in generics ignored");
    }

    #[test]
    fn test_spans_cover_mod_and_fn() {
        let src = r#"
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
"#;
        let l = lex(src);
        let s = Structure::build(&l.tokens);
        let unwraps: Vec<usize> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!s.in_test(unwraps[0]));
        assert!(s.in_test(unwraps[1]));
    }

    #[test]
    fn debug_assert_interior_exempt() {
        let src = "fn f(v: &[u32]) { debug_assert!(v[0] > 1); let x = v[1]; }";
        let l = lex(src);
        let s = Structure::build(&l.tokens);
        let brackets: Vec<usize> =
            l.tokens.iter().enumerate().filter(|(_, t)| t.is_punct('[')).map(|(i, _)| i).collect();
        // First index is inside the debug_assert, second is live code.
        assert!(s.in_debug(brackets[1]));
        assert!(!s.in_debug(brackets[2]));
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = "fn outer() { fn inner() { marker(); } }";
        let l = lex(src);
        let s = Structure::build(&l.tokens);
        let m = l.tokens.iter().position(|t| t.is_ident("marker")).unwrap();
        assert_eq!(s.enclosing_fn(m).unwrap().name, "inner");
    }

    #[test]
    fn attributes_fold_into_item_start() {
        let src = "#[inline]\n#[must_use]\npub fn hot() -> usize { 1 }";
        let l = lex(src);
        let s = Structure::build(&l.tokens);
        assert_eq!(s.fns[0].item_start, 0, "item starts at the first attribute");
        assert!(s.fns[0].is_pub);
    }
}
