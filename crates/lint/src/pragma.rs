//! The inline pragma system.
//!
//! Two directives ride on ordinary line comments:
//!
//! * `nc-lint: allow(rule[, rule...], reason = "...")` — suppress the
//!   named rules. The reason is mandatory; allows that suppress nothing
//!   are themselves violations (`unused-allow`), so stale pragmas
//!   cannot accumulate.
//! * `nc-lint: kernel` — mark the following function as a hot kernel:
//!   it gains the `no-alloc-in-kernels` rule and, in exchange, its
//!   slice indexing is accepted as bounds-by-construction (the
//!   `no-panic-in-serving` indexing check skips kernel bodies).
//!
//! Attachment: a standalone comment applies to the next code line — or,
//! when that line starts a `fn` item (attributes included), to the
//! whole function span. A trailing comment applies to its own line.
//! Doc comments (`///`, `//!`) are never parsed as pragmas.

use crate::lexer::Lexed;
use crate::report::Violation;
use crate::structure::Structure;

/// One parsed `allow` pragma with its resolved line scope.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rules this pragma suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// Line of the pragma comment itself (where meta-violations point).
    pub line: u32,
    /// Inclusive line range the pragma covers.
    pub scope: (u32, u32),
    /// Per-rule "suppressed something" flags, parallel to `rules`.
    pub used: Vec<bool>,
}

/// All pragmas found in one file.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// Allow pragmas.
    pub allows: Vec<Allow>,
    /// Indices into `Structure::fns` of kernel-marked functions.
    pub kernel_fns: Vec<usize>,
}

/// Parse and resolve every pragma in a file. Malformed pragmas,
/// unknown rule names, and unresolvable attachments are reported as
/// meta-violations rather than silently ignored.
pub fn collect(
    lexed: &Lexed,
    st: &Structure,
    registry: &[&'static str],
    file: &str,
) -> (Pragmas, Vec<Violation>) {
    let mut out = Pragmas::default();
    let mut viols = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim_start();
        // `///` doc comments arrive with a leading `/`; never pragmas.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(rest) = text.strip_prefix("nc-lint:") else { continue };
        let rest = rest.trim();
        if rest == "kernel" {
            match resolve_fn(lexed, st, c.line, c.own_line) {
                Some(fi) => out.kernel_fns.push(fi),
                None => viols.push(meta(
                    "malformed-pragma",
                    file,
                    c.line,
                    "`nc-lint: kernel` must annotate a function",
                )),
            }
            continue;
        }
        if let Some(inner) = rest.strip_prefix("allow") {
            match parse_allow(inner.trim()) {
                Ok((rules, reason)) => {
                    for r in &rules {
                        if !registry.contains(&r.as_str()) {
                            viols.push(meta(
                                "unknown-rule",
                                file,
                                c.line,
                                &format!("unknown rule `{r}` in allow pragma"),
                            ));
                        }
                    }
                    let Some(scope) = resolve_scope(lexed, st, c.line, c.own_line) else {
                        viols.push(meta(
                            "malformed-pragma",
                            file,
                            c.line,
                            "allow pragma attaches to no code",
                        ));
                        continue;
                    };
                    let used = vec![false; rules.len()];
                    out.allows.push(Allow { rules, reason, line: c.line, scope, used });
                }
                Err(e) => viols.push(meta("malformed-pragma", file, c.line, &e)),
            }
            continue;
        }
        viols.push(meta(
            "malformed-pragma",
            file,
            c.line,
            &format!("unknown nc-lint directive `{rest}`"),
        ));
    }
    (out, viols)
}

fn meta(rule: &'static str, file: &str, line: u32, msg: &str) -> Violation {
    Violation { rule, file: file.to_string(), line, msg: msg.to_string() }
}

/// Parse the `(rule[, rule...], reason = "...")` tail of an allow.
fn parse_allow(s: &str) -> Result<(Vec<String>, String), String> {
    let s = s.strip_prefix('(').ok_or("allow pragma missing `(`")?;
    let s = s.strip_suffix(')').ok_or("allow pragma missing closing `)`")?;
    let mut rules = Vec::new();
    let mut reason: Option<String> = None;
    let b: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() || c == ',' {
            i += 1;
            continue;
        }
        if reason.is_some() {
            return Err("reason must be the last item in an allow pragma".into());
        }
        // An identifier: either a rule name or the `reason` keyword.
        let start = i;
        while i < b.len() && (b[i] == '_' || b[i] == '-' || b[i].is_alphanumeric()) {
            i += 1;
        }
        if i == start {
            return Err(format!("unexpected `{c}` in allow pragma"));
        }
        let word: String = b[start..i].iter().collect();
        if word == "reason" {
            while i < b.len() && b[i].is_whitespace() {
                i += 1;
            }
            if i >= b.len() || b[i] != '=' {
                return Err("expected `=` after `reason`".into());
            }
            i += 1;
            while i < b.len() && b[i].is_whitespace() {
                i += 1;
            }
            if i >= b.len() || b[i] != '"' {
                return Err("reason must be a quoted string".into());
            }
            i += 1;
            let rstart = i;
            while i < b.len() && b[i] != '"' {
                i += 1;
            }
            if i >= b.len() {
                return Err("unterminated reason string".into());
            }
            let r: String = b[rstart..i].iter().collect();
            if r.trim().is_empty() {
                return Err("reason must not be empty".into());
            }
            reason = Some(r);
            i += 1;
        } else {
            rules.push(word);
        }
    }
    if rules.is_empty() {
        return Err("allow pragma names no rules".into());
    }
    match reason {
        Some(r) => Ok((rules, r)),
        None => Err("allow pragma requires `reason = \"...\"`".into()),
    }
}

/// First code token strictly after `line`.
fn next_code_token(lexed: &Lexed, line: u32) -> Option<usize> {
    lexed.tokens.iter().position(|t| t.line > line)
}

/// Resolve an allow pragma's line scope.
fn resolve_scope(lexed: &Lexed, st: &Structure, line: u32, own_line: bool) -> Option<(u32, u32)> {
    if !own_line {
        return Some((line, line));
    }
    let t = next_code_token(lexed, line)?;
    // Directly above a fn item (including its attributes): scope is the
    // whole function.
    if let Some(f) = st.fns.iter().find(|f| f.item_start <= t && t <= f.fn_idx) {
        let lo = lexed.tokens[f.item_start].line;
        let hi = match f.body {
            Some((_, close)) => lexed.tokens[close].line,
            None => lexed.tokens[f.fn_idx].line,
        };
        return Some((lo, hi));
    }
    let l = lexed.tokens[t].line;
    Some((l, l))
}

/// Resolve a kernel pragma to the function it annotates.
fn resolve_fn(lexed: &Lexed, st: &Structure, line: u32, own_line: bool) -> Option<usize> {
    if own_line {
        let t = next_code_token(lexed, line)?;
        st.fns.iter().position(|f| f.item_start <= t && t <= f.fn_idx)
    } else {
        // Trailing on a signature line.
        st.fns.iter().position(|f| {
            let lo = lexed.tokens[f.item_start].line;
            let hi = f.body.map(|(o, _)| lexed.tokens[o].line).unwrap_or(lo);
            lo <= line && line <= hi
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const REG: &[&str] = &["rule-a", "rule-b"];

    fn run(src: &str) -> (Pragmas, Vec<Violation>) {
        let l = lex(src);
        let st = Structure::build(&l.tokens);
        collect(&l, &st, REG, "test.rs")
    }

    #[test]
    fn allow_scopes() {
        let src = r#"
// nc-lint: allow(rule-a, reason = "next line")
let x = 1;
let y = 2; // nc-lint: allow(rule-b, reason = "this line")
// nc-lint: allow(rule-a, rule-b, reason = "whole fn")
pub fn covered() {
    let z = 3;
}
"#;
        let (p, v) = run(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p.allows.len(), 3);
        assert_eq!(p.allows[0].scope, (3, 3));
        assert_eq!(p.allows[1].scope, (4, 4));
        assert_eq!(p.allows[2].scope, (6, 8));
        assert_eq!(p.allows[2].rules, ["rule-a", "rule-b"]);
    }

    #[test]
    fn kernel_attaches_to_fn() {
        let src = "// nc-lint: kernel\n#[inline]\nfn hot() {}\nfn cold() {}";
        let (p, v) = run(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(p.kernel_fns, [0]);
    }

    #[test]
    fn malformed_pragmas_are_violations() {
        for (src, needle) in [
            ("// nc-lint: allow(rule-a)\nlet x = 1;", "requires `reason"),
            ("// nc-lint: allow(reason = \"r\")\nlet x = 1;", "names no rules"),
            ("// nc-lint: allow(rule-a, reason = \"\")\nlet x = 1;", "empty"),
            ("// nc-lint: frobnicate\nlet x = 1;", "unknown nc-lint directive"),
            ("// nc-lint: kernel\nlet x = 1;", "must annotate a function"),
            ("// nc-lint: allow(rule-c, reason = \"r\")\nlet x = 1;", "unknown rule"),
        ] {
            let (_, v) = run(src);
            assert_eq!(v.len(), 1, "{src}");
            assert!(v[0].msg.contains(needle), "{src} -> {}", v[0].msg);
        }
    }

    #[test]
    fn doc_comments_are_not_pragmas() {
        let (p, v) = run("/// nc-lint: kernel\nfn documented() {}\n//! nc-lint: allow(x)\n");
        assert!(p.allows.is_empty() && p.kernel_fns.is_empty() && v.is_empty());
    }
}
