//! `nc-lint` binary: lint the workspace, print file:line diagnostics,
//! optionally write a JSON report, and exit non-zero on violations.
//!
//! ```text
//! nc-lint [--root DIR] [--json FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json requires a file path"),
            },
            "--help" | "-h" => {
                println!("usage: nc-lint [--root DIR] [--json FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let cfg = nc_lint::config::LintConfig::workspace();
    let report = match nc_lint::lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nc-lint: error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if report.files == 0 {
        eprintln!(
            "nc-lint: no .rs files found under {} — wrong --root? (refusing to report clean)",
            root.display()
        );
        return ExitCode::from(2);
    }
    print!("{}", report.render_text());
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("nc-lint: error writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("nc-lint: {msg}\nusage: nc-lint [--root DIR] [--json FILE]");
    ExitCode::from(2)
}
