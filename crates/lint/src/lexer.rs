//! A hand-rolled Rust lexer: just enough fidelity for token-level
//! contract checking.
//!
//! The lexer produces a flat stream of code tokens plus a separate list
//! of line comments (the pragma carriers). It understands everything
//! that would otherwise corrupt a naive scan — nested block comments,
//! string/char/byte literals, raw strings with `#` fences, lifetimes vs
//! char literals, raw identifiers — but deliberately does not build an
//! AST: every rule in this workspace is expressible over tokens plus
//! the light structure pass in [`crate::structure`].

/// Token classification. Punctuation is emitted one character per
/// token; multi-character operators (`::`, `->`) are recognised by the
/// rules as adjacent pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Lifetime such as `'a` (without the quote in `text`).
    Lifetime,
    /// Numeric literal, including suffixes (`16usize`, `0xff`).
    Num,
    /// String or byte-string literal (raw or not); `text` is the raw
    /// source slice including quotes.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Single punctuation character.
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One `//` line comment. Block comments are skipped entirely: pragmas
/// ride only on line comments, where attachment is unambiguous.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line number.
    pub line: u32,
    /// Text after the leading `//`, untrimmed (so `///` doc comments
    /// arrive with a leading `/` and are never mistaken for pragmas).
    pub text: String,
    /// True when no code token precedes the comment on its line — a
    /// standalone comment attaches to the *next* code line, a trailing
    /// comment to its own.
    pub own_line: bool,
}

/// Lexer output: code tokens and line comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens.
    pub tokens: Vec<Tok>,
    /// Line comments.
    pub comments: Vec<Comment>,
}

/// Lex a source file. Invalid UTF-8 is never seen (callers read with
/// `fs::read_to_string`); malformed source degrades to best-effort
/// tokens rather than an error — the linter runs on code that rustc
/// has already accepted.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();
    let mut last_code_line: u32 = 0;

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
                own_line: last_code_line != line,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings / byte strings / raw identifiers, keyed on a
        // leading `r` or `b` before consuming a plain identifier.
        if c == 'r' || c == 'b' {
            if let Some((tok, next)) = lex_raw_or_byte(&b, i, &mut line) {
                last_code_line = tok.line;
                out.tokens.push(tok);
                i = next;
                continue;
            }
        }
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            last_code_line = line;
            out.tokens.push(Tok { kind: TokKind::Ident, text: b[start..i].iter().collect(), line });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n
                && (b[i] == '_'
                    || b[i].is_alphanumeric()
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            last_code_line = line;
            out.tokens.push(Tok { kind: TokKind::Num, text: b[start..i].iter().collect(), line });
            continue;
        }
        if c == '"' {
            let (text, next) = lex_string(&b, i, &mut line);
            last_code_line = line;
            out.tokens.push(Tok { kind: TokKind::Str, text, line });
            i = next;
            continue;
        }
        if c == '\'' {
            let (tok, next) = lex_quote(&b, i, line);
            last_code_line = line;
            out.tokens.push(tok);
            i = next;
            continue;
        }
        // Single punctuation character.
        last_code_line = line;
        out.tokens.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

/// Handle `r"..."`, `r#"..."#`, `br"..."`, `b"..."`, `b'x'`, and raw
/// identifiers `r#ident`. Returns `None` when the `r`/`b` at `i` is
/// just the start of a plain identifier.
fn lex_raw_or_byte(b: &[char], i: usize, line: &mut u32) -> Option<(Tok, usize)> {
    let n = b.len();
    let start_line = *line;
    let mut j = i + 1;
    if b[i] == 'b' && j < n && b[j] == 'r' {
        j += 1;
    }
    // Raw identifier: r#ident (raw-string fences are `#` runs ending in
    // a quote; an alphabetic after `#` means an identifier).
    if b[i] == 'r'
        && j < n
        && b[j] == '#'
        && j + 1 < n
        && (b[j + 1] == '_' || b[j + 1].is_alphabetic())
    {
        let mut k = j + 1;
        while k < n && (b[k] == '_' || b[k].is_alphanumeric()) {
            k += 1;
        }
        let tok =
            Tok { kind: TokKind::Ident, text: b[j + 1..k].iter().collect(), line: start_line };
        return Some((tok, k));
    }
    // Raw string: optional `#` fence run then `"`.
    let mut hashes = 0usize;
    let mut k = j;
    while k < n && b[k] == '#' {
        hashes += 1;
        k += 1;
    }
    if k < n && b[k] == '"' && (hashes > 0 || b[i] == 'r' || (b[i] == 'b' && j > i + 1)) {
        // Scan to closing `"` + fence.
        let mut m = k + 1;
        'outer: while m < n {
            if b[m] == '\n' {
                *line += 1;
                m += 1;
                continue;
            }
            if b[m] == '"' {
                let mut h = 0usize;
                while h < hashes && m + 1 + h < n && b[m + 1 + h] == '#' {
                    h += 1;
                }
                if h == hashes {
                    m += 1 + hashes;
                    break 'outer;
                }
            }
            m += 1;
        }
        let tok =
            Tok { kind: TokKind::Str, text: b[i..m.min(n)].iter().collect(), line: start_line };
        return Some((tok, m.min(n)));
    }
    // Plain byte string b"..." or byte char b'x'.
    if b[i] == 'b' && i + 1 < n && b[i + 1] == '"' {
        let (text, next) = lex_string(b, i + 1, line);
        let mut t = String::from("b");
        t.push_str(&text);
        return Some((Tok { kind: TokKind::Str, text: t, line: start_line }, next));
    }
    if b[i] == 'b' && i + 1 < n && b[i + 1] == '\'' {
        let (tok, next) = lex_quote(b, i + 1, start_line);
        return Some((tok, next));
    }
    None
}

/// Lex a `"..."` string starting at the opening quote; returns the
/// source slice (quotes included) and the index past the closing quote.
fn lex_string(b: &[char], i: usize, line: &mut u32) -> (String, usize) {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (b[i..j.min(n)].iter().collect(), j.min(n))
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime) at a `'`.
fn lex_quote(b: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    // Escape => definitely a char literal.
    if i + 1 < n && b[i + 1] == '\\' {
        let mut j = i + 2;
        // Skip the escape body up to the closing quote.
        while j < n && b[j] != '\'' {
            j += 1;
        }
        let j = (j + 1).min(n);
        return (Tok { kind: TokKind::Char, text: b[i..j].iter().collect(), line }, j);
    }
    // Identifier-like run after the quote: lifetime unless a closing
    // quote follows immediately.
    if i + 1 < n && (b[i + 1] == '_' || b[i + 1].is_alphabetic()) {
        let mut j = i + 1;
        while j < n && (b[j] == '_' || b[j].is_alphanumeric()) {
            j += 1;
        }
        if j < n && b[j] == '\'' {
            return (Tok { kind: TokKind::Char, text: b[i..j + 1].iter().collect(), line }, j + 1);
        }
        return (Tok { kind: TokKind::Lifetime, text: b[i + 1..j].iter().collect(), line }, j);
    }
    // Any other single char literal, e.g. '0' ' ' '}'.
    if i + 2 < n && b[i + 2] == '\'' {
        return (Tok { kind: TokKind::Char, text: b[i..i + 3].iter().collect(), line }, i + 3);
    }
    (Tok { kind: TokKind::Punct, text: "'".into(), line }, i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn main() {\n    let x = 1;\n}\n");
        assert!(l.tokens[0].is_ident("fn"));
        assert!(l.tokens[1].is_ident("main"));
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn strings_and_chars_hide_contents() {
        let ids = idents(r#"let s = "fn unwrap()"; let c = 'x'; let lt: &'static str = s;"#);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"let".to_string()));
        let l = lex("let lt: &'a str = s; let c = 'b';");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Char && t.text == "'b'"));
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let src =
            "let r = r#\"has \"quotes\" and unwrap()\"#; /* outer /* inner */ still */ let y = 2;";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"still".to_string()));
        assert!(ids.contains(&"y".to_string()));
    }

    #[test]
    fn comments_carry_text_and_placement() {
        let l = lex("// standalone\nlet a = 1; // trailing\n");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].own_line);
        assert_eq!(l.comments[0].text, " standalone");
        assert!(!l.comments[1].own_line);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let l = lex("let s = \"a\nb\";\nlet t = 3;");
        let t = l.tokens.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn raw_identifier() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }
}
