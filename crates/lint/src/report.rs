//! Diagnostics and report rendering (text and hand-rolled JSON).

use std::fmt;

/// One finding, pointing at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (a contract rule or one of the pragma meta-rules).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Workspace-level run summary.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files: usize,
    /// Total `allow` pragmas found (the self-check pins this so new
    /// allows surface in review).
    pub allows: usize,
    /// Total `kernel` pragmas found.
    pub kernels: usize,
}

impl Report {
    /// Canonical ordering for deterministic output.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Render the file:line diagnostics plus a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "nc-lint: {} file(s), {} violation(s), {} allow pragma(s), {} kernel(s)\n",
            self.files,
            self.violations.len(),
            self.allows,
            self.kernels
        ));
        out
    }

    /// Render the machine-readable JSON report. Hand-rolled: the lint
    /// crate is std-only by design (it must build before the shims it
    /// checks).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files\": {},\n", self.files));
        out.push_str(&format!("  \"allows\": {},\n", self.allows));
        out.push_str(&format!("  \"kernels\": {},\n", self.kernels));
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"msg\": {}}}{}\n",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.msg),
                if i + 1 < self.violations.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escape a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_json_render() {
        let mut r = Report {
            violations: vec![Violation {
                rule: "no-panic-in-serving",
                file: "crates/dtree/src/flat.rs".into(),
                line: 7,
                msg: "`.unwrap()` in serving domain".into(),
            }],
            files: 3,
            allows: 2,
            kernels: 1,
        };
        r.sort();
        let text = r.render_text();
        assert!(text.contains("crates/dtree/src/flat.rs:7: [no-panic-in-serving]"));
        let json = r.render_json();
        assert!(json.contains("\"files\": 3"));
        assert!(json.contains("\"line\": 7"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
