//! `nc-lint`: a workspace static-analysis pass enforcing the
//! serving/determinism/locking contracts.
//!
//! The repo's load-bearing guarantees — panic-free branch-free serving,
//! bit-identical determinism of training and retraining, and the
//! one-write-lock epoch-swap protocol — are encoded here as
//! machine-checked rules over the workspace's own source. The pass is
//! deterministic, std-only (no `syn`; a hand-rolled lexer + token
//! matcher, matching the offline-shim constraint), and runs as a CI
//! gate: `cargo run -p nc-lint` exits non-zero with file:line
//! diagnostics on any violation.
//!
//! See [`rules`] for the contract rules, [`pragma`] for the
//! `nc-lint: allow(rule, reason = "...")` / `nc-lint: kernel` pragma
//! system, and [`config::LintConfig::workspace`] for the checked-in
//! domain configuration.

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod structure;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::LintConfig;
use pragma::Pragmas;
use report::{Report, Violation};
use rules::FileCtx;
use structure::Structure;

/// Lint one file's source. Returns the surviving violations (contract
/// findings not covered by an allow, plus pragma meta-violations) and
/// the file's pragma counts via the returned [`FileOutcome`].
pub fn lint_source(rel: &str, src: &str, cfg: &LintConfig) -> FileOutcome {
    let lexed = lexer::lex(src);
    let st = Structure::build(&lexed.tokens);
    let (mut pragmas, mut viols) = pragma::collect(&lexed, &st, &rules::RULES, rel);
    let ctx = FileCtx { rel, lexed: &lexed, st: &st, pragmas: &pragmas, cfg };
    let raw = rules::run_all(&ctx);
    let allows = pragmas.allows.len();
    let kernels = pragmas.kernel_fns.len();
    viols.extend(apply_allows(raw, &mut pragmas));
    // Unused allows are violations themselves: stale pragmas rot.
    for a in &pragmas.allows {
        for (ri, used) in a.used.iter().enumerate() {
            if !used {
                viols.push(Violation {
                    rule: "unused-allow",
                    file: rel.to_string(),
                    line: a.line,
                    msg: format!(
                        "allow(`{}`) suppresses nothing — remove the stale pragma",
                        a.rules[ri]
                    ),
                });
            }
        }
    }
    FileOutcome { violations: viols, allows, kernels }
}

/// Per-file lint result.
#[derive(Debug)]
pub struct FileOutcome {
    /// Surviving violations.
    pub violations: Vec<Violation>,
    /// Number of allow pragmas in the file (used or not).
    pub allows: usize,
    /// Number of kernel pragmas in the file.
    pub kernels: usize,
}

/// Filter raw findings through the allow pragmas, marking each allow's
/// per-rule used flags.
fn apply_allows(raw: Vec<Violation>, pragmas: &mut Pragmas) -> Vec<Violation> {
    raw.into_iter()
        .filter(|v| {
            let mut suppressed = false;
            for a in pragmas.allows.iter_mut() {
                if v.line < a.scope.0 || v.line > a.scope.1 {
                    continue;
                }
                if let Some(ri) = a.rules.iter().position(|r| r == v.rule) {
                    a.used[ri] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect()
}

/// Lint the whole workspace rooted at `root`: every `.rs` file under
/// `src/` and `crates/*/src/`, in sorted order for deterministic
/// output. Vendored shims (`shims/`) are external-API reimplementations
/// and are not subject to the workspace contracts.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> =
            fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for d in dirs {
            let s = d.join("src");
            if s.is_dir() {
                collect_rs(&s, &mut files)?;
            }
        }
    }
    files.sort();
    let mut report = Report::default();
    for f in &files {
        let srctext = fs::read_to_string(f)?;
        let rel = f.strip_prefix(root).unwrap_or(f).to_string_lossy().replace('\\', "/");
        let out = lint_source(&rel, &srctext, cfg);
        report.violations.extend(out.violations);
        report.allows += out.allows;
        report.kernels += out.kernels;
        report.files += 1;
    }
    report.sort();
    Ok(report)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::Domain;

    fn serving_cfg() -> LintConfig {
        let mut cfg = LintConfig::workspace();
        cfg.serving = Domain::new(&["fix.rs"], &[]);
        cfg.taxonomy = Domain::new(&["fix.rs"], &[]);
        cfg
    }

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    // nc-lint: allow(no-panic-in-serving, reason = "test scaffold")
    x.unwrap()
}
"#;
        let out = lint_source("fix.rs", src, &serving_cfg());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.allows, 1);
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = r#"
// nc-lint: allow(no-panic-in-serving, reason = "nothing here panics")
fn fine() {}
"#;
        let out = lint_source("fix.rs", src, &serving_cfg());
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].rule, "unused-allow");
    }

    #[test]
    fn multi_rule_allow_tracks_each_rule() {
        // assert_eq! in a pub unit fn trips both rule 1 and rule 5; one
        // combined allow covers both and neither is unused.
        let src = r#"
pub fn check(a: usize, b: usize) {
    // nc-lint: allow(no-panic-in-serving, error-taxonomy, reason = "documented length guard")
    assert_eq!(a, b);
}
"#;
        let out = lint_source("fix.rs", src, &serving_cfg());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
