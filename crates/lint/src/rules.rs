//! The contract rules.
//!
//! Each rule is a pure function over one file's tokens + structure +
//! pragmas, emitting raw findings; suppression (allow matching) and the
//! pragma meta-rules live in the crate-root driver so every rule
//! stays oblivious to pragmas.

use crate::config::LintConfig;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::pragma::Pragmas;
use crate::report::Violation;
use crate::structure::{Structure, NON_INDEX_KEYWORDS};

/// Registry of contract rule names, as written in allow pragmas.
pub const RULES: [&str; 5] = [
    "no-panic-in-serving",
    "no-alloc-in-kernels",
    "determinism-purity",
    "lock-discipline",
    "error-taxonomy",
];

/// Pragma meta-rule names (not suppressible, reported alongside).
pub const META_RULES: [&str; 3] = ["malformed-pragma", "unknown-rule", "unused-allow"];

/// Everything a rule needs about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Lexed tokens + comments.
    pub lexed: &'a Lexed,
    /// Structure facts.
    pub st: &'a Structure,
    /// Parsed pragmas (kernel marks).
    pub pragmas: &'a Pragmas,
    /// Lint configuration.
    pub cfg: &'a LintConfig,
}

impl<'a> FileCtx<'a> {
    fn toks(&self) -> &'a [Tok] {
        &self.lexed.tokens
    }

    /// Token `i` is exempt everywhere: test code or debug_assert body.
    fn exempt(&self, i: usize) -> bool {
        self.st.in_test(i) || self.st.in_debug(i)
    }

    /// Is token `i` inside a kernel-marked function body?
    fn in_kernel(&self, i: usize) -> bool {
        self.pragmas
            .kernel_fns
            .iter()
            .any(|&fi| self.st.fns[fi].body.map(|(o, c)| o <= i && i <= c).unwrap_or(false))
    }

    fn emit(&self, out: &mut Vec<Violation>, rule: &'static str, line: u32, msg: String) {
        out.push(Violation { rule, file: self.rel.to_string(), line, msg });
    }
}

/// Run every contract rule over one file.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    no_panic_in_serving(ctx, &mut out);
    no_alloc_in_kernels(ctx, &mut out);
    determinism_purity(ctx, &mut out);
    lock_discipline(ctx, &mut out);
    error_taxonomy(ctx, &mut out);
    out
}

/// Macro names whose expansion can panic at runtime.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Rule 1: the hot serving domain must be panic-free. Flags
/// `.unwrap()` / `.expect(`, panicking macros, and slice indexing
/// (`x[i]` can panic; use `.get()` or mark the fn `nc-lint: kernel`,
/// which trades the indexing check for the stricter no-alloc rule).
fn no_panic_in_serving(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.cfg.serving.contains(ctx.rel) {
        return;
    }
    let toks = ctx.toks();
    for i in 0..toks.len() {
        if ctx.exempt(i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(...)`.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            ctx.emit(
                out,
                "no-panic-in-serving",
                t.line,
                format!(
                    "`.{}()` in the serving domain — use a typed error or checked access",
                    t.text
                ),
            );
            continue;
        }
        // Panicking macros.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
        {
            ctx.emit(
                out,
                "no-panic-in-serving",
                t.line,
                format!("`{}!` in the serving domain — serving code must not panic", t.text),
            );
            continue;
        }
        // Index expressions: `[` whose previous code token is an
        // expression tail (identifier, `]`, or `)`), outside kernels.
        if t.is_punct('[') && i > 0 && !ctx.in_kernel(i) {
            let p = &toks[i - 1];
            let indexable = (p.kind == TokKind::Ident
                && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                || p.is_punct(']')
                || p.is_punct(')');
            if indexable {
                ctx.emit(
                    out,
                    "no-panic-in-serving",
                    t.line,
                    "slice indexing in the serving domain — use `.get()` or mark the fn \
                     `nc-lint: kernel` (bounds by construction)"
                        .to_string(),
                );
            }
        }
    }
}

/// Rule 2: kernel-marked functions must not allocate or copy.
fn no_alloc_in_kernels(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    const ALLOC_MACROS: &[&str] = &["vec", "format"];
    const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "HashMap", "BTreeMap", "VecDeque"];
    const ALLOC_METHODS: &[&str] =
        &["collect", "clone", "cloned", "to_vec", "to_owned", "to_string"];
    let toks = ctx.toks();
    for &fi in &ctx.pragmas.kernel_fns {
        let f = &ctx.st.fns[fi];
        let Some((open, close)) = f.body else { continue };
        for i in open..=close.min(toks.len() - 1) {
            if ctx.st.in_debug(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |c: char| toks.get(i + 1).map(|n| n.is_punct(c)).unwrap_or(false);
            let hit = if ALLOC_MACROS.contains(&t.text.as_str()) && next_is('!') {
                Some(format!("`{}!`", t.text))
            } else if ALLOC_TYPES.contains(&t.text.as_str())
                && next_is(':')
                && toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
            {
                Some(format!("`{}::`", t.text))
            } else if ALLOC_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_punct('.')
                && next_is('(')
            {
                Some(format!("`.{}()`", t.text))
            } else {
                None
            };
            if let Some(what) = hit {
                ctx.emit(
                    out,
                    "no-alloc-in-kernels",
                    t.line,
                    format!(
                        "{} inside kernel fn `{}` — kernels must not allocate or copy",
                        what, f.name
                    ),
                );
            }
        }
    }
}

/// Rule 3: the determinism domain must not read wall clocks or ambient
/// randomness. Wall-clock time enters the system only through
/// `lifecycle.rs` (excluded by config).
fn determinism_purity(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.cfg.determinism.contains(ctx.rel) {
        return;
    }
    const BANNED: &[&str] =
        &["Instant", "SystemTime", "UNIX_EPOCH", "thread_rng", "RandomState", "from_entropy"];
    for (i, t) in ctx.toks().iter().enumerate() {
        if ctx.exempt(i) {
            continue;
        }
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            ctx.emit(
                out,
                "determinism-purity",
                t.line,
                format!(
                    "`{}` in the determinism domain — wall-clock and ambient randomness are \
                     confined to lifecycle.rs",
                    t.text
                ),
            );
        }
    }
}

/// One lock acquisition site found by rule 4.
struct Acq {
    /// Token index of the method ident (`read`/`write`/`lock`).
    idx: usize,
    /// Configured lock name (the receiver field).
    name: String,
    /// Position of `name` in the declared order.
    order: usize,
    /// True for `.write()`.
    is_write: bool,
    /// Token-index scope the guard lexically covers.
    scope: (usize, usize),
}

/// Rule 4: lock discipline for the epoch-swap protocol. Within a
/// guard's lexical scope: no re-acquisition of the same lock (deadlock
/// with `parking_lot`'s non-reentrant locks), no acquisition of an
/// earlier lock in the declared order, and — under a write guard — no
/// calls into the trainer/retrain entry points (training must finish
/// before the publish lock is taken).
fn lock_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let toks = ctx.toks();
    let mut acqs: Vec<Acq> = Vec::new();
    for i in 0..toks.len() {
        if ctx.st.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "read" | "write" | "lock") {
            continue;
        }
        // Shape: `<name> . read ( )`.
        if !(i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_punct(')')).unwrap_or(false))
        {
            continue;
        }
        let name = toks[i - 2].text.clone();
        let Some(order) = ctx.cfg.lock_order.iter().position(|l| *l == name) else { continue };
        let is_write = t.text == "write";
        let scope = guard_scope(ctx, i);
        acqs.push(Acq { idx: i, name, order, is_write, scope });
    }
    for a in &acqs {
        // Nested acquisitions inside this guard's scope.
        for b in &acqs {
            if b.idx <= a.idx || b.idx < a.scope.0 || b.idx > a.scope.1 {
                continue;
            }
            if b.name == a.name {
                ctx.emit(
                    out,
                    "lock-discipline",
                    toks[b.idx].line,
                    format!(
                        "lock `{}` acquired again while its guard (line {}) is in scope — \
                         parking_lot locks are not reentrant",
                        a.name, toks[a.idx].line
                    ),
                );
            } else if b.order < a.order {
                ctx.emit(
                    out,
                    "lock-discipline",
                    toks[b.idx].line,
                    format!(
                        "lock `{}` acquired while `{}` guard (line {}) is held — violates the \
                         declared acquisition order",
                        b.name, a.name, toks[a.idx].line
                    ),
                );
            }
        }
        // Forbidden entry points under a write guard.
        if a.is_write {
            for j in a.scope.0..=a.scope.1.min(toks.len() - 1) {
                if j <= a.idx || ctx.st.in_test(j) {
                    continue;
                }
                let t = &toks[j];
                if t.kind == TokKind::Ident
                    && ctx.cfg.forbidden_under_write.contains(&t.text)
                    && toks.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                {
                    ctx.emit(
                        out,
                        "lock-discipline",
                        t.line,
                        format!(
                            "`{}(..)` called while the `{}` write guard (line {}) is held — \
                             training must complete before the epoch-swap publish lock",
                            t.text, a.name, toks[a.idx].line
                        ),
                    );
                }
            }
        }
    }
}

/// Lexical scope of a guard acquired at method-ident token `m`.
///
/// Let-bound guards (`let g = x.write();`) live to the end of the
/// enclosing block, or to an explicit `drop(g)`. Temporary guards
/// (`x.write().field = v;`) live to the end of their statement.
fn guard_scope(ctx: &FileCtx<'_>, m: usize) -> (usize, usize) {
    let toks = ctx.toks();
    // Walk back over the receiver chain (`a . b . write`), then look
    // for `let [mut] name =` immediately before it.
    let mut r = m - 2;
    while r >= 2 && toks[r - 1].is_punct('.') && toks[r - 2].kind == TokKind::Ident {
        r -= 2;
    }
    let mut bound: Option<&str> = None;
    if r >= 3 && toks[r - 1].is_punct('=') && toks[r - 2].kind == TokKind::Ident {
        let name_idx = r - 2;
        let mut q = name_idx;
        if q >= 1 && toks[q - 1].is_ident("mut") {
            q -= 1;
        }
        if q >= 1 && toks[q - 1].is_ident("let") {
            bound = Some(&toks[name_idx].text);
        }
    }
    match bound {
        Some(name) => {
            let open = ctx.st.enclosing_brace[m];
            let end = if open == usize::MAX {
                toks.len() - 1
            } else {
                ctx.st.close_of(open).unwrap_or(toks.len() - 1)
            };
            // An explicit `drop(name)` ends the scope early.
            for j in m..end {
                if toks[j].is_ident("drop")
                    && toks.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                    && toks.get(j + 2).map(|n| n.is_ident(name)).unwrap_or(false)
                {
                    return (m, j);
                }
            }
            (m, end)
        }
        None => {
            // Temporary: to the end of the statement, bounded by the
            // enclosing block (a tail expression has no `;`).
            let base = ctx.st.enclosing_brace[m];
            let block_end = if base == usize::MAX {
                toks.len() - 1
            } else {
                ctx.st.close_of(base).unwrap_or(toks.len() - 1)
            };
            let mut j = m;
            while j < block_end {
                if toks[j].is_punct(';') && ctx.st.enclosing_brace[j] == base {
                    break;
                }
                j += 1;
            }
            (m, j)
        }
    }
}

/// Rule 5: error-taxonomy hygiene. A `pub fn` returning `()` that
/// contains a panicking macro has no way to report failure — it should
/// return a typed error instead.
fn error_taxonomy(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.cfg.taxonomy.contains(ctx.rel) {
        return;
    }
    let toks = ctx.toks();
    for f in &ctx.st.fns {
        if !(f.is_pub && f.returns_unit) {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        if ctx.st.in_test(f.fn_idx) {
            continue;
        }
        for i in open..=close.min(toks.len() - 1) {
            if ctx.exempt(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
            {
                ctx.emit(
                    out,
                    "error-taxonomy",
                    t.line,
                    format!(
                        "pub fn `{}` returns `()` but contains `{}!` — return a typed error \
                         instead of panicking",
                        f.name, t.text
                    ),
                );
            }
        }
    }
}
