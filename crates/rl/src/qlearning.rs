//! A Q-learning baseline over the same 1-step experiences.
//!
//! The paper (§4, "Training algorithm") notes: *"We also experimented
//! with Q-learning based approaches, but found they did not perform as
//! well."* This module reproduces that comparison point.
//!
//! For 1-step decision problems the Bellman target collapses to the
//! immediate reward, so Q-learning is regression of per-action values
//! onto observed rewards. The two network heads are read as factored
//! Q-value tables (one per action head); behaviour sampling through
//! [`nn::MaskedCategorical`] over the Q-values is Boltzmann exploration
//! with unit temperature, so the same environments used for PPO work
//! unchanged. The value head is unused.

use crate::rollout::RolloutBatch;
use nn::{AdamConfig, Matrix, PolicyValueNet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Q-learning hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QConfig {
    /// SGD passes over the batch per update.
    pub sgd_iters: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Adam settings.
    pub adam: AdamConfig,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Scale factor applied to rewards before regression (keeps the
    /// tanh trunk in range for large-magnitude objectives).
    pub reward_scale: f32,
}

impl Default for QConfig {
    fn default() -> Self {
        QConfig {
            sgd_iters: 10,
            minibatch: 256,
            adam: AdamConfig { lr: 3e-4, ..Default::default() },
            max_grad_norm: 10.0,
            reward_scale: 0.1,
        }
    }
}

/// Diagnostics from one [`QLearner::update`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct QStats {
    /// Mean squared TD error over the last epoch.
    pub td_error: f32,
    /// Epochs run.
    pub epochs: usize,
}

/// The Q-learning baseline learner.
#[derive(Debug, Clone)]
pub struct QLearner {
    /// Hyperparameters.
    pub config: QConfig,
    rng: ChaCha8Rng,
}

impl QLearner {
    /// A learner with the given config; `seed` drives shuffling.
    pub fn new(config: QConfig, seed: u64) -> Self {
        QLearner { config, rng: ChaCha8Rng::seed_from_u64(seed ^ 0x71_6c) }
    }

    /// Regress the taken actions' Q-values onto their observed rewards.
    pub fn update(&mut self, net: &mut PolicyValueNet, batch: &RolloutBatch) -> QStats {
        assert!(!batch.is_empty(), "cannot update on an empty batch");
        let cfg = self.config;
        let mut indices: Vec<usize> = (0..batch.len()).collect();
        let mut stats = QStats::default();

        for epoch in 0..cfg.sgd_iters {
            indices.shuffle(&mut self.rng);
            let mut sq_err = 0.0f64;
            let mut counted = 0usize;
            for chunk in indices.chunks(cfg.minibatch.max(1)) {
                let rows: Vec<&[f32]> =
                    chunk.iter().map(|&i| batch.samples[i].obs.as_slice()).collect();
                let x = Matrix::from_rows(&rows);
                let cache = net.forward(x);
                let n = chunk.len();
                let mut d_dim = Matrix::zeros(n, cache.dim_logits.cols);
                let mut d_act = Matrix::zeros(n, cache.act_logits.cols);
                let d_val = Matrix::zeros(n, 1);
                for (r, &i) in chunk.iter().enumerate() {
                    let s = &batch.samples[i];
                    let target = s.reward * cfg.reward_scale;
                    // Half-weight per head: the factored Q estimate is
                    // the mean of the two heads' entries.
                    let qd = cache.dim_logits.get(r, s.dim_action);
                    let qa = cache.act_logits.get(r, s.act_action);
                    let q = 0.5 * (qd + qa);
                    let err = q - target;
                    sq_err += f64::from(err * err);
                    d_dim.set(r, s.dim_action, 0.5 * err);
                    d_act.set(r, s.act_action, 0.5 * err);
                    counted += 1;
                }
                net.zero_grad();
                net.backward(&cache, &d_dim, &d_act, &d_val);
                net.scale_grad(1.0 / n as f32);
                net.clip_grad_norm(cfg.max_grad_norm);
                net.adam_step(&cfg.adam);
            }
            stats = QStats { td_error: (sq_err / counted.max(1) as f64) as f32, epochs: epoch + 1 };
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::Sample;
    use nn::{MaskedCategorical, NetConfig};
    use rand::Rng;

    fn bandit_batch(net: &PolicyValueNet, rng: &mut ChaCha8Rng, n: usize) -> RolloutBatch {
        let mut samples = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for _ in 0..n {
            let ctx = rng.gen_range(0..2usize);
            let mut obs = vec![0.0f32; 2];
            obs[ctx] = 1.0;
            let (dl, al, v) = net.forward_one(&obs);
            let dim_dist = MaskedCategorical::from_logits(&dl);
            let act_dist = MaskedCategorical::from_logits(&al);
            let da = dim_dist.sample(rng.gen::<f32>());
            let aa = act_dist.sample(rng.gen::<f32>());
            let reward = if da == ctx { 1.0 } else { 0.0 };
            total += f64::from(reward);
            samples.push(Sample {
                obs,
                dim_action: da,
                act_action: aa,
                dim_mask: vec![true; 2],
                act_mask: vec![true; 1],
                log_prob: dim_dist.log_prob(da) + act_dist.log_prob(aa),
                value: v,
                reward,
            });
        }
        RolloutBatch {
            samples,
            episodes: n,
            mean_episode_return: total / n as f64,
            ..Default::default()
        }
    }

    #[test]
    fn q_learning_solves_contextual_bandit_via_boltzmann() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 1, hidden: [16, 16] },
            &mut rng,
        );
        let mut q = QLearner::new(
            QConfig {
                adam: AdamConfig { lr: 5e-3, ..Default::default() },
                reward_scale: 1.0,
                sgd_iters: 6,
                minibatch: 64,
                ..Default::default()
            },
            1,
        );
        let mut last_return = 0.0;
        for _ in 0..60 {
            let batch = bandit_batch(&net, &mut rng, 256);
            last_return = batch.mean_episode_return;
            q.update(&mut net, &batch);
        }
        // Boltzmann over learned Q: correct action value ~1, wrong ~0,
        // so softmax puts ~e/(e+1) ~ 0.73+ on the right action.
        assert!(last_return > 0.65, "Q policy reward {last_return}");
    }

    #[test]
    fn td_error_decreases_on_fixed_batch() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 1, hidden: [8, 8] },
            &mut rng,
        );
        let batch = bandit_batch(&net, &mut rng, 128);
        let mut q = QLearner::new(
            QConfig {
                adam: AdamConfig { lr: 1e-2, ..Default::default() },
                reward_scale: 1.0,
                sgd_iters: 1,
                ..Default::default()
            },
            2,
        );
        let first = q.update(&mut net, &batch).td_error;
        for _ in 0..30 {
            q.update(&mut net, &batch);
        }
        let last = q.update(&mut net, &batch).td_error;
        assert!(last < first, "TD error {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 1, hidden: [4, 4] },
            &mut rng,
        );
        QLearner::new(QConfig::default(), 0).update(&mut net, &RolloutBatch::default());
    }
}
