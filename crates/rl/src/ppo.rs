//! Proximal Policy Optimization (Schulman et al., 2017) with the
//! clipped surrogate objective, entropy regularisation, clipped value
//! loss, and KL-target early stopping — the configuration the paper
//! reports in Appendix B.

use crate::rollout::RolloutBatch;
use nn::{AdamConfig, MaskedCategorical, Matrix, PolicyValueNet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// PPO hyperparameters (defaults = Table 1 of the paper).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Surrogate clip parameter (`0.3`).
    pub clip: f32,
    /// Value-function clip parameter (`10.0`).
    pub vf_clip: f32,
    /// Entropy bonus coefficient (`0.01`).
    pub entropy_coeff: f32,
    /// Value-loss coefficient.
    pub vf_coeff: f32,
    /// Target mean KL between behaviour and updated policy (`0.01`);
    /// SGD epochs stop early once the measured KL exceeds
    /// `1.5 × kl_target`.
    pub kl_target: f32,
    /// SGD passes over the batch per update (`30`).
    pub sgd_iters: usize,
    /// Minibatch size (`1000`).
    pub minibatch: usize,
    /// Adam settings (`lr = 5e-5`).
    pub adam: AdamConfig,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Discount factor across the decisions of one episode trajectory
    /// (`0.0`, the paper's setting: every NeuroCuts reward is already a
    /// complete subtree return, so decisions are independent 1-step
    /// problems). Raising it turns on per-trajectory
    /// [`RolloutBatch::gae`] over the batch's episode spans.
    pub gamma: f32,
    /// GAE λ (only meaningful when `gamma > 0`).
    pub gae_lambda: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            clip: 0.3,
            vf_clip: 10.0,
            entropy_coeff: 0.01,
            vf_coeff: 1.0,
            kl_target: 0.01,
            sgd_iters: 30,
            minibatch: 1000,
            adam: AdamConfig::default(),
            max_grad_norm: 10.0,
            gamma: 0.0,
            gae_lambda: 0.95,
        }
    }
}

/// Diagnostics from one [`Ppo::update`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Mean clipped-surrogate policy loss over the last epoch.
    pub policy_loss: f32,
    /// Mean value loss over the last epoch.
    pub value_loss: f32,
    /// Mean joint policy entropy over the last epoch.
    pub entropy: f32,
    /// Mean approximate KL (`log π_old − log π_new`) at the end.
    pub kl: f32,
    /// SGD epochs actually run (≤ `sgd_iters` due to KL early stop).
    pub epochs: usize,
}

/// The PPO learner; owns only configuration (the network is passed in).
#[derive(Debug, Clone)]
pub struct Ppo {
    /// Hyperparameters.
    pub config: PpoConfig,
    rng: ChaCha8Rng,
}

impl Ppo {
    /// A learner with the given config; `seed` drives minibatch
    /// shuffling only.
    pub fn new(config: PpoConfig, seed: u64) -> Self {
        Ppo { config, rng: ChaCha8Rng::seed_from_u64(seed ^ 0x70_706f) }
    }

    /// One PPO update of `net` on `batch`. Advantages are per-env
    /// GAE(γ, λ) over the batch's episode spans (with the default
    /// `gamma = 0` this is exactly the paper's independent 1-step
    /// advantage `r − V(s)`), normalised batch-wide; value targets are
    /// the matching bootstrapped returns `A + V(s)`. Returns
    /// diagnostics.
    pub fn update(&mut self, net: &mut PolicyValueNet, batch: &RolloutBatch) -> UpdateStats {
        assert!(!batch.is_empty(), "cannot update on an empty batch");
        let cfg = self.config;
        let raw = batch.gae(cfg.gamma, cfg.gae_lambda);
        let advantages = crate::rollout::normalize(&raw);
        let returns: Vec<f32> = raw.iter().zip(&batch.samples).map(|(a, s)| a + s.value).collect();
        let mut indices: Vec<usize> = (0..batch.len()).collect();
        let mut stats = UpdateStats::default();

        'epochs: for epoch in 0..cfg.sgd_iters {
            indices.shuffle(&mut self.rng);
            let mut epoch_policy_loss = 0.0f64;
            let mut epoch_value_loss = 0.0f64;
            let mut epoch_entropy = 0.0f64;
            let mut epoch_kl = 0.0f64;
            let mut counted = 0usize;

            for chunk in indices.chunks(cfg.minibatch.max(1)) {
                let rows: Vec<&[f32]> =
                    chunk.iter().map(|&i| batch.samples[i].obs.as_slice()).collect();
                let x = Matrix::from_rows(&rows);
                let cache = net.forward(x);
                let n = chunk.len();

                let mut d_dim = Matrix::zeros(n, cache.dim_logits.cols);
                let mut d_act = Matrix::zeros(n, cache.act_logits.cols);
                let mut d_val = Matrix::zeros(n, 1);

                for (r, &i) in chunk.iter().enumerate() {
                    let s = &batch.samples[i];
                    let adv = advantages[i];
                    let dim_dist = MaskedCategorical::new(cache.dim_logits.row(r), &s.dim_mask);
                    let act_dist = MaskedCategorical::new(cache.act_logits.row(r), &s.act_mask);
                    let logp_new =
                        dim_dist.log_prob(s.dim_action) + act_dist.log_prob(s.act_action);
                    let ratio = (logp_new - s.log_prob).exp();
                    let clipped = ratio.clamp(1.0 - cfg.clip, 1.0 + cfg.clip);
                    let surrogate = (ratio * adv).min(clipped * adv);
                    epoch_policy_loss += f64::from(-surrogate);
                    epoch_kl += f64::from(s.log_prob - logp_new);

                    // Gradient of the clipped surrogate w.r.t. logp_new:
                    // active when the unclipped branch wins the min, or
                    // the clamp is in its identity region (where both
                    // branches coincide).
                    let unclipped_active = ratio * adv <= clipped * adv
                        || (1.0 - cfg.clip..=1.0 + cfg.clip).contains(&ratio);
                    let dsurr_dlogp = if unclipped_active { adv * ratio } else { 0.0 };
                    // Loss = -surrogate - entropy_coeff * (H_dim + H_act).
                    let dl_dlogp = -dsurr_dlogp;

                    let h = dim_dist.entropy() + act_dist.entropy();
                    epoch_entropy += f64::from(h);

                    let gd = dim_dist.dlogp_dlogits(s.dim_action);
                    let ge = dim_dist.dentropy_dlogits();
                    for (j, (g, e)) in gd.iter().zip(ge.iter()).enumerate() {
                        d_dim.set(r, j, dl_dlogp * g - cfg.entropy_coeff * e);
                    }
                    let ga = act_dist.dlogp_dlogits(s.act_action);
                    let ea = act_dist.dentropy_dlogits();
                    for (j, (g, e)) in ga.iter().zip(ea.iter()).enumerate() {
                        d_act.set(r, j, dl_dlogp * g - cfg.entropy_coeff * e);
                    }

                    // Clipped value loss (PPO2 style):
                    // L = 0.5 * max((v-R)^2, (v_clip-R)^2).
                    let v_new = cache.values.get(r, 0);
                    let v_clip = s.value + (v_new - s.value).clamp(-cfg.vf_clip, cfg.vf_clip);
                    let e_un = v_new - returns[i];
                    let e_cl = v_clip - returns[i];
                    let (loss_v, dv) = if e_un * e_un >= e_cl * e_cl {
                        (0.5 * e_un * e_un, e_un)
                    } else {
                        // Clipped branch: gradient flows only while the
                        // clamp is in its identity region.
                        let inner = (v_new - s.value).abs() < cfg.vf_clip;
                        (0.5 * e_cl * e_cl, if inner { e_cl } else { 0.0 })
                    };
                    epoch_value_loss += f64::from(loss_v);
                    d_val.set(r, 0, cfg.vf_coeff * dv);
                    counted += 1;
                }

                net.zero_grad();
                net.backward(&cache, &d_dim, &d_act, &d_val);
                net.scale_grad(1.0 / n as f32);
                net.clip_grad_norm(cfg.max_grad_norm);
                net.adam_step(&cfg.adam);
            }

            let nf = counted.max(1) as f64;
            stats = UpdateStats {
                policy_loss: (epoch_policy_loss / nf) as f32,
                value_loss: (epoch_value_loss / nf) as f32,
                entropy: (epoch_entropy / nf) as f32,
                kl: (epoch_kl / nf) as f32,
                epochs: epoch + 1,
            };
            if stats.kl > 1.5 * cfg.kl_target {
                break 'epochs;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::Sample;
    use nn::NetConfig;

    fn bandit_batch(net: &PolicyValueNet, rng: &mut ChaCha8Rng, n: usize) -> RolloutBatch {
        // Two contexts; dim action must match the context bit for
        // reward 1, else 0. The act head is a distractor with one action.
        use rand::Rng;
        let mut samples = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for _ in 0..n {
            let ctx = rng.gen_range(0..2usize);
            let mut obs = vec![0.0f32; 2];
            obs[ctx] = 1.0;
            let (dl, al, v) = net.forward_one(&obs);
            let dim_dist = MaskedCategorical::from_logits(&dl);
            let act_dist = MaskedCategorical::from_logits(&al);
            let da = dim_dist.sample(rng.gen::<f32>());
            let aa = act_dist.sample(rng.gen::<f32>());
            let reward = if da == ctx { 1.0 } else { 0.0 };
            total += f64::from(reward);
            samples.push(Sample {
                obs,
                dim_action: da,
                act_action: aa,
                dim_mask: vec![true; 2],
                act_mask: vec![true; 1],
                log_prob: dim_dist.log_prob(da) + act_dist.log_prob(aa),
                value: v,
                reward,
            });
        }
        RolloutBatch {
            samples,
            episodes: n,
            mean_episode_return: total / n as f64,
            ..Default::default()
        }
    }

    #[test]
    fn ppo_solves_contextual_bandit() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 1, hidden: [16, 16] },
            &mut rng,
        );
        let cfg = PpoConfig {
            minibatch: 64,
            sgd_iters: 6,
            adam: AdamConfig { lr: 5e-3, ..Default::default() },
            kl_target: 0.05,
            ..Default::default()
        };
        let mut ppo = Ppo::new(cfg, 1);
        let mut last_return = 0.0;
        for _ in 0..40 {
            let batch = bandit_batch(&net, &mut rng, 256);
            last_return = batch.mean_episode_return;
            ppo.update(&mut net, &batch);
        }
        assert!(last_return > 0.85, "policy reward {last_return}");
    }

    #[test]
    fn kl_early_stop_triggers_with_huge_lr() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 1, hidden: [8, 8] },
            &mut rng,
        );
        let cfg = PpoConfig {
            minibatch: 32,
            sgd_iters: 30,
            adam: AdamConfig { lr: 0.5, ..Default::default() },
            kl_target: 0.01,
            ..Default::default()
        };
        let mut ppo = Ppo::new(cfg, 2);
        let batch = bandit_batch(&net, &mut rng, 128);
        let stats = ppo.update(&mut net, &batch);
        assert!(stats.epochs < 30, "expected early stop, ran {}", stats.epochs);
    }

    #[test]
    fn positive_advantage_increases_action_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 3, dim_actions: 3, num_actions: 2, hidden: [8, 8] },
            &mut rng,
        );
        let obs = vec![1.0f32, 0.0, 0.0];
        let (dl, al, v) = net.forward_one(&obs);
        let dim_dist = MaskedCategorical::from_logits(&dl);
        let act_dist = MaskedCategorical::from_logits(&al);
        let before = dim_dist.probs[1];
        // Two samples with opposite rewards so advantage normalisation
        // gives the good one positive advantage.
        let mk = |da: usize, reward: f32| Sample {
            obs: obs.clone(),
            dim_action: da,
            act_action: 0,
            dim_mask: vec![true; 3],
            act_mask: vec![true; 2],
            log_prob: dim_dist.log_prob(da) + act_dist.log_prob(0),
            value: v,
            reward,
        };
        let batch = RolloutBatch {
            samples: vec![mk(1, 1.0), mk(2, -1.0)],
            episodes: 2,
            mean_episode_return: 0.0,
            ..Default::default()
        };
        let cfg = PpoConfig {
            minibatch: 2,
            sgd_iters: 5,
            adam: AdamConfig { lr: 1e-2, ..Default::default() },
            kl_target: 10.0, // no early stop
            entropy_coeff: 0.0,
            ..Default::default()
        };
        Ppo::new(cfg, 3).update(&mut net, &batch);
        let (dl_after, _, _) = net.forward_one(&obs);
        let after = MaskedCategorical::from_logits(&dl_after).probs[1];
        assert!(after > before, "p(a=1) went {before} -> {after}");
    }

    #[test]
    fn masked_actions_stay_masked_through_update() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 3, hidden: [8, 8] },
            &mut rng,
        );
        let obs = vec![1.0f32, 0.0];
        let (dl, al, v) = net.forward_one(&obs);
        let act_mask = vec![true, false, true];
        let dim_dist = MaskedCategorical::from_logits(&dl);
        let act_dist = MaskedCategorical::new(&al, &act_mask);
        let s = Sample {
            obs: obs.clone(),
            dim_action: 0,
            act_action: 2,
            dim_mask: vec![true; 2],
            act_mask: act_mask.clone(),
            log_prob: dim_dist.log_prob(0) + act_dist.log_prob(2),
            value: v,
            reward: 1.0,
        };
        let batch = RolloutBatch {
            samples: vec![s.clone(), Sample { reward: -1.0, act_action: 0, ..s }],
            episodes: 2,
            mean_episode_return: 0.0,
            ..Default::default()
        };
        let mut ppo = Ppo::new(PpoConfig { minibatch: 2, sgd_iters: 3, ..Default::default() }, 4);
        let stats = ppo.update(&mut net, &batch);
        assert!(stats.epochs >= 1);
        // The masked action still has zero probability under the mask.
        let (_, al_after, _) = net.forward_one(&obs);
        let d = MaskedCategorical::new(&al_after, &act_mask);
        assert_eq!(d.probs[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 1, hidden: [4, 4] },
            &mut rng,
        );
        Ppo::new(PpoConfig::default(), 0).update(&mut net, &RolloutBatch::default());
    }
}
