//! 1-step experiences and rollout batches.

use serde::{Deserialize, Serialize};

/// One 1-step decision experience (§5: "a series of independent 1-step
/// decision problems, each of which yields an immediate reward").
///
/// The action is the paper's tuple `(dimension, cut-or-partition)`
/// sampled from two categorical heads; `log_prob` is the joint
/// log-probability under the behaviour policy; `reward` is the
/// subtree-complete return `-(c·f(Time) + (1-c)·f(Space))` filled in
/// after the episode finishes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Observation (fixed-width node encoding).
    pub obs: Vec<f32>,
    /// Sampled dimension-head action.
    pub dim_action: usize,
    /// Sampled action-head action (cut size or partition kind).
    pub act_action: usize,
    /// Validity mask for the dimension head at this state.
    pub dim_mask: Vec<bool>,
    /// Validity mask for the action head at this state.
    pub act_mask: Vec<bool>,
    /// Joint behaviour log-probability `log π(a_dim) + log π(a_act)`.
    pub log_prob: f32,
    /// Value estimate `V(s)` under the behaviour policy.
    pub value: f32,
    /// Final (delayed) reward for this 1-step decision.
    pub reward: f32,
}

/// One episode's contiguous slice inside a [`RolloutBatch`] — which
/// environment slot produced it and where its samples live. Spans are
/// what let the learner treat a merged multi-env batch as per-env
/// *trajectories* (for GAE) instead of an undifferentiated sample pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeSpan {
    /// Environment slot (vectorised collector) or worker id (legacy
    /// sampler) that produced the episode.
    pub env: usize,
    /// Index of the episode's first sample in `samples`.
    pub start: usize,
    /// Number of samples in the episode.
    pub len: usize,
}

/// A batch of experiences collected from one or more tree rollouts.
#[derive(Debug, Clone, Default)]
pub struct RolloutBatch {
    /// The 1-step experiences.
    pub samples: Vec<Sample>,
    /// Per-episode trajectory spans, in collection order. Every sample
    /// belongs to at most one span; samples outside all spans are
    /// treated as independent 1-step problems by [`RolloutBatch::gae`].
    pub spans: Vec<EpisodeSpan>,
    /// Number of completed episodes (trees).
    pub episodes: usize,
    /// Mean episode objective (caller-defined; NeuroCuts uses the tree's
    /// reward, i.e. minus the time/space objective).
    pub mean_episode_return: f64,
}

impl RolloutBatch {
    /// Number of experiences.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no experience was collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append one completed episode from environment slot `env`,
    /// recording its span and pooling the episode-return statistics.
    pub fn push_episode(&mut self, env: usize, samples: Vec<Sample>, episode_return: f64) {
        self.spans.push(EpisodeSpan { env, start: self.samples.len(), len: samples.len() });
        self.mean_episode_return = (self.mean_episode_return * self.episodes as f64
            + episode_return)
            / (self.episodes + 1) as f64;
        self.episodes += 1;
        self.samples.extend(samples);
    }

    /// Raw per-trajectory GAE(γ, λ) advantages (Schulman et al., 2016)
    /// computed independently over each episode span:
    /// `δ_t = r_t + γ·V(s_{t+1}) − V(s_t)`,
    /// `A_t = δ_t + γλ·A_{t+1}`, with `V(s_{T+1}) = 0`.
    ///
    /// With `gamma == 0` this reduces exactly to the paper's
    /// independent 1-step advantages `A = r − V(s)` — the NeuroCuts
    /// rewards are already complete subtree returns, so no discounting
    /// across decisions is the faithful default. Samples covered by no
    /// span are likewise treated as 1-step problems.
    ///
    /// ```
    /// use rl::{RolloutBatch, Sample};
    /// let mut batch = RolloutBatch::default();
    /// let sample = |reward: f32, value: f32| Sample {
    ///     obs: vec![0.0],
    ///     dim_action: 0,
    ///     act_action: 0,
    ///     dim_mask: vec![true],
    ///     act_mask: vec![true],
    ///     log_prob: 0.0,
    ///     value,
    ///     reward,
    /// };
    /// batch.push_episode(0, vec![sample(1.0, 0.5), sample(2.0, 1.0)], 3.0);
    /// // γ = 0: plain 1-step advantages.
    /// assert_eq!(batch.gae(0.0, 0.95), vec![0.5, 1.0]);
    /// // γ = 1, λ = 1: full-return advantages (δ_t summed to episode end).
    /// assert_eq!(batch.gae(1.0, 1.0), vec![2.5, 1.0]);
    /// ```
    pub fn gae(&self, gamma: f32, lambda: f32) -> Vec<f32> {
        let mut adv: Vec<f32> = self.samples.iter().map(|s| s.reward - s.value).collect();
        if gamma != 0.0 {
            for span in &self.spans {
                let mut next_adv = 0.0f32;
                let mut next_value = 0.0f32;
                for i in (span.start..span.start + span.len).rev() {
                    let s = &self.samples[i];
                    let delta = s.reward + gamma * next_value - s.value;
                    adv[i] = delta + gamma * lambda * next_adv;
                    next_adv = adv[i];
                    next_value = s.value;
                }
            }
        }
        adv
    }

    /// 1-step advantages `A = R − V(s)`, normalised to zero mean / unit
    /// variance (the standard PPO preprocessing; with γ=0 across
    /// decisions the return of a 1-step problem is just its reward).
    /// Equivalent to `normalize(&self.gae(0.0, _))`.
    pub fn normalized_advantages(&self) -> Vec<f32> {
        normalize(&self.gae(0.0, 0.0))
    }

    /// Merge another batch into this one, pooling episode statistics
    /// and re-anchoring the merged-in spans.
    pub fn merge(&mut self, other: RolloutBatch) {
        let total = self.episodes + other.episodes;
        if total > 0 {
            self.mean_episode_return = (self.mean_episode_return * self.episodes as f64
                + other.mean_episode_return * other.episodes as f64)
                / total as f64;
        }
        self.episodes = total;
        let offset = self.samples.len();
        self.spans
            .extend(other.spans.iter().map(|s| EpisodeSpan { start: s.start + offset, ..*s }));
        self.samples.extend(other.samples);
    }
}

/// Normalise to zero mean, unit variance; degenerate inputs (len < 2 or
/// zero variance) get mean-centred only.
pub fn normalize(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let n = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std < 1e-6 {
        xs.iter().map(|x| x - mean).collect()
    } else {
        xs.iter().map(|x| (x - mean) / std).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(reward: f32, value: f32) -> Sample {
        Sample {
            obs: vec![0.0; 4],
            dim_action: 0,
            act_action: 0,
            dim_mask: vec![true; 2],
            act_mask: vec![true; 3],
            log_prob: -1.0,
            value,
            reward,
        }
    }

    #[test]
    fn advantages_are_normalised() {
        let batch = RolloutBatch {
            samples: vec![sample(1.0, 0.0), sample(3.0, 0.0), sample(5.0, 0.0)],
            episodes: 1,
            mean_episode_return: 3.0,
            ..Default::default()
        };
        let adv = batch.normalized_advantages();
        let mean: f32 = adv.iter().sum::<f32>() / adv.len() as f32;
        assert!(mean.abs() < 1e-5);
        let var: f32 = adv.iter().map(|a| a * a).sum::<f32>() / adv.len() as f32;
        assert!((var - 1.0).abs() < 1e-4);
        // Ordering preserved.
        assert!(adv[0] < adv[1] && adv[1] < adv[2]);
    }

    #[test]
    fn constant_advantages_do_not_blow_up() {
        let batch = RolloutBatch {
            samples: vec![sample(2.0, 1.0), sample(2.0, 1.0)],
            episodes: 1,
            mean_episode_return: 2.0,
            ..Default::default()
        };
        let adv = batch.normalized_advantages();
        assert!(adv.iter().all(|a| a.abs() < 1e-6));
    }

    #[test]
    fn merge_pools_episode_stats() {
        let mut a = RolloutBatch {
            samples: vec![sample(1.0, 0.0)],
            episodes: 2,
            mean_episode_return: 10.0,
            ..Default::default()
        };
        let b = RolloutBatch {
            samples: vec![sample(2.0, 0.0), sample(3.0, 0.0)],
            episodes: 2,
            mean_episode_return: 20.0,
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.episodes, 4);
        assert!((a.mean_episode_return - 15.0).abs() < 1e-9);
    }

    #[test]
    fn push_episode_records_spans_and_pools_returns() {
        let mut batch = RolloutBatch::default();
        batch.push_episode(3, vec![sample(1.0, 0.0), sample(2.0, 0.0)], 10.0);
        batch.push_episode(1, vec![sample(3.0, 0.0)], 20.0);
        assert_eq!(
            batch.spans,
            vec![
                EpisodeSpan { env: 3, start: 0, len: 2 },
                EpisodeSpan { env: 1, start: 2, len: 1 },
            ]
        );
        assert_eq!(batch.episodes, 2);
        assert!((batch.mean_episode_return - 15.0).abs() < 1e-9);
        // Zero-sample episodes (root already terminal) still count.
        batch.push_episode(0, Vec::new(), 0.0);
        assert_eq!(batch.episodes, 3);
        assert_eq!(batch.spans[2], EpisodeSpan { env: 0, start: 3, len: 0 });
    }

    #[test]
    fn merge_reanchors_spans() {
        let mut a = RolloutBatch::default();
        a.push_episode(0, vec![sample(1.0, 0.0)], 1.0);
        let mut b = RolloutBatch::default();
        b.push_episode(1, vec![sample(2.0, 0.0), sample(3.0, 0.0)], 2.0);
        a.merge(b);
        assert_eq!(
            a.spans,
            vec![
                EpisodeSpan { env: 0, start: 0, len: 1 },
                EpisodeSpan { env: 1, start: 1, len: 2 },
            ]
        );
        // Spans still index the right samples after the merge.
        assert_eq!(a.samples[a.spans[1].start].reward, 2.0);
    }

    #[test]
    fn gae_matches_hand_computed_values() {
        let mut batch = RolloutBatch::default();
        batch.push_episode(0, vec![sample(1.0, 0.5), sample(2.0, 1.0), sample(3.0, 2.0)], 6.0);
        // γ = 0 is the 1-step case regardless of λ.
        assert_eq!(batch.gae(0.0, 0.95), vec![0.5, 1.0, 1.0]);
        // γ = 0.5, λ = 0.5, computed backwards by hand:
        //   t=2: δ = 3 − 2 = 1,                A = 1
        //   t=1: δ = 2 + 0.5·2 − 1 = 2,        A = 2 + 0.25·1 = 2.25
        //   t=0: δ = 1 + 0.5·1 − 0.5 = 1,      A = 1 + 0.25·2.25 = 1.5625
        let adv = batch.gae(0.5, 0.5);
        assert!((adv[2] - 1.0).abs() < 1e-6);
        assert!((adv[1] - 2.25).abs() < 1e-6);
        assert!((adv[0] - 1.5625).abs() < 1e-6);
    }

    #[test]
    fn gae_is_per_span_and_spanless_samples_stay_one_step() {
        // Two episodes: discounting must not bleed across the boundary.
        let mut batch = RolloutBatch::default();
        batch.push_episode(0, vec![sample(1.0, 0.0)], 1.0);
        batch.push_episode(1, vec![sample(2.0, 0.0)], 2.0);
        assert_eq!(batch.gae(0.9, 0.9), vec![1.0, 2.0]);
        // A legacy batch without spans falls back to 1-step everywhere.
        let legacy = RolloutBatch {
            samples: vec![sample(4.0, 1.0), sample(5.0, 1.0)],
            episodes: 1,
            mean_episode_return: 9.0,
            ..Default::default()
        };
        assert_eq!(legacy.gae(0.9, 0.9), vec![3.0, 4.0]);
    }

    #[test]
    fn normalize_empty_is_empty() {
        assert!(normalize(&[]).is_empty());
    }
}
