//! 1-step experiences and rollout batches.

use serde::{Deserialize, Serialize};

/// One 1-step decision experience (§5: "a series of independent 1-step
/// decision problems, each of which yields an immediate reward").
///
/// The action is the paper's tuple `(dimension, cut-or-partition)`
/// sampled from two categorical heads; `log_prob` is the joint
/// log-probability under the behaviour policy; `reward` is the
/// subtree-complete return `-(c·f(Time) + (1-c)·f(Space))` filled in
/// after the episode finishes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Observation (fixed-width node encoding).
    pub obs: Vec<f32>,
    /// Sampled dimension-head action.
    pub dim_action: usize,
    /// Sampled action-head action (cut size or partition kind).
    pub act_action: usize,
    /// Validity mask for the dimension head at this state.
    pub dim_mask: Vec<bool>,
    /// Validity mask for the action head at this state.
    pub act_mask: Vec<bool>,
    /// Joint behaviour log-probability `log π(a_dim) + log π(a_act)`.
    pub log_prob: f32,
    /// Value estimate `V(s)` under the behaviour policy.
    pub value: f32,
    /// Final (delayed) reward for this 1-step decision.
    pub reward: f32,
}

/// A batch of experiences collected from one or more tree rollouts.
#[derive(Debug, Clone, Default)]
pub struct RolloutBatch {
    /// The 1-step experiences.
    pub samples: Vec<Sample>,
    /// Number of completed episodes (trees).
    pub episodes: usize,
    /// Mean episode objective (caller-defined; NeuroCuts uses the tree's
    /// reward, i.e. minus the time/space objective).
    pub mean_episode_return: f64,
}

impl RolloutBatch {
    /// Number of experiences.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no experience was collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// 1-step advantages `A = R − V(s)`, normalised to zero mean / unit
    /// variance (the standard PPO preprocessing; with γ=0 across
    /// decisions the return of a 1-step problem is just its reward).
    pub fn normalized_advantages(&self) -> Vec<f32> {
        let raw: Vec<f32> = self.samples.iter().map(|s| s.reward - s.value).collect();
        normalize(&raw)
    }

    /// Merge another batch into this one, pooling episode statistics.
    pub fn merge(&mut self, other: RolloutBatch) {
        let total = self.episodes + other.episodes;
        if total > 0 {
            self.mean_episode_return = (self.mean_episode_return * self.episodes as f64
                + other.mean_episode_return * other.episodes as f64)
                / total as f64;
        }
        self.episodes = total;
        self.samples.extend(other.samples);
    }
}

/// Normalise to zero mean, unit variance; degenerate inputs (len < 2 or
/// zero variance) get mean-centred only.
pub fn normalize(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let n = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std < 1e-6 {
        xs.iter().map(|x| x - mean).collect()
    } else {
        xs.iter().map(|x| (x - mean) / std).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(reward: f32, value: f32) -> Sample {
        Sample {
            obs: vec![0.0; 4],
            dim_action: 0,
            act_action: 0,
            dim_mask: vec![true; 2],
            act_mask: vec![true; 3],
            log_prob: -1.0,
            value,
            reward,
        }
    }

    #[test]
    fn advantages_are_normalised() {
        let batch = RolloutBatch {
            samples: vec![sample(1.0, 0.0), sample(3.0, 0.0), sample(5.0, 0.0)],
            episodes: 1,
            mean_episode_return: 3.0,
        };
        let adv = batch.normalized_advantages();
        let mean: f32 = adv.iter().sum::<f32>() / adv.len() as f32;
        assert!(mean.abs() < 1e-5);
        let var: f32 = adv.iter().map(|a| a * a).sum::<f32>() / adv.len() as f32;
        assert!((var - 1.0).abs() < 1e-4);
        // Ordering preserved.
        assert!(adv[0] < adv[1] && adv[1] < adv[2]);
    }

    #[test]
    fn constant_advantages_do_not_blow_up() {
        let batch = RolloutBatch {
            samples: vec![sample(2.0, 1.0), sample(2.0, 1.0)],
            episodes: 1,
            mean_episode_return: 2.0,
        };
        let adv = batch.normalized_advantages();
        assert!(adv.iter().all(|a| a.abs() < 1e-6));
    }

    #[test]
    fn merge_pools_episode_stats() {
        let mut a = RolloutBatch {
            samples: vec![sample(1.0, 0.0)],
            episodes: 2,
            mean_episode_return: 10.0,
        };
        let b = RolloutBatch {
            samples: vec![sample(2.0, 0.0), sample(3.0, 0.0)],
            episodes: 2,
            mean_episode_return: 20.0,
        };
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.episodes, 4);
        assert!((a.mean_episode_return - 15.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_empty_is_empty() {
        assert!(normalize(&[]).is_empty());
    }
}
