//! Parallel rollout collection — the "policy evaluation" workers of the
//! paper's Figure 7: several workers generate whole-tree rollouts from
//! the *same* (read-only) policy, their experiences are concatenated,
//! and one SGD update follows.
//!
//! The work is CPU-bound tree construction, so plain scoped threads
//! (`std::thread::scope`) are the right concurrency primitive here — an
//! async runtime would add overhead without benefit for compute-bound
//! loops.

use crate::rollout::{RolloutBatch, Sample};
use nn::PolicyValueNet;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An environment that can run one full episode (one tree build) under
/// a frozen policy and return the 1-step experiences plus an episode
/// objective (e.g. the final tree reward).
///
/// `Clone` is expected to be cheap: implementations share their heavy
/// state (the NeuroCuts env shares its rule set, its SoA rule store,
/// and the best-tree record across clones), so each worker's clone
/// costs a handful of `Arc` bumps, not a rule-set copy.
pub trait RolloutEnv: Send + Clone {
    /// Run one episode with the given policy; `seed` makes the episode's
    /// action sampling reproducible.
    fn episode(&mut self, net: &PolicyValueNet, seed: u64) -> (Vec<Sample>, f64);
}

/// Collect at least `min_samples` experiences by running episodes on
/// `workers` parallel clones of `env` against a shared frozen policy.
///
/// Deterministic per `(seed, workers)`: each worker w runs episodes
/// seeded `seed + w`, `seed + w + workers`, ... and results are merged
/// in worker order.
pub fn collect_parallel<E: RolloutEnv>(
    env: &E,
    net: &PolicyValueNet,
    min_samples: usize,
    workers: usize,
    seed: u64,
) -> RolloutBatch {
    let workers = workers.max(1);
    let collected = AtomicUsize::new(0);
    let batches: Vec<Mutex<RolloutBatch>> =
        (0..workers).map(|_| Mutex::new(RolloutBatch::default())).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let mut worker_env = env.clone();
            let batches = &batches;
            let collected = &collected;
            scope.spawn(move || {
                let mut round = 0u64;
                while collected.load(Ordering::Relaxed) < min_samples {
                    let ep_seed = seed
                        .wrapping_add(w as u64)
                        .wrapping_add(round.wrapping_mul(workers as u64));
                    let (samples, ep_return) = worker_env.episode(net, ep_seed);
                    collected.fetch_add(samples.len().max(1), Ordering::Relaxed);
                    batches[w].lock().push_episode(w, samples, ep_return);
                    round += 1;
                }
            });
        }
        // Worker panics propagate when the scope joins.
    });

    let mut out = RolloutBatch::default();
    for b in batches {
        out.merge(b.into_inner());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::NetConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A toy env: episodes emit a fixed number of dummy samples whose
    /// rewards encode the episode seed, so determinism is observable.
    #[derive(Clone)]
    struct ToyEnv {
        steps: usize,
    }

    impl RolloutEnv for ToyEnv {
        fn episode(&mut self, net: &PolicyValueNet, seed: u64) -> (Vec<Sample>, f64) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let samples = (0..self.steps)
                .map(|_| {
                    let obs = vec![rng.gen::<f32>(), rng.gen::<f32>()];
                    let (_, _, v) = net.forward_one(&obs);
                    Sample {
                        obs,
                        dim_action: 0,
                        act_action: 0,
                        dim_mask: vec![true; 2],
                        act_mask: vec![true; 2],
                        log_prob: -0.5,
                        value: v,
                        reward: (seed % 10) as f32,
                    }
                })
                .collect();
            (samples, (seed % 10) as f64)
        }
    }

    fn net() -> PolicyValueNet {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 2, hidden: [4, 4] },
            &mut rng,
        )
    }

    #[test]
    fn collects_at_least_min_samples() {
        let env = ToyEnv { steps: 7 };
        let batch = collect_parallel(&env, &net(), 50, 4, 99);
        assert!(batch.len() >= 50);
        assert!(batch.episodes >= 50 / 7);
    }

    #[test]
    fn single_worker_is_deterministic() {
        let env = ToyEnv { steps: 3 };
        let n = net();
        let a = collect_parallel(&env, &n, 12, 1, 42);
        let b = collect_parallel(&env, &n, 12, 1, 42);
        assert_eq!(a.len(), b.len());
        let ra: Vec<f32> = a.samples.iter().map(|s| s.reward).collect();
        let rb: Vec<f32> = b.samples.iter().map(|s| s.reward).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn workers_use_distinct_seeds() {
        let env = ToyEnv { steps: 5 };
        let batch = collect_parallel(&env, &net(), 40, 4, 7);
        // Episodes from different workers should show different rewards
        // (seeds 7, 8, 9, 10 -> rewards 7, 8, 9, 0 mod 10).
        let mut rewards: Vec<i64> = batch.samples.iter().map(|s| s.reward as i64).collect();
        rewards.sort_unstable();
        rewards.dedup();
        assert!(rewards.len() >= 2, "expected seed diversity, got {rewards:?}");
    }
}
