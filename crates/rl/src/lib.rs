//! Proximal Policy Optimization over 1-step branching-process
//! experiences.
//!
//! NeuroCuts (§5) sidesteps the mismatch between tree-structured rollouts
//! and the sequential MDP assumed by off-the-shelf RL libraries by
//! treating every node decision as an independent **1-step decision
//! problem** whose reward is filled in once the relevant subtree is
//! complete. This crate implements exactly that training stack:
//!
//! * [`Sample`]/[`RolloutBatch`] — 1-step experiences with joint
//!   two-head log-probabilities and masks, grouped into per-env
//!   trajectories by [`EpisodeSpan`]s with GAE(γ, λ) advantage
//!   estimation ([`RolloutBatch::gae`]; γ = 0 recovers the paper's
//!   independent 1-step advantages);
//! * [`Ppo`] — the clipped-surrogate actor-critic update with entropy
//!   regularisation, clipped value loss, and KL-target early stopping
//!   (the paper's PPO, Table 1 hyperparameters);
//! * [`sampler`] — scoped-thread parallel rollout collection over
//!   whole episodes, the "policy evaluation" workers of Figure 7 (the
//!   lockstep *vectorised* collector with batched policy inference
//!   lives with the environment, in `neurocuts::vecenv`).

#![warn(missing_docs)]

pub mod ppo;
pub mod qlearning;
pub mod rollout;
pub mod sampler;

pub use ppo::{Ppo, PpoConfig, UpdateStats};
pub use qlearning::{QConfig, QLearner, QStats};
pub use rollout::{EpisodeSpan, RolloutBatch, Sample};
pub use sampler::{collect_parallel, RolloutEnv};
