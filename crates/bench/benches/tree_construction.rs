//! Criterion bench: wall-clock construction time of each baseline tree
//! builder (the paper's §5 notes construction cost is dominated by
//! per-rule scans during cut actions).

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn tree_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_construction");
    group.sample_size(10);
    for family in ClassifierFamily::ALL {
        let rules = generate_rules(&GeneratorConfig::new(family, 500).with_seed(1));
        for name in nc_bench::BASELINE_NAMES {
            group.bench_with_input(BenchmarkId::new(name, family.tag()), &rules, |b, rules| {
                b.iter(|| black_box(nc_bench::build_baseline(name, rules)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, tree_construction);
criterion_main!(benches);
