//! Criterion bench: policy-network inference cost — the per-decision
//! overhead of NeuroCuts tree construction. (The paper notes its
//! Python tree operations dominate; here both sides are native, so the
//! balance is visible.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::{Matrix, NetConfig, PolicyValueNet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn nn_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_forward");
    for hidden in [64usize, 128, 256, 512] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = PolicyValueNet::new(
            NetConfig { obs_dim: 315, dim_actions: 5, num_actions: 14, hidden: [hidden, hidden] },
            &mut rng,
        );
        let obs = vec![0.5f32; 315];
        group.bench_with_input(BenchmarkId::new("single", hidden), &net, |b, net| {
            b.iter(|| black_box(net.forward_one(black_box(&obs))))
        });
        let batch = Matrix::from_rows(&vec![obs.as_slice(); 256]);
        group.bench_with_input(BenchmarkId::new("batch256", hidden), &net, |b, net| {
            b.iter(|| black_box(net.forward(batch.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, nn_forward);
criterion_main!(benches);
