//! Criterion bench: lookup throughput of the trees each algorithm
//! builds — the "classification time" metric measured as real lookups
//! rather than tree depth.

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn classify_throughput(c: &mut Criterion) {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 1000).with_seed(1));
    let trace = generate_trace(&rules, &TraceConfig::new(4096).with_seed(2));
    let mut group = c.benchmark_group("classify_throughput");
    group.throughput(Throughput::Elements(trace.len() as u64));

    for name in nc_bench::BASELINE_NAMES {
        let tree = nc_bench::build_baseline(name, &rules);
        group.bench_with_input(BenchmarkId::new("tree", name), &tree, |b, tree| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &trace {
                    if tree.classify(black_box(p)).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
        // The compiled deployment form of the same tree.
        let flat = dtree::FlatTree::compile(&tree);
        group.bench_with_input(BenchmarkId::new("flat", name), &flat, |b, flat| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &trace {
                    if flat.classify(black_box(p)).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
        // The batched wavefront lookup over the same compiled tree.
        let mut out = vec![None; trace.len()];
        group.bench_with_input(BenchmarkId::new("flat-batch", name), &flat, |b, flat| {
            b.iter(|| {
                flat.classify_batch(black_box(&trace), &mut out);
                out.iter().filter(|r| r.is_some()).count()
            })
        });
        // The sharded engine at the hardware's parallelism.
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        group.bench_with_input(
            BenchmarkId::new(format!("engine{threads}t"), name),
            &flat,
            |b, flat| {
                b.iter(|| {
                    dtree::classify_sharded(flat, black_box(&trace), &mut out, threads);
                    out.iter().filter(|r| r.is_some()).count()
                })
            },
        );
    }

    // The linear-scan ground truth as the reference point.
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &trace {
                if rules.classify(black_box(p)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, classify_throughput);
criterion_main!(benches);
