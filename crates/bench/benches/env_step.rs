//! Criterion bench: full-episode cost of the NeuroCuts environment
//! under an untrained policy — the rollout-generation cost that
//! dominates training wall-clock (§5 "Performance").

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurocuts::{NeuroCutsConfig, NeuroCutsEnv};
use nn::{NetConfig, PolicyValueNet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn env_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_episode");
    group.sample_size(10);
    for size in [60usize, 150] {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(1));
        let mut cfg = NeuroCutsConfig::fast();
        cfg.hidden = [64, 64];
        cfg.max_timesteps_per_rollout = 20_000;
        let env = NeuroCutsEnv::new(rules, cfg.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = PolicyValueNet::new(
            NetConfig {
                obs_dim: env.encoder.obs_dim(),
                dim_actions: env.action_space.dim_actions(),
                num_actions: env.action_space.num_actions(),
                hidden: cfg.hidden,
            },
            &mut rng,
        );
        group.bench_with_input(BenchmarkId::new("episode", size), &env, |b, env| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(env.build_tree(&net, seed, false).samples.len())
            })
        });
    }
    group.finish();
}

/// The allocation-free observation encoder on its own: one reused
/// buffer threaded through every call, the pattern harnesses that
/// don't retain observations should use.
fn obs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_encode");
    let env = NeuroCutsEnv::new(
        generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(1)),
        NeuroCutsConfig::smoke_test(),
    );
    let meta = neurocuts::env::NodeMeta::root();
    let space = dtree::NodeSpace::full();
    let dim_mask = vec![true; 5];
    let act_mask = env.action_space.act_mask(true);
    group.bench_function("encode_into_reused", |b| {
        let mut obs = Vec::new();
        b.iter(|| {
            env.encoder.encode_into(&space, &meta, &dim_mask, &act_mask, &mut obs);
            black_box(obs.len())
        })
    });
    group.finish();
}

criterion_group!(benches, env_episode, obs_encode);
criterion_main!(benches);
