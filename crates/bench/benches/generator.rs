//! Criterion bench: rule-set and trace synthesis throughput of the
//! ClassBench-equivalent generator.

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    for size in [1000usize, 10_000] {
        group.throughput(Throughput::Elements(size as u64));
        for family in ClassifierFamily::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("rules_{}", family.tag()), size),
                &size,
                |b, &size| {
                    let cfg = GeneratorConfig::new(family, size).with_seed(1);
                    b.iter(|| black_box(generate_rules(&cfg)))
                },
            );
        }
    }
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 1000));
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("trace_10k", |b| {
        b.iter(|| black_box(generate_trace(&rules, &TraceConfig::new(10_000))))
    });
    group.finish();
}

criterion_group!(benches, generator);
criterion_main!(benches);
