//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **rewards** — dense per-subtree rewards (§4) vs a single terminal
//!    reward copied to every decision (the strawman the paper rejects);
//! 2. **mask** — partition actions at top nodes only (Appendix A mask)
//!    vs anywhere;
//! 3. **truncation** — the 15000-step rollout cap vs a tight 1000-step
//!    cap (Table 1's swept values);
//! 4. **model size** — hidden widths 64/256/512 (Table 1's note that
//!    64 units degrade learning).
//!
//! Each ablation trains on the same classifier with the same seed and
//! budget, reporting the best objective reached.
//!
//! ```text
//! cargo run --release -p nc-bench --bin ablations [rewards|mask|truncation|model]
//! ```

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig, RuleSet};
use nc_bench::*;
use neurocuts::{NeuroCutsConfig, PartitionMode};

fn rules() -> RuleSet {
    generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, suite_size()).with_seed(0))
}

fn run(tag: &str, cfg: NeuroCutsConfig, rules: &RuleSet) {
    let result = run_neurocuts(rules, cfg);
    println!(
        "  {tag:<34} time={:<4} bytes/rule={:<10.1} nodes={}",
        result.stats.time, result.stats.bytes_per_rule, result.stats.nodes
    );
}

fn base() -> NeuroCutsConfig {
    harness_config().with_coeff(1.0).with_partition_mode(PartitionMode::Simple).with_seed(7)
}

fn ablate_rewards(rules: &RuleSet) {
    println!("[1] dense subtree rewards vs single terminal reward:");
    run("dense rewards (paper)", base(), rules);
    let mut sparse = base();
    sparse.dense_rewards = false;
    run("terminal-only rewards (strawman)", sparse, rules);
}

fn ablate_mask(rules: &RuleSet) {
    println!("[2] partition mask: top-node only vs anywhere:");
    run("top-node partitions (paper)", base(), rules);
    let mut anywhere = base();
    anywhere.partition_anywhere = true;
    run("partitions anywhere", anywhere, rules);
}

fn ablate_truncation(rules: &RuleSet) {
    println!("[3] rollout truncation (Table 1 sweep):");
    for cap in [1000usize, 5000, 15000] {
        let mut cfg = base();
        cfg.max_timesteps_per_rollout = cap;
        run(&format!("rollout cap {cap}"), cfg, rules);
    }
}

fn ablate_model(rules: &RuleSet) {
    println!("[4] model size (Table 1 note: 64 units degrade learning):");
    for h in [64usize, 256, 512] {
        let mut cfg = base();
        cfg.hidden = [h, h];
        run(&format!("hidden [{h}, {h}]"), cfg, rules);
    }
}

fn ablate_algorithm(rules: &RuleSet) {
    println!("[5] PPO vs Q-learning (the paper tried Q-learning, \"did not perform as well\"):");
    run("PPO (paper)", base(), rules);
    let mut q = base();
    q.use_qlearning = true;
    run("Q-learning (Boltzmann)", q, rules);
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let rules = rules();
    println!("ablations on acl1 at {} rules, {} timesteps/run\n", rules.len(), train_timesteps());
    if all || which.iter().any(|w| w == "rewards") {
        ablate_rewards(&rules);
    }
    if all || which.iter().any(|w| w == "mask") {
        ablate_mask(&rules);
    }
    if all || which.iter().any(|w| w == "truncation") {
        ablate_truncation(&rules);
    }
    if all || which.iter().any(|w| w == "model") {
        ablate_model(&rules);
    }
    if all || which.iter().any(|w| w == "algorithm") {
        ablate_algorithm(&rules);
    }
}
