//! Figure 11: sweep the time-space coefficient `c ∈ {0, 0.1, 0.5, 1}`
//! with the simple partitioner and log reward scaling; plot the suite
//! median of classification time and bytes per rule.
//!
//! Paper result to reproduce (§6.4): classification time improves ~2×
//! as `c → 1` while bytes/rule improves ~2× as `c → 0`.
//!
//! ```text
//! cargo run --release -p nc-bench --bin fig11_tradeoff
//! ```

use nc_bench::*;
use neurocuts::{PartitionMode, RewardScaling};

fn main() {
    let suite = suite();
    println!(
        "Figure 11: time-space tradeoff, {} rules/classifier, {} RL timesteps\n",
        suite_size(),
        train_timesteps()
    );
    println!("{:>5} | {:>12} | {:>14}", "c", "median time", "median bytes/rule");
    println!("{:->5}-+-{:->12}-+-{:->14}", "", "", "");

    let mut series: Vec<(f64, f64, f64)> = Vec::new();
    for &c in &[0.0, 0.1, 0.5, 1.0] {
        let mut times = Vec::new();
        let mut spaces = Vec::new();
        for entry in &suite {
            let mut cfg = harness_config()
                .with_coeff(c)
                .with_partition_mode(PartitionMode::Simple)
                .with_seed(4);
            // The paper uses log scaling throughout this sweep.
            cfg.reward_scaling = RewardScaling::Log;
            let result = run_neurocuts(&entry.rules, cfg);
            times.push(result.stats.time as f64);
            spaces.push(result.stats.bytes_per_rule);
        }
        let mt = median(&times);
        let ms = median(&spaces);
        series.push((c, mt, ms));
        println!("{c:>5.1} | {mt:>12.1} | {ms:>14.1}");
    }

    let (first, last) = (series.first().unwrap(), series.last().unwrap());
    println!("\ntime at c=1 vs c=0: {:.2}x better (paper: ~2x)", first.1 / last.1.max(1e-9));
    println!("bytes/rule at c=0 vs c=1: {:.2}x better (paper: ~2x)", last.2 / first.2.max(1e-9));
}
