//! Figure 8: classification time (tree depth) for HiCuts, HyperCuts,
//! EffiCuts, CutSplit, and time-optimised NeuroCuts across the
//! ClassBench suite.
//!
//! Paper result to reproduce (§6.1): NeuroCuts improves the median by
//! 20% / 38% / 52% / 56% over HiCuts / HyperCuts / EffiCuts / CutSplit,
//! beats the per-classifier minimum of all baselines in 70% of cases,
//! with an 18% median all-baseline improvement.
//!
//! ```text
//! NC_SIZE=1000 NC_TIMESTEPS=9000 cargo run --release -p nc-bench --bin fig8_time
//! ```

use dtree::TreeStats;
use nc_bench::*;
use neurocuts::PartitionMode;

fn main() {
    let suite = suite();
    println!(
        "Figure 8: classification time (tree depth), {} rules/classifier, {} RL timesteps\n",
        suite_size(),
        train_timesteps()
    );
    print_row(
        "classifier",
        &BASELINE_NAMES
            .iter()
            .map(|s| s.to_string())
            .chain(["NeuroCuts".to_string()])
            .collect::<Vec<_>>(),
    );

    let mut baseline_times: Vec<Vec<f64>> = vec![Vec::new(); BASELINE_NAMES.len()];
    let mut neuro_times: Vec<f64> = Vec::new();
    let mut beat_min = 0usize;
    let mut vs_all_best: Vec<f64> = Vec::new();

    for entry in &suite {
        let mut cells = Vec::new();
        let mut best_baseline = f64::INFINITY;
        for (i, name) in BASELINE_NAMES.iter().enumerate() {
            let t = TreeStats::compute(&build_baseline(name, &entry.rules)).time as f64;
            baseline_times[i].push(t);
            best_baseline = best_baseline.min(t);
            cells.push(format!("{t:.0}"));
        }
        // Time-optimised NeuroCuts: c = 1; the simple partitioner is
        // allowed (the paper's best time trees use none or simple) —
        // it rescues wildcard-heavy FW sets from replication blowup.
        let cfg = harness_config()
            .with_coeff(1.0)
            .with_partition_mode(PartitionMode::Simple)
            .with_seed(1);
        let result = run_neurocuts(&entry.rules, cfg);
        let t = result.stats.time as f64;
        neuro_times.push(t);
        if t <= best_baseline {
            beat_min += 1;
        }
        vs_all_best.push(improvement(t, best_baseline));
        cells.push(format!("{t:.0}"));
        print_row(&entry.label, &cells);
    }

    println!("\n--- medians ---");
    for (i, name) in BASELINE_NAMES.iter().enumerate() {
        let med_imp = median(
            &neuro_times
                .iter()
                .zip(&baseline_times[i])
                .map(|(&n, &b)| improvement(n, b))
                .collect::<Vec<_>>(),
        );
        println!(
            "NeuroCuts vs {name:<10} median improvement: {:>6.1}%  (paper: {}%)",
            med_imp * 100.0,
            match *name {
                "HiCuts" => 20,
                "HyperCuts" => 38,
                "EffiCuts" => 52,
                _ => 56,
            }
        );
    }
    println!(
        "beats the min of all baselines on {}/{} classifiers ({:.0}%; paper: 70%)",
        beat_min,
        suite.len(),
        100.0 * beat_min as f64 / suite.len() as f64
    );
    println!(
        "median all-baseline improvement: {:.1}% (paper: 18%), mean {:.1}% (paper: 12%)",
        median(&vs_all_best) * 100.0,
        vs_all_best.iter().sum::<f64>() / vs_all_best.len() as f64 * 100.0
    );
}
