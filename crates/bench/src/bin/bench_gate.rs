//! `bench_gate` — throughput-regression tripwire for the benchmark
//! emitters' JSON artifacts.
//!
//! ```text
//! bench_gate <committed-baseline.json> <fresh.json>
//! ```
//!
//! Scans every top-level array of row objects in the baseline (e.g.
//! `collect` in `BENCH_train.json`, `neurocuts` in `BENCH_build.json`)
//! and, for each row carrying a `steps_per_sec` metric, compares the
//! fresh run's matching row (same position and identity fields). The
//! gate **fails** (exit 1) when any fresh metric drops below
//! `NC_GATE_MIN_RATIO` (default `0.8`, i.e. a >20% regression) of the
//! committed baseline.
//!
//! Guard rails, because absolute throughput is machine- and
//! scale-dependent:
//!
//! * if the two files' `config` objects differ (different scale knobs,
//!   different machine-independent setup), the gate **skips** with a
//!   warning instead of comparing apples to oranges;
//! * a missing baseline file also skips (first run of a new emitter).
//!
//! This is a tripwire, not a precision instrument: CI runners vary,
//! and the 20% tolerance absorbs normal noise while still catching
//! the step-function regressions that matter (an accidentally
//! quadratic assignment loop, a lost memoization).

use serde_json::Value;

/// The per-row throughput metrics worth gating. `mpps` and
/// `sustained_mpps` cover the serving-side emitters: `bench_updates`
/// rows (Mpps sustained during churn) and `bench_lifecycle` phase rows
/// (Mpps sustained in every lifecycle phase, including *during* a
/// background retrain).
const METRICS: [&str; 4] = ["steps_per_sec", "episodes_per_sec", "mpps", "sustained_mpps"];

/// Identity fields used to label a row in failure messages. The
/// `family`/`size`/`seed`/`skew` axes identify `bench_sweep` matrix
/// cells and per-family summary rows.
const ID_FIELDS: [&str; 10] =
    ["path", "algo", "hidden", "workers", "envs", "phase", "family", "size", "seed", "skew"];

fn scalar(v: &Value) -> String {
    if let Some(s) = v.as_str() {
        s.to_string()
    } else if let Some(u) = v.as_u64() {
        u.to_string()
    } else {
        format!("{v:?}")
    }
}

fn row_label(row: &Value) -> String {
    let mut parts = Vec::new();
    for f in ID_FIELDS {
        let v = &row[f];
        if !v.is_null() {
            parts.push(format!("{f}={}", scalar(v)));
        }
    }
    parts.join(" ")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        std::process::exit(2);
    }
    let min_ratio: f64 =
        std::env::var("NC_GATE_MIN_RATIO").ok().and_then(|v| v.parse().ok()).unwrap_or(0.8);

    let baseline = match std::fs::read_to_string(&args[1]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: no baseline at {} ({e}); skipping gate", args[1]);
            return;
        }
    };
    let fresh = std::fs::read_to_string(&args[2]).expect("fresh benchmark JSON exists");
    // An empty or unparseable baseline (e.g. a botched `git show`
    // redirect) means "no baseline", not "fail CI".
    let baseline: Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_gate: baseline {} does not parse ({e}); skipping gate", args[1]);
            return;
        }
    };
    let fresh: Value = serde_json::from_str(&fresh).expect("fresh JSON parses");

    // Compare scale knobs only: `hw_threads` *describes* the machine
    // rather than configuring the benchmark, and gating across machines
    // is exactly this tool's job.
    let scale_config = |v: &Value| -> Vec<(String, Value)> {
        v["config"]
            .as_object()
            .map(|m| m.iter().filter(|(k, _)| k != "hw_threads").cloned().collect::<Vec<_>>())
            .unwrap_or_default()
    };
    if scale_config(&baseline) != scale_config(&fresh) {
        eprintln!(
            "bench_gate: config mismatch between {} and {}; skipping ratio gate",
            args[1], args[2]
        );
        return;
    }

    let Some(obj) = baseline.as_object() else {
        eprintln!("bench_gate: baseline is not an object; skipping");
        return;
    };
    let mut checked = 0usize;
    let mut failures = 0usize;
    for (key, val) in obj.iter() {
        let Some(rows) = val.as_array() else { continue };
        for (i, row) in rows.iter().enumerate() {
            for metric in METRICS {
                let Some(base) = row[metric].as_f64() else { continue };
                let fresh_row = &fresh[key.as_str()][i];
                // Rows must still describe the same measurement.
                for f in ID_FIELDS {
                    assert_eq!(
                        row[f], fresh_row[f],
                        "row identity drift at {key}[{i}].{f} — regenerate the baseline"
                    );
                }
                let got = fresh_row[metric].as_f64().unwrap_or(0.0);
                let ratio = if base > 0.0 { got / base } else { 1.0 };
                checked += 1;
                let verdict = if ratio < min_ratio {
                    failures += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                eprintln!(
                    "{key}[{i}] {:<28} {metric:>16}: {got:>10.1} vs baseline {base:>10.1} \
                     ({ratio:>5.2}x)  {verdict}",
                    row_label(row)
                );
            }
        }
    }
    eprintln!(
        "bench_gate: {checked} metrics checked, {failures} below {min_ratio:.2}x of baseline"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
