//! Figure 6: four random tree variations drawn from a single stochastic
//! policy trained on an ACL rule set (`acl4_1k` in the paper) — the
//! stochastic policy explores many tree shapes during training.
//!
//! ```text
//! cargo run --release -p nc-bench --bin fig6_variations
//! ```

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
use dtree::LevelProfile;
use nc_bench::*;
use neurocuts::{PartitionMode, Trainer};

fn main() {
    let size = suite_size();
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(3)); // acl4
    println!(
        "Figure 6: stochastic tree variations on acl4 at {size} rules ({} loaded)\n",
        rules.len()
    );

    let cfg =
        harness_config().with_coeff(1.0).with_partition_mode(PartitionMode::Simple).with_seed(6);
    let mut trainer = Trainer::new(rules, cfg).expect("trainable rule set");
    let report = trainer.train().expect("training makes progress");
    println!(
        "trained for {} timesteps, best objective {:.1}\n",
        report.timesteps,
        report.best.as_ref().map_or(f64::NAN, |b| b.objective)
    );

    for (i, (tree, stats)) in trainer.sample_trees(4, 99).into_iter().enumerate() {
        println!("--- variation {}: {stats}", i + 1);
        print!("{}", LevelProfile::compute(&tree).render_ascii(40));
        println!();
    }
    println!("the four trees differ in shape but all classify identically (validated in tests)");
}
