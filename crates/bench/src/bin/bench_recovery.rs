//! `bench_recovery` — machine-readable crash-recovery latency
//! benchmark.
//!
//! Measures what the durability layer costs at the worst possible
//! moment: the process is gone and a replacement must reach "serving,
//! proven correct" from the on-disk checkpoint + WAL chain. For each
//! target WAL length the harness attaches persistence to a live
//! classifier, churns exactly that many logged updates *without*
//! checkpointing behind them, then times [`neurocuts::recover`] —
//! which includes torn-tail inspection, admission-controlled replay,
//! the linear-scan spot proof over the full trace, and the fresh
//! re-checkpoint. Writes `BENCH_recovery.json` so recovery latency is
//! tracked from PR to PR.
//!
//! The row metrics (`recovery_ms`, `us_per_record`, `wal_records`,
//! `checkpoint_bytes`) are deliberately named outside `bench_gate`'s
//! gated METRICS: recovery latency is reported, never gated — it is a
//! cold-path cost and noisy on shared runners.
//!
//! Correctness gates (exit non-zero, numbers never mask a bug):
//!
//! * every recovered handle must match the live handle it was
//!   persisted from — epoch, tree statistics, and every packet of the
//!   trace;
//! * a clean directory must recover with no torn tail and replay every
//!   logged record.
//!
//! Scale is controlled by environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_BENCH_SIZE` | rules in the classifier | 200 |
//! | `NC_BENCH_TRACE` | packets in the proof trace | 1024 |
//! | `NC_BENCH_OUT` | output path | `BENCH_recovery.json` |

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
};
use dtree::{ChurnSchedule, ClassifierHandle, DecisionTree, RebuildPolicy, TreeStats};
use neurocuts::{recover, PersistConfig, Persistence};
use std::time::Instant;

const WAL_TARGETS: [usize; 4] = [0, 128, 512, 1024];
const SEED: u64 = 0xBE9C_0BE5;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Row {
    wal_target: usize,
    wal_records: u64,
    recovery_ms: f64,
    us_per_record: f64,
    checkpoint_bytes: u64,
    epoch: u64,
}

fn main() {
    let size = env_usize("NC_BENCH_SIZE", 200);
    let trace_len = env_usize("NC_BENCH_TRACE", 1024);
    let out_path =
        std::env::var("NC_BENCH_OUT").unwrap_or_else(|_| "BENCH_recovery.json".to_string());

    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(SEED));
    let trace = generate_trace(&rules, &TraceConfig::new(trace_len).with_seed(SEED ^ 0x7ACE));
    eprintln!(
        "bench_recovery: acl/{size} rules, {} probe packets, WAL targets {WAL_TARGETS:?}",
        trace.len()
    );

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (i, &target) in WAL_TARGETS.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("nc-bench-recovery-{}-{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A hand-cut starting tree: recovery latency should measure
        // the durability layer, not RL training time.
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstIp, 4);
            }
        }
        let live = ClassifierHandle::new(tree, RebuildPolicy::default_policy());
        let persistence = Persistence::new(&dir);
        let attach = persistence.checkpoint(&live, SEED).expect("attach checkpoint");

        // Exactly `target` logged updates behind the checkpoint, none
        // folded: the WAL is the whole replay cost.
        let mut churn = ChurnSchedule::new(rules.rules().to_vec(), Vec::new(), SEED ^ i as u64);
        for _ in 0..target {
            churn.step(&live);
        }
        let logged = live.health().wal_len.unwrap_or(0);

        let started = Instant::now();
        let (recovered, report) =
            recover(&dir, RebuildPolicy::default_policy(), &trace, &PersistConfig::default())
                .expect("recovery from a clean directory");
        let recovery_ms = started.elapsed().as_secs_f64() * 1e3;

        if report.truncated_tail.is_some() {
            failures.push(format!("target {target}: clean directory reported a torn tail"));
        }
        if report.replayed != logged {
            failures.push(format!(
                "target {target}: replayed {} of {logged} logged records",
                report.replayed
            ));
        }
        if recovered.epoch() != live.epoch() {
            failures.push(format!(
                "target {target}: recovered epoch {} != live epoch {}",
                recovered.epoch(),
                live.epoch()
            ));
        }
        if recovered.with_tree(TreeStats::compute) != live.with_tree(TreeStats::compute) {
            failures.push(format!("target {target}: recovered tree statistics diverged"));
        }
        let mut got = vec![None; trace.len()];
        let mut want = vec![None; trace.len()];
        recovered.snapshot().classify_batch(&trace, &mut got);
        live.snapshot().classify_batch(&trace, &mut want);
        if got != want {
            failures.push(format!("target {target}: recovered classification diverged from live"));
        }

        let us_per_record = recovery_ms * 1e3 / report.replayed.max(1) as f64;
        eprintln!(
            "wal {target:>5} -> {:>5} replayed in {recovery_ms:>8.2}ms ({us_per_record:>7.2}us/record, \
             checkpoint {} bytes, epoch {})",
            report.replayed,
            attach.bytes,
            report.epoch
        );
        rows.push(Row {
            wal_target: target,
            wal_records: report.replayed,
            recovery_ms,
            us_per_record,
            checkpoint_bytes: attach.bytes,
            epoch: report.epoch,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Hand-rolled JSON, matching the other emitters.
    let mut json = String::from("{\n  \"schema\": \"bench_recovery/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"family\": \"acl\", \"size\": {size}, \"trace\": {}, \"seed\": {SEED}, \
         \"wal_targets\": [0, 128, 512, 1024]}},\n",
        trace.len()
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"wal_target\": {}, \"wal_records\": {}, \"recovery_ms\": {:.3}, \
             \"us_per_record\": {:.3}, \"checkpoint_bytes\": {}, \"epoch\": {}}}{}\n",
            r.wal_target,
            r.wal_records,
            r.recovery_ms,
            r.us_per_record,
            r.checkpoint_bytes,
            r.epoch,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"verification\": {{\"targets\": {}, \"failures\": {}}}\n}}\n",
        rows.len(),
        failures.len()
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
