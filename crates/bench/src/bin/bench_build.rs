//! `bench_build` — machine-readable tree-construction benchmark.
//!
//! PR 2's `bench_classify` tracks the serving path and `bench_train`
//! the whole actor-learner pipeline; this emitter isolates the **build
//! path** the arena-backed rule store optimises: episode construction
//! (the per-decision tree mutation work that dominates training time)
//! and the hand-tuned baseline builders, all on the same rules.
//!
//! 1. **Episode construction throughput** for NeuroCuts under a frozen
//!    random policy at the two model widths that bracket the regimes:
//!    `[64, 64]` (env-side tree work dominates — the number this PR
//!    moves) and `[512, 512]` (the paper's production width, where the
//!    batched policy forward shares the bill). Reported as
//!    env-steps/sec *and* episodes/sec.
//! 2. **Baseline build times** for HiCuts, HyperCuts, EffiCuts, and
//!    CutSplit — the same single-pass assignment kernels drive their
//!    `simulate_*` probes and expansions.
//! 3. **Ground truth**: every tree the benchmark touches (one episode
//!    tree per width, every baseline) is verified packet-for-packet
//!    against the rule set's linear scan; any mismatch exits non-zero,
//!    so the numbers can never outlive correctness.
//!
//! Scale is controlled by environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_BENCH_SIZE` | rules in the classifier | 300 |
//! | `NC_BENCH_SAMPLES` | env-steps per collection measurement | 4000 |
//! | `NC_BENCH_ENVS` | lockstep environments in the collector | 8 |
//! | `NC_BENCH_TRACE` | packets for ground-truth verification | 4096 |
//! | `NC_BENCH_REPS` | best-of reps per measurement | 3 |
//! | `NC_BENCH_OUT` | output path | `BENCH_build.json` |
//!
//! CI runs this at the committed default scale and gates the fresh
//! `steps_per_sec` against the committed `BENCH_build.json` with
//! `bench_gate` (>20% regression fails the job).

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::{DecisionTree, TreeStats};
use neurocuts::{NeuroCutsConfig, NeuroCutsEnv, VecEnv};
use nn::{NetConfig, PolicyValueNet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One measured NeuroCuts episode-construction row.
struct BuildRow {
    hidden: usize,
    envs: usize,
    env_steps: usize,
    episodes: usize,
    secs: f64,
    steps_per_sec: f64,
    episodes_per_sec: f64,
}

/// One measured baseline-builder row.
struct BaselineRow {
    algo: &'static str,
    secs: f64,
    builds_per_sec: f64,
    nodes: usize,
    max_depth: usize,
}

/// Verify a tree against the rule set's linear scan over `trace`;
/// returns the number of mismatching packets.
fn verify(tree: &DecisionTree, rules: &classbench::RuleSet, trace: &[classbench::Packet]) -> usize {
    trace.iter().filter(|p| tree.classify(p) != rules.classify(p)).count()
}

fn main() {
    let size = env_usize("NC_BENCH_SIZE", 300);
    let samples = env_usize("NC_BENCH_SAMPLES", 4000);
    let num_envs = env_usize("NC_BENCH_ENVS", 8).max(1);
    let trace_len = env_usize("NC_BENCH_TRACE", 4096);
    let reps = env_usize("NC_BENCH_REPS", 3).max(1);
    let out_path = std::env::var("NC_BENCH_OUT").unwrap_or_else(|_| "BENCH_build.json".to_string());

    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(1));
    let trace = generate_trace(&rules, &TraceConfig::new(trace_len).with_seed(2));
    eprintln!(
        "bench_build: acl/{size} rules, {samples} steps/measurement, {num_envs} envs, \
         {} verification packets, best of {reps}",
        trace.len()
    );

    let mut mismatches = 0usize;

    // Episode-construction throughput at both model widths. The policy
    // is frozen and random (seeded net), so the work measured is the
    // env side plus one batched forward per lockstep round — exactly
    // what one training iteration's collection phase does.
    let cfg = NeuroCutsConfig::small(10_000);
    let mut rows: Vec<BuildRow> = Vec::new();
    for hidden in [64usize, 512] {
        let env = NeuroCutsEnv::new(rules.clone(), cfg.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = PolicyValueNet::new(
            NetConfig {
                obs_dim: env.encoder.obs_dim(),
                dim_actions: env.action_space.dim_actions(),
                num_actions: env.action_space.num_actions(),
                hidden: [hidden, hidden],
            },
            &mut rng,
        );
        let mut best: Option<(usize, usize, f64)> = None;
        for _ in 0..reps {
            env.reset_best();
            let start = Instant::now();
            let batch = VecEnv::new(env.clone(), num_envs, 10).collect(&net, samples, 1);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            if best.is_none_or(|(s, _, t)| batch.len() as f64 / secs > s as f64 / t) {
                best = Some((batch.len(), batch.episodes, secs));
            }
        }
        let (env_steps, episodes, secs) = best.expect("at least one rep");
        // Ground-truth the trees this policy actually builds: the best
        // completed episode of the measured collection.
        let best_tree = env.best().expect("collection completed at least one episode");
        mismatches += verify(&best_tree.tree, &rules, &trace);
        rows.push(BuildRow {
            hidden,
            envs: num_envs,
            env_steps,
            episodes,
            secs,
            steps_per_sec: env_steps as f64 / secs,
            episodes_per_sec: episodes as f64 / secs,
        });
    }
    for r in &rows {
        eprintln!(
            "neurocuts [{:>3},{:>3}]  envs {:>2}  {:>7} steps / {:>5} episodes in {:>6.2}s  \
             {:>9.0} steps/s  {:>7.1} episodes/s",
            r.hidden,
            r.hidden,
            r.envs,
            r.env_steps,
            r.episodes,
            r.secs,
            r.steps_per_sec,
            r.episodes_per_sec
        );
    }

    // Baseline builders, best-of-reps, each verified.
    let mut base_rows: Vec<BaselineRow> = Vec::new();
    for algo in ["HiCuts", "HyperCuts", "EffiCuts", "CutSplit"] {
        let mut best_secs = f64::INFINITY;
        let mut tree = None;
        for _ in 0..reps {
            let start = Instant::now();
            let t = nc_bench::build_baseline(algo, &rules);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            if secs < best_secs {
                best_secs = secs;
            }
            tree = Some(t);
        }
        let tree = tree.expect("at least one build");
        mismatches += verify(&tree, &rules, &trace);
        let stats = TreeStats::compute(&tree);
        eprintln!(
            "{algo:<10} built in {best_secs:>8.4}s  ({:>7.1} builds/s)  nodes {:>6}  depth {:>2}",
            1.0 / best_secs,
            stats.nodes,
            stats.max_depth
        );
        base_rows.push(BaselineRow {
            algo,
            secs: best_secs,
            builds_per_sec: 1.0 / best_secs,
            nodes: stats.nodes,
            max_depth: stats.max_depth,
        });
    }

    if mismatches > 0 {
        eprintln!("MISMATCH: {mismatches} packets diverged from the linear-scan ground truth");
    } else {
        eprintln!("all trees verified against the linear scan on {} packets each", trace.len());
    }

    // Hand-rolled JSON: flat structure, no string escapes needed.
    let mut json = String::from("{\n  \"schema\": \"bench_build/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"family\": \"acl\", \"size\": {size}, \"samples\": {samples}, \
         \"envs\": {num_envs}, \"trace\": {}, \"reps\": {reps}, \"rule_seed\": 1, \
         \"trace_seed\": 2}},\n",
        trace.len()
    ));
    json.push_str("  \"neurocuts\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"hidden\": {}, \"envs\": {}, \"env_steps\": {}, \"episodes\": {}, \
             \"secs\": {:.4}, \"steps_per_sec\": {:.1}, \"episodes_per_sec\": {:.2}}}{}\n",
            r.hidden,
            r.envs,
            r.env_steps,
            r.episodes,
            r.secs,
            r.steps_per_sec,
            r.episodes_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"baselines\": [\n");
    for (i, r) in base_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algo\": \"{}\", \"secs\": {:.4}, \"builds_per_sec\": {:.1}, \
             \"nodes\": {}, \"max_depth\": {}}}{}\n",
            r.algo,
            r.secs,
            r.builds_per_sec,
            r.nodes,
            r.max_depth,
            if i + 1 < base_rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"verified\": {{\"packets_per_tree\": {}, \"mismatches\": {mismatches}}}\n}}\n",
        trace.len()
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    if mismatches > 0 {
        eprintln!("correctness failure — numbers are not trustworthy");
        std::process::exit(1);
    }
}
