//! Extension experiment (paper §8, "Conclusion"): optimise for the
//! *average* classification time under a specific traffic pattern
//! instead of the worst case.
//!
//! We train two policies on the same classifier — one with the standard
//! worst-case objective, one traffic-aware — and compare both trees'
//! average lookup cost on a held-out trace drawn from the same skewed
//! pattern. The traffic-aware tree should match or beat the worst-case
//! tree on average cost (it concentrates depth where no traffic goes).
//!
//! ```text
//! cargo run --release -p nc-bench --bin ext_traffic
//! ```

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::average_lookup_cost;
use nc_bench::*;
use neurocuts::Trainer;

fn main() {
    let size = suite_size();
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(2));
    // Heavily skewed traffic: most packets hit the top rules.
    let mut trace_cfg = TraceConfig::new(2000).with_seed(5);
    trace_cfg.skew = 2.0;
    trace_cfg.uniform_fraction = 0.02;
    let train_trace = generate_trace(&rules, &trace_cfg);
    let held_out = generate_trace(&rules, &trace_cfg.clone().with_seed(6));

    println!(
        "traffic-aware objective extension on acl3 at {size} rules ({}-packet trace)\n",
        train_trace.len()
    );

    let base_cfg = harness_config().with_coeff(1.0).with_seed(8);

    let mut worst_case = Trainer::new(rules.clone(), base_cfg.clone()).expect("trainable rule set");
    let report = worst_case.train().expect("training makes progress");
    let (wc_tree, wc_stats) = match report.best {
        Some(b) => (b.tree, b.stats),
        None => worst_case.greedy_tree(),
    };

    let mut traffic_aware =
        Trainer::new(rules.clone(), base_cfg).expect("trainable rule set").set_traffic(train_trace);
    let report = traffic_aware.train().expect("training makes progress");
    let (ta_tree, ta_stats) = match report.best {
        Some(b) => (b.tree, b.stats),
        None => traffic_aware.greedy_tree(),
    };

    let wc_avg = average_lookup_cost(&wc_tree, &held_out);
    let ta_avg = average_lookup_cost(&ta_tree, &held_out);
    println!("{:<22} {:>12} {:>16}", "", "worst-case", "avg (held-out)");
    println!("{:<22} {:>12} {:>16.2}", "worst-case objective", wc_stats.time, wc_avg);
    println!("{:<22} {:>12} {:>16.2}", "traffic-aware", ta_stats.time, ta_avg);
    println!(
        "\ntraffic-aware tree is {:.1}% better on average lookup cost",
        improvement(ta_avg, wc_avg) * 100.0
    );
    // Both remain exact classifiers.
    for p in held_out.iter().take(500) {
        assert_eq!(wc_tree.classify(p), rules.classify(p));
        assert_eq!(ta_tree.classify(p), rules.classify(p));
    }
    println!("both trees validated against the ground truth on the held-out trace");
}
