//! Figure 5: visualising the learning process on an FW rule set.
//!
//! The paper shows: (a) a randomly initialised policy generating a
//! huge, poorly shaped tree; learning to reduce depth; converging to a
//! compact tree specialised in SrcIP/SrcPort/DstPort cuts; and (b)
//! HiCuts producing a much deeper, larger tree on the same rules
//! (fw5_1k: depth 29, 15× larger, 3× slower).
//!
//! This binary prints the per-level node histograms (the textual
//! equivalent of the figure) at the start, middle, and end of training,
//! plus the HiCuts comparison.
//!
//! ```text
//! cargo run --release -p nc-bench --bin fig5_learning
//! ```

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig, DIMS};
use dtree::{LevelProfile, TreeStats};
use nc_bench::*;
use neurocuts::{PartitionMode, Trainer};

fn show(tag: &str, profile: &LevelProfile, stats: &TreeStats) {
    println!("--- {tag}: {stats}");
    print!("{}", profile.render_ascii(48));
    let totals = profile.total_cut_dims();
    print!("cut-dimension mix:");
    for (i, dim) in DIMS.iter().enumerate() {
        print!(" {}={}", dim.name(), totals[i]);
    }
    println!("\n");
}

fn main() {
    // fw5_1k analog: the wildcard-heavy family of the paper's figure.
    let size = suite_size();
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, size).with_seed(4)); // fw5
    println!("Figure 5: learning to split fw5 at {size} rules ({} loaded)\n", rules.len());

    let mut cfg =
        harness_config().with_coeff(1.0).with_partition_mode(PartitionMode::Simple).with_seed(5);
    cfg.patience = 0; // run the full budget so snapshots are comparable
    let iters_budget = (cfg.max_timesteps / cfg.timesteps_per_batch).max(2);
    let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");

    // Snapshot 0: a tree from the randomly initialised policy.
    let (tree0, stats0) = trainer.greedy_tree();
    show("random policy (left panel)", &LevelProfile::compute(&tree0), &stats0);

    // Train halfway, snapshot, then finish.
    for _ in 0..iters_budget / 2 {
        let s = trainer.step().expect("training makes progress");
        println!(
            "iter {:>2}: mean return {:>10.2}, best objective {:>8.1}",
            s.iteration, s.mean_return, s.best_objective
        );
    }
    let (tree1, stats1) = trainer.greedy_tree();
    show("\nmid-training (center panel)", &LevelProfile::compute(&tree1), &stats1);

    for _ in iters_budget / 2..iters_budget {
        let s = trainer.step().expect("training makes progress");
        println!(
            "iter {:>2}: mean return {:>10.2}, best objective {:>8.1}",
            s.iteration, s.mean_return, s.best_objective
        );
    }
    let best = trainer.env().best();
    let (tree2, stats2) = trainer.greedy_tree();
    let (final_tree, final_stats) = match &best {
        Some(b) if b.stats.time <= stats2.time => (b.tree.clone(), b.stats),
        _ => (tree2, stats2),
    };
    show("\nconverged policy (right panel)", &LevelProfile::compute(&final_tree), &final_stats);

    // Panel (b): HiCuts on the same rules.
    let hicuts = build_baseline("HiCuts", &rules);
    let hstats = TreeStats::compute(&hicuts);
    show("HiCuts comparison (panel b)", &LevelProfile::compute(&hicuts), &hstats);
    println!(
        "HiCuts is {:.1}x larger and {:.1}x slower than the converged NeuroCuts tree",
        hstats.nodes as f64 / final_stats.nodes.max(1) as f64,
        hstats.time as f64 / final_stats.time.max(1) as f64
    );
    println!("(paper, fw5_1k: 15x larger, 3x slower, depth 29 vs 12)");
}
