//! `bench_lifecycle` — machine-readable churn → retrain → hot-swap
//! benchmark.
//!
//! Exercises the full classifier lifecycle that `bench_updates` stops
//! short of: train an initial classifier, churn its rule set under
//! concurrent readers, let the background [`LifecycleWorker`] notice
//! the accumulated churn, retrain on a frozen snapshot, verify the
//! grafted winner against the linear-scan ground truth, and publish it
//! through one epoch swap — measuring sustained Mpps in every phase.
//! Writes `BENCH_lifecycle.json` so the staleness-recovery trajectory
//! is tracked in CI from PR to PR (the `phases` rows carry `mpps`, so
//! `bench_gate` trips on a sustained-throughput regression in any
//! phase, including *during* the retrain).
//!
//! Correctness gates (exit non-zero, numbers never mask a bug):
//!
//! * every differential check (checkpoints + phase boundaries) must
//!   find the served snapshot bit-identical to a from-scratch
//!   recompile, including probes inside overlay-served inserts;
//! * at least one retrain must be adopted, and every adopted swap must
//!   have run its pre-publish linear-scan spot check;
//! * the auto-retrained depth must be within 10% of a fresh train on
//!   the final rules (the staleness claim this PR exists for), and the
//!   steady-state Mpps within 25% of serving that fresh tree (wider,
//!   because throughput is noisy where depth is deterministic);
//! * the fault-injected recovery mini-cycle (two armed retrain panics
//!   after the gated phases) must heal: both failures isolated and
//!   retried, then a clean adopt. Its `recovery` metrics
//!   (`retrain_failures`, `degraded_phases`, `recovery_ms`) are
//!   emitted for tracking but named outside `bench_gate`'s gated
//!   METRICS — recovery latency is reported, never gated.
//!
//! Scale is controlled by environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_BENCH_SIZE` | rules in the classifier | 300 |
//! | `NC_BENCH_TRACE` | packets in the serving trace | 4096 |
//! | `NC_BENCH_UPDATES` | churn updates before the retrain | 600 |
//! | `NC_BENCH_READERS` | concurrent reader threads | 2 |
//! | `NC_BENCH_TIMESTEPS` | RL timesteps per train | 6000 |
//! | `NC_BENCH_RETRAIN_CHURN` | retrain trigger (fraction) | 0.25 |
//! | `NC_BENCH_OUT` | output path | `BENCH_lifecycle.json` |

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::{
    serve_during, ChurnSchedule, ClassifierHandle, FaultPoint, FaultSchedule, RebuildPolicy,
    TreeStats,
};
use neurocuts::{
    churn_retrain_timeline, retrain_snapshot, LifecycleConfig, LifecycleWorker, NeuroCutsConfig,
    RetrainTrigger, RetryPolicy, TimelineConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Serve `trace` from `readers` threads for `millis` and return Mpps —
/// the same measurement the timeline's quiet phases use.
fn measure_mpps(
    handle: &ClassifierHandle,
    trace: &[classbench::Packet],
    readers: usize,
    millis: u64,
) -> f64 {
    let started = Instant::now();
    let ((), served) = serve_during(handle, trace, readers, || {
        std::thread::sleep(Duration::from_millis(millis));
    });
    served as f64 / started.elapsed().as_secs_f64().max(1e-9) / 1e6
}

fn main() {
    let size = env_usize("NC_BENCH_SIZE", 300);
    let trace_len = env_usize("NC_BENCH_TRACE", 4096);
    let updates = env_usize("NC_BENCH_UPDATES", 600);
    let readers = env_usize("NC_BENCH_READERS", 2).max(1);
    let timesteps = env_usize("NC_BENCH_TIMESTEPS", 6000);
    let retrain_churn = env_f64("NC_BENCH_RETRAIN_CHURN", 0.25);
    let out_path =
        std::env::var("NC_BENCH_OUT").unwrap_or_else(|_| "BENCH_lifecycle.json".to_string());

    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(1));
    let trace = generate_trace(&rules, &TraceConfig::new(trace_len).with_seed(2));
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench_lifecycle: acl/{size} rules, {} packets, {updates} updates, {readers} reader(s), \
         retrain at {:.0}% churn, {timesteps} timesteps/train, {hw_threads} hardware thread(s)",
        trace.len(),
        retrain_churn * 100.0
    );

    let train_cfg = NeuroCutsConfig::small(timesteps).with_seed(4);
    let (tree, initial_stats, _) =
        retrain_snapshot(&rules, &train_cfg, train_cfg.seed).expect("initial training succeeds");
    eprintln!("initial tree: {initial_stats}");
    let handle = ClassifierHandle::new((*tree).clone(), RebuildPolicy::default_policy());

    let mut lc = LifecycleConfig::new(train_cfg.clone());
    lc.trigger =
        RetrainTrigger { min_churn: retrain_churn, min_updates: 32, max_drift: f64::INFINITY };
    let mut worker = LifecycleWorker::new(lc, &handle);
    let tl = TimelineConfig {
        updates,
        readers,
        measure_ms: 400,
        schedule_seed: 3,
        check_every: (updates / 8).max(1),
        faults: None,
    };
    let report = churn_retrain_timeline(&handle, &rules, &trace, &mut worker, &tl);
    let lc_report = worker.into_report();
    let adopted: Vec<_> = lc_report.events.iter().filter(|e| e.adopted).collect();

    // The staleness comparator: train from scratch on the rules the
    // classifier ended up with, using the adopted retrain's own seed —
    // when no updates landed after the swap this must reproduce the
    // served tree exactly (the trainer is deterministic), so the ratio
    // measures precisely the churn the worker did NOT recover from.
    let final_snap = handle.rule_snapshot();
    let fresh_seed = adopted.last().map_or(train_cfg.seed, |e| e.train_seed);
    let (fresh_tree, fresh_stats, _) = retrain_snapshot(final_snap.rules(), &train_cfg, fresh_seed)
        .expect("fresh training on the final rules succeeds");
    let fresh_handle = ClassifierHandle::new((*fresh_tree).clone(), RebuildPolicy::never());
    let fresh_mpps = measure_mpps(&fresh_handle, &trace, readers, tl.measure_ms);
    let served_depth = handle.with_tree(TreeStats::compute).time;
    let steady_mpps = report.phases.last().map_or(0.0, |p| p.mpps);
    let depth_ratio = served_depth as f64 / fresh_stats.time.max(1) as f64;
    let mpps_ratio = steady_mpps / fresh_mpps.max(1e-9);

    // Fault-injected recovery mini-cycle: arm two retrain panics, churn
    // the (already measured) handle past a fresh trigger, and time how
    // long the worker takes to heal — both injected failures retried
    // with backoff, then a clean adopt. Runs after every gated
    // measurement; the recovery numbers are tracked in the JSON but
    // deliberately named outside bench_gate's METRICS so they are
    // reported, not gated.
    let faults = Arc::new(
        FaultSchedule::empty()
            .arm(FaultPoint::RetrainPanic, 0)
            .arm(FaultPoint::RetrainPanic, 1)
            .injector(),
    );
    let mut lc = LifecycleConfig::new(train_cfg.clone());
    lc.trigger = RetrainTrigger { min_churn: 0.05, min_updates: 32, max_drift: f64::INFINITY };
    lc.retry = RetryPolicy {
        max_failures: 3,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        attempt_deadline: Duration::from_secs(120),
    };
    lc.faults = Some(faults.clone());
    let mut recovery_worker = LifecycleWorker::new(lc, &handle);
    let mut recovery_churn = ChurnSchedule::new(rules.rules().to_vec(), Vec::new(), 5);
    for _ in 0..80 {
        recovery_churn.step(&handle);
    }
    let recovery_started = Instant::now();
    let (mut retrain_failures, mut degraded_phases, mut fallback_rebuilds) = (0u64, 0u64, 0u64);
    let mut recovered = false;
    for _ in 0..10_000 {
        if recovery_worker.in_backoff() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let Some(event) = recovery_worker.poll(&handle, &trace) else { break };
        if event.adopted {
            recovered = true;
            break;
        }
        retrain_failures += 1;
        degraded_phases += u64::from(event.degraded);
        fallback_rebuilds += u64::from(event.fallback_rebuild);
    }
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "recovery: {} injected fault(s), {retrain_failures} failed attempt(s), \
         {degraded_phases} degraded phase(s), healed in {recovery_ms:.0}ms (recovered: {recovered})",
        faults.total_fired()
    );

    for p in &report.phases {
        eprintln!(
            "{:<9} {:>6.2}s {:>8.2} Mpps  depth {:>3}  epoch {:>5}  rebuilds {:>3}  retrains \
             {:>2}  overlay {:>4}",
            p.phase, p.secs, p.mpps, p.depth, p.epoch, p.rebuilds, p.retrains, p.overlay
        );
    }
    eprintln!(
        "auto-retrained depth {served_depth} vs fresh depth {} (ratio {depth_ratio:.3}); \
         steady {steady_mpps:.2} Mpps vs fresh {fresh_mpps:.2} Mpps (ratio {mpps_ratio:.3})",
        fresh_stats.time
    );

    // Hand-rolled JSON, matching the other emitters.
    let mut json = String::from("{\n  \"schema\": \"bench_lifecycle/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"family\": \"acl\", \"size\": {size}, \"trace\": {}, \"updates\": \
         {updates}, \"readers\": {readers}, \"timesteps\": {timesteps}, \"retrain_churn\": \
         {retrain_churn}, \"rule_seed\": 1, \"trace_seed\": 2, \"schedule_seed\": 3, \
         \"train_seed\": 4, \"hw_threads\": {hw_threads}}},\n",
        trace.len()
    ));
    json.push_str("  \"phases\": [\n");
    for (i, p) in report.phases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"secs\": {:.3}, \"mpps\": {:.3}, \"updates\": {}, \
             \"epoch\": {}, \"rebuilds\": {}, \"retrains\": {}, \"depth\": {}, \
             \"bytes_per_rule\": {:.1}, \"overlay\": {}}}{}\n",
            p.phase,
            p.secs,
            p.mpps,
            p.updates,
            p.epoch,
            p.rebuilds,
            p.retrains,
            p.depth,
            p.bytes_per_rule,
            p.overlay,
            if i + 1 < report.phases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"retrains\": [\n");
    for (i, e) in lc_report.events.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"train_seed\": {}, \"adopted\": {}, \"churn\": {:.3}, \"timesteps\": {}, \
             \"train_secs\": {:.3}, \"depth_before\": {}, \"depth_after\": {}, \
             \"reconciled_inserts\": {}, \"reconciled_deletes\": {}, \"spot_checked\": {}}}{}\n",
            e.train_seed,
            e.adopted,
            e.churn,
            e.timesteps,
            e.train_secs,
            e.depth_before,
            e.depth_after,
            e.reconciled_inserts,
            e.reconciled_deletes,
            e.spot_checked,
            if i + 1 < lc_report.events.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"recovery\": {{\"injected_faults\": {}, \"retrain_failures\": \
         {retrain_failures}, \"degraded_phases\": {degraded_phases}, \"fallback_rebuilds\": \
         {fallback_rebuilds}, \"recovery_ms\": {recovery_ms:.0}, \"recovered\": {recovered}}},\n",
        faults.total_fired()
    ));
    json.push_str(&format!(
        "  \"verification\": {{\"checks\": {}, \"divergences\": {}, \"adopted\": {}, \
         \"served_depth\": {served_depth}, \"fresh_depth\": {}, \"depth_ratio\": \
         {depth_ratio:.3}, \"steady_mpps\": {steady_mpps:.3}, \"fresh_mpps\": {fresh_mpps:.3}, \
         \"mpps_ratio\": {mpps_ratio:.3}}}\n}}\n",
        report.checks,
        report.divergences,
        adopted.len(),
        fresh_stats.time
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    let mut failures = Vec::new();
    if report.divergences > 0 {
        failures.push(format!("{} differential checks diverged", report.divergences));
    }
    if adopted.is_empty() {
        failures.push("no retrain was adopted".to_string());
    }
    if adopted.iter().any(|e| e.spot_checked == 0) {
        failures.push("an adopted swap skipped its spot check".to_string());
    }
    if !recovered {
        failures.push(format!(
            "the fault-injected worker never recovered ({retrain_failures} failed attempts)"
        ));
    }
    if depth_ratio > 1.10 {
        failures.push(format!(
            "auto-retrained depth {served_depth} is more than 10% worse than the fresh-trained \
             depth {} (ratio {depth_ratio:.3})",
            fresh_stats.time
        ));
    }
    if mpps_ratio < 0.75 {
        failures.push(format!(
            "steady-state {steady_mpps:.2} Mpps fell more than 25% below the fresh-trained \
             {fresh_mpps:.2} Mpps"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
