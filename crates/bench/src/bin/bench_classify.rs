//! `bench_classify` — machine-readable serving-path benchmark.
//!
//! Measures lookup throughput of every serving path (arena tree,
//! scalar compiled `FlatTree`, batched wavefront, sharded multi-core
//! engine) over each baseline algorithm's tree, verifies all paths
//! against the linear-scan ground truth, and writes the numbers as
//! JSON so the perf trajectory of the serving path is tracked in CI
//! from PR to PR.
//!
//! Scale is controlled by environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_BENCH_SIZE` | rules in the classifier | 1000 |
//! | `NC_BENCH_TRACE` | packets in the trace | 4096 |
//! | `NC_BENCH_THREADS` | comma list of engine thread counts | `1,2,4,8` |
//! | `NC_BENCH_ALGOS` | comma list of baselines | all four |
//! | `NC_BENCH_MS` | target measure time per row (ms) | 200 |
//! | `NC_BENCH_OUT` | output path | `BENCH_classify.json` |
//!
//! CI runs it with a tiny config as a smoke check; the defaults are
//! the ACL-1k / 4096-packet configuration of the
//! `classify_throughput` criterion bench.

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::{run_engine, EngineConfig, FlatTree};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One measured row of the report.
struct Row {
    algo: String,
    path: String,
    threads: usize,
    ns_per_packet: f64,
    mpps: f64,
}

/// Time one whole-trace classification pass: the shared adaptive
/// fastest-of-three harness (see [`nc_bench::measure_ns`]).
fn measure<F: FnMut()>(trace_len: usize, target_ms: u64, f: F) -> (f64, f64) {
    nc_bench::measure_ns(trace_len, target_ms, f)
}

fn main() {
    let size = env_usize("NC_BENCH_SIZE", 1000);
    let trace_len = env_usize("NC_BENCH_TRACE", 4096);
    let target_ms = env_usize("NC_BENCH_MS", 200) as u64;
    let out_path =
        std::env::var("NC_BENCH_OUT").unwrap_or_else(|_| "BENCH_classify.json".to_string());
    let threads: Vec<usize> = std::env::var("NC_BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let algos: Vec<String> = match std::env::var("NC_BENCH_ALGOS") {
        Ok(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        Err(_) => nc_bench::BASELINE_NAMES.iter().map(|s| s.to_string()).collect(),
    };

    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(1));
    let trace = generate_trace(&rules, &TraceConfig::new(trace_len).with_seed(2));
    let truth: Vec<_> = trace.iter().map(|p| rules.classify(p)).collect();
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench_classify: acl/{size} rules, {} packets, {hw_threads} hardware thread(s)",
        trace.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;
    for name in &algos {
        let tree = nc_bench::build_baseline(name, &rules);
        let flat = FlatTree::compile(&tree);

        // Correctness gates: every serving path must equal the linear
        // scan before its throughput is worth reporting.
        let mut batch = vec![None; trace.len()];
        flat.classify_batch(&trace, &mut batch);
        for (i, p) in trace.iter().enumerate() {
            let scalar = flat.classify(p);
            if scalar != truth[i] || batch[i] != scalar || tree.classify(p) != truth[i] {
                eprintln!("MISMATCH {name} at {p}");
                failures += 1;
            }
        }

        let (ns, mpps) = measure(trace.len(), target_ms, || {
            for p in &trace {
                std::hint::black_box(tree.classify(p));
            }
        });
        rows.push(Row {
            algo: name.clone(),
            path: "tree".into(),
            threads: 1,
            ns_per_packet: ns,
            mpps,
        });

        let (ns, mpps) = measure(trace.len(), target_ms, || {
            for p in &trace {
                std::hint::black_box(flat.classify(p));
            }
        });
        rows.push(Row {
            algo: name.clone(),
            path: "flat".into(),
            threads: 1,
            ns_per_packet: ns,
            mpps,
        });

        let mut out = vec![None; trace.len()];
        let (ns, mpps) = measure(trace.len(), target_ms, || {
            flat.classify_batch(&trace, &mut out);
            std::hint::black_box(&out);
        });
        rows.push(Row {
            algo: name.clone(),
            path: "flat_batch".into(),
            threads: 1,
            ns_per_packet: ns,
            mpps,
        });

        for &t in &threads {
            // One calibration run sizes the timed pass count.
            let (_, probe) = run_engine(&flat, &trace, EngineConfig::new(t));
            let passes = ((target_ms as f64 / 1e3 * probe.packets_per_sec) / trace.len() as f64)
                .clamp(1.0, 100_000.0) as usize;
            let (engine_out, report) =
                run_engine(&flat, &trace, EngineConfig::new(t).with_passes(passes));
            if engine_out != batch {
                eprintln!("MISMATCH {name} engine({t}) vs batch");
                failures += 1;
            }
            rows.push(Row {
                algo: name.clone(),
                path: "engine".into(),
                threads: t,
                ns_per_packet: 1e9 / report.packets_per_sec,
                mpps: report.packets_per_sec / 1e6,
            });
        }
    }

    for r in &rows {
        eprintln!(
            "{:<10} {:<11} {:>2}t  {:>8.1} ns/pkt  {:>8.2} Mpps",
            r.algo, r.path, r.threads, r.ns_per_packet, r.mpps
        );
    }

    // Hand-rolled JSON: flat structure, no string escapes needed.
    let mut json = String::from("{\n  \"schema\": \"bench_classify/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"family\": \"acl\", \"size\": {size}, \"trace\": {}, \"rule_seed\": 1, \
         \"trace_seed\": 2, \"hw_threads\": {hw_threads}}},\n",
        trace.len()
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algo\": \"{}\", \"path\": \"{}\", \"threads\": {}, \"ns_per_packet\": \
             {:.2}, \"mpps\": {:.3}}}{}\n",
            r.algo,
            r.path,
            r.threads,
            r.ns_per_packet,
            r.mpps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    if failures > 0 {
        eprintln!("{failures} correctness failures — numbers are not trustworthy");
        std::process::exit(1);
    }
}
