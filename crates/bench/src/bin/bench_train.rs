//! `bench_train` — machine-readable training-pipeline benchmark.
//!
//! Measures the actor-learner pipeline end to end and writes
//! `BENCH_train.json` so the training-path trajectory is tracked in CI
//! alongside `BENCH_classify.json` / `BENCH_updates.json`:
//!
//! 1. **Rollout collection throughput** (env-steps/sec) under a frozen
//!    random policy, comparing the legacy *serial* path (one episode at
//!    a time, one scalar network forward per decision) against the
//!    vectorised collector (`neurocuts::VecEnv`: lockstep envs, one
//!    batched matrix-matrix forward per step) at 1 and N workers.
//! 2. **A full training run** (`Trainer`, the vectorised collector +
//!    PPO), reporting steps/sec and the best objective.
//! 3. **The train → compile → serve hand-off**: the trained tree is
//!    compiled to a `FlatTree`, verified packet-for-packet against the
//!    linear-scan ground truth (any mismatch exits non-zero — the
//!    numbers must never outlive correctness), and pushed through the
//!    sharded serving engine for an end-to-end Mpps figure.
//! 4. **Quality vs hand-tuned baselines**: depth/time, nodes, and
//!    bytes-per-rule against HiCuts and EffiCuts on the same rules.
//!
//! Scale is controlled by environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_BENCH_SIZE` | rules in the classifier | 300 |
//! | `NC_BENCH_TIMESTEPS` | RL timesteps for the training run | 6000 |
//! | `NC_BENCH_SAMPLES` | env-steps per collection measurement | 4000 |
//! | `NC_BENCH_ENVS` | lockstep environments in the collector | 8 |
//! | `NC_BENCH_WORKERS` | worker threads for the parallel row | hw threads |
//! | `NC_BENCH_HIDDEN` | policy hidden width for the collection rows | 512 |
//! | `NC_BENCH_TRACE` | packets for serve verification | 4096 |
//! | `NC_BENCH_OUT` | output path | `BENCH_train.json` |
//!
//! The collection rows default to the paper's production model width
//! (`[512, 512]`, Table 1) rather than the quick `small()` training
//! config: batching policy inference pays off in proportion to the
//! network width (each weight matrix is streamed once per *batch*
//! instead of once per observation, and on multi-core hosts the
//! lockstep rounds split across workers). `NC_BENCH_HIDDEN=64` shows
//! the opposite regime, where the env-side tree mutation dominates and
//! interleaving N tree arenas on one core can cost up to ~10% — the
//! single-core floor, not the scaling ceiling.

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::{run_engine, EngineConfig, FlatTree, TreeStats};
use neurocuts::{NeuroCutsConfig, NeuroCutsEnv, Trainer, VecEnv};
use nn::{NetConfig, PolicyValueNet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rl::collect_parallel;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One measured collection row.
struct CollectRow {
    path: &'static str,
    envs: usize,
    workers: usize,
    env_steps: usize,
    secs: f64,
    steps_per_sec: f64,
}

/// Best-of-`reps` measurement of one collection mode (the box the
/// benchmark runs on is noisy; the fastest rep is the best estimator
/// of the code's actual cost).
fn measure_collect(reps: usize, mut run: impl FnMut() -> usize) -> (usize, f64, f64) {
    let mut best: Option<(usize, f64)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let steps = run();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if best.is_none_or(|(s, t)| steps as f64 / secs > s as f64 / t) {
            best = Some((steps, secs));
        }
    }
    let (steps, secs) = best.expect("at least one rep");
    (steps, secs, steps as f64 / secs)
}

fn tree_row(algo: &str, stats: &TreeStats) -> String {
    format!(
        "{{\"algo\": \"{algo}\", \"time\": {}, \"max_depth\": {}, \"nodes\": {}, \
         \"bytes\": {}, \"bytes_per_rule\": {:.1}}}",
        stats.time, stats.max_depth, stats.nodes, stats.bytes, stats.bytes_per_rule
    )
}

fn main() {
    let size = env_usize("NC_BENCH_SIZE", 300);
    let timesteps = env_usize("NC_BENCH_TIMESTEPS", 6000);
    let samples = env_usize("NC_BENCH_SAMPLES", 4000);
    let num_envs = env_usize("NC_BENCH_ENVS", 8).max(1);
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = env_usize("NC_BENCH_WORKERS", hw_threads).max(1);
    let hidden = env_usize("NC_BENCH_HIDDEN", 512);
    let trace_len = env_usize("NC_BENCH_TRACE", 4096);
    let out_path = std::env::var("NC_BENCH_OUT").unwrap_or_else(|_| "BENCH_train.json".to_string());

    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(1));
    let trace = generate_trace(&rules, &TraceConfig::new(trace_len).with_seed(2));
    eprintln!(
        "bench_train: acl/{size} rules, {samples} steps/collection ([{hidden}, {hidden}] \
         policy), {num_envs} envs, {workers} workers, {timesteps} train timesteps, \
         {hw_threads} hardware thread(s)"
    );

    // Collection throughput under a frozen random policy. The policy
    // size matches the training config below so the comparison is the
    // one the trainer actually experiences.
    let cfg = NeuroCutsConfig::small(timesteps.max(1000));
    let env = NeuroCutsEnv::new(rules.clone(), cfg.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let net = PolicyValueNet::new(
        NetConfig {
            obs_dim: env.encoder.obs_dim(),
            dim_actions: env.action_space.dim_actions(),
            num_actions: env.action_space.num_actions(),
            hidden: [hidden, hidden],
        },
        &mut rng,
    );

    let mut rows: Vec<CollectRow> = Vec::new();
    {
        let env = env.clone();
        let (steps, secs, sps) = measure_collect(3, || {
            env.reset_best();
            collect_parallel(&env, &net, samples, 1, 10).len()
        });
        rows.push(CollectRow {
            path: "serial",
            envs: 1,
            workers: 1,
            env_steps: steps,
            secs,
            steps_per_sec: sps,
        });
    }
    for w in [1, workers] {
        let env = env.clone();
        let (steps, secs, sps) = measure_collect(3, || {
            env.reset_best();
            VecEnv::new(env.clone(), num_envs, 10).collect(&net, samples, w).len()
        });
        rows.push(CollectRow {
            path: "vecenv",
            envs: num_envs,
            workers: w,
            env_steps: steps,
            secs,
            steps_per_sec: sps,
        });
        if workers == 1 {
            break; // one hardware thread: the two rows would be identical
        }
    }
    for r in &rows {
        eprintln!(
            "{:<8} envs {:>2}  workers {:>2}  {:>7} steps in {:>6.2}s  {:>9.0} steps/s",
            r.path, r.envs, r.workers, r.env_steps, r.secs, r.steps_per_sec
        );
    }
    let serial_sps = rows[0].steps_per_sec;
    let best_parallel_sps = rows[1..].iter().map(|r| r.steps_per_sec).fold(0.0f64, f64::max);
    eprintln!(
        "vectorised/serial collection speedup: {:.2}x",
        best_parallel_sps / serial_sps.max(1e-9)
    );

    // Full training run: the production path (vecenv + PPO).
    let mut train_cfg = cfg.clone();
    train_cfg.num_envs = num_envs;
    train_cfg.workers = workers;
    let mut trainer = Trainer::new(rules.clone(), train_cfg).expect("trainable rule set");
    let train_start = Instant::now();
    let report = trainer.train().expect("training makes progress");
    let train_secs = train_start.elapsed().as_secs_f64().max(1e-9);
    let train_sps = report.timesteps as f64 / train_secs;
    let (tree, stats) = match report.best {
        Some(b) => (b.tree, b.stats),
        None => trainer.greedy_tree(),
    };
    let best_objective = report.history.last().map_or(f64::INFINITY, |h| h.best_objective);
    eprintln!(
        "trained {} steps in {:.2}s ({:.0} steps/s, {} iterations), best tree: {stats}",
        report.timesteps,
        train_secs,
        train_sps,
        report.history.len()
    );

    // Train → compile → serve: verify, then measure the engine.
    let flat = FlatTree::compile(&tree);
    let mut mismatches = 0usize;
    for p in &trace {
        let got = flat.classify_checked(&tree, p).expect("fresh compile is never stale");
        if got != rules.classify(p) {
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("MISMATCH: trained tree diverged from the linear scan on {mismatches} packets");
    } else {
        eprintln!("trained tree verified against the linear scan on {} packets", trace.len());
    }
    let (_, engine) = run_engine(&flat, &trace, EngineConfig::new(hw_threads).with_passes(8));
    eprintln!(
        "serving engine {:>2}t  {:>10.0} pkts/s ({:.2} Mpps)",
        engine.threads,
        engine.packets_per_sec,
        engine.packets_per_sec / 1e6
    );

    // Quality vs the hand-tuned baselines on the same rules.
    let hicuts = TreeStats::compute(&nc_bench::build_baseline("HiCuts", &rules));
    let efficuts = TreeStats::compute(&nc_bench::build_baseline("EffiCuts", &rules));
    eprintln!(
        "NeuroCuts depth {} vs HiCuts {} / EffiCuts {}",
        stats.max_depth, hicuts.max_depth, efficuts.max_depth
    );

    // Hand-rolled JSON: flat structure, no string escapes needed.
    let mut json = String::from("{\n  \"schema\": \"bench_train/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"family\": \"acl\", \"size\": {size}, \"samples\": {samples}, \
         \"envs\": {num_envs}, \"workers\": {workers}, \"timesteps\": {timesteps}, \
         \"trace\": {}, \"hw_threads\": {hw_threads}, \"rule_seed\": 1, \"trace_seed\": 2}},\n",
        trace.len()
    ));
    json.push_str("  \"collect\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"envs\": {}, \"workers\": {}, \"env_steps\": {}, \
             \"secs\": {:.4}, \"steps_per_sec\": {:.1}}}{}\n",
            r.path,
            r.envs,
            r.workers,
            r.env_steps,
            r.secs,
            r.steps_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"collect_speedup\": {:.3},\n",
        best_parallel_sps / serial_sps.max(1e-9)
    ));
    json.push_str(&format!(
        "  \"train\": {{\"timesteps\": {}, \"iterations\": {}, \"secs\": {:.3}, \
         \"steps_per_sec\": {:.1}, \"best_objective\": {:.3}}},\n",
        report.timesteps,
        report.history.len(),
        train_secs,
        train_sps,
        if best_objective.is_finite() { best_objective } else { -1.0 }
    ));
    json.push_str(&format!(
        "  \"serve\": {{\"verified_packets\": {}, \"mismatches\": {mismatches}, \
         \"engine_threads\": {}, \"engine_pkts_per_sec\": {:.0}}},\n",
        trace.len(),
        engine.threads,
        engine.packets_per_sec
    ));
    json.push_str(&format!(
        "  \"trees\": [\n    {},\n    {},\n    {}\n  ]\n}}\n",
        tree_row("NeuroCuts", &stats),
        tree_row("HiCuts", &hicuts),
        tree_row("EffiCuts", &efficuts)
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    if mismatches > 0 {
        eprintln!("correctness failure — numbers are not trustworthy");
        std::process::exit(1);
    }
}
