//! Figure 9: memory footprint (bytes per rule) for the baselines and
//! space-optimised NeuroCuts across the ClassBench suite.
//!
//! Paper results to reproduce (§6.2): NeuroCuts far below HiCuts and
//! HyperCuts, a 40% median improvement over EffiCuts, but typically
//! *above* CutSplit (26% higher median).
//!
//! ```text
//! cargo run --release -p nc-bench --bin fig9_space
//! ```

use dtree::TreeStats;
use nc_bench::*;
use neurocuts::PartitionMode;

fn main() {
    let suite = suite();
    println!(
        "Figure 9: memory footprint (bytes/rule), {} rules/classifier, {} RL timesteps\n",
        suite_size(),
        train_timesteps()
    );
    print_row(
        "classifier",
        &BASELINE_NAMES
            .iter()
            .map(|s| s.to_string())
            .chain(["NeuroCuts".to_string()])
            .collect::<Vec<_>>(),
    );

    let mut baseline_space: Vec<Vec<f64>> = vec![Vec::new(); BASELINE_NAMES.len()];
    let mut neuro_space: Vec<f64> = Vec::new();

    for entry in &suite {
        let mut cells = Vec::new();
        for (i, name) in BASELINE_NAMES.iter().enumerate() {
            let s = TreeStats::compute(&build_baseline(name, &entry.rules)).bytes_per_rule;
            baseline_space[i].push(s);
            cells.push(format!("{s:.1}"));
        }
        // Space-optimised NeuroCuts: c = 0 with the EffiCuts partition
        // action (the paper's space-optimised runs use the partitioners).
        let cfg = harness_config()
            .with_coeff(0.0)
            .with_partition_mode(PartitionMode::EffiCuts)
            .with_seed(2);
        let result = run_neurocuts(&entry.rules, cfg);
        neuro_space.push(result.stats.bytes_per_rule);
        cells.push(format!("{:.1}", result.stats.bytes_per_rule));
        print_row(&entry.label, &cells);
    }

    println!("\n--- medians ---");
    for (i, name) in BASELINE_NAMES.iter().enumerate() {
        let med_imp = median(
            &neuro_space
                .iter()
                .zip(&baseline_space[i])
                .map(|(&n, &b)| improvement(n, b))
                .collect::<Vec<_>>(),
        );
        println!("NeuroCuts vs {name:<10} median space improvement: {:>7.1}%", med_imp * 100.0);
    }
    println!(
        "\npaper shape: >>0% vs HiCuts/HyperCuts, ~40% vs EffiCuts, negative vs CutSplit (-26%)"
    );
}
