//! `bench_updates` — machine-readable live-update benchmark.
//!
//! Measures the update-under-load path: a [`ClassifierHandle`] serving
//! a synthetic trace from epoch-swapped snapshots across reader
//! threads while a seeded insert/delete churn schedule is replayed
//! against it. Reports updates/sec applied and the packet throughput
//! the readers sustained *during* churn, per baseline algorithm, and
//! writes `BENCH_updates.json` so the live-update trajectory is
//! tracked in CI from PR to PR.
//!
//! Correctness is gated like `bench_classify`: at checkpoints and at
//! the end, the served snapshot must be **bit-identical** to a
//! from-scratch `FlatTree::compile` of the handle's updated tree; any
//! divergence exits non-zero so the numbers can never mask a stale
//! snapshot.
//!
//! Scale is controlled by environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_BENCH_SIZE` | rules in the classifier | 1000 |
//! | `NC_BENCH_TRACE` | packets in the serving trace | 4096 |
//! | `NC_BENCH_UPDATES` | insert/delete updates replayed | 2000 |
//! | `NC_BENCH_READERS` | concurrent reader threads | 2 |
//! | `NC_BENCH_CHURN` | rebuild threshold (fraction) | 0.10 |
//! | `NC_BENCH_ALGOS` | comma list of baselines | all four |
//! | `NC_BENCH_OUT` | output path | `BENCH_updates.json` |

use classbench::{generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig};
use dtree::{
    find_rebuild_divergence, serve_during, ChurnSchedule, ClassifierHandle, RebuildPolicy,
};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One measured row of the report.
struct Row {
    algo: String,
    updates: usize,
    updates_per_sec: f64,
    readers: usize,
    sustained_mpps: f64,
    rebuilds: u64,
    epoch: u64,
    checkpoints: usize,
}

fn main() {
    let size = env_usize("NC_BENCH_SIZE", 1000);
    let trace_len = env_usize("NC_BENCH_TRACE", 4096);
    let updates = env_usize("NC_BENCH_UPDATES", 2000);
    let readers = env_usize("NC_BENCH_READERS", 2).max(1);
    let max_churn = env_f64("NC_BENCH_CHURN", 0.10);
    let out_path =
        std::env::var("NC_BENCH_OUT").unwrap_or_else(|_| "BENCH_updates.json".to_string());
    let algos: Vec<String> = match std::env::var("NC_BENCH_ALGOS") {
        Ok(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        Err(_) => nc_bench::BASELINE_NAMES.iter().map(|s| s.to_string()).collect(),
    };

    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(1));
    let trace = generate_trace(&rules, &TraceConfig::new(trace_len).with_seed(2));
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench_updates: acl/{size} rules, {} packets, {updates} updates, {readers} reader(s), \
         rebuild at {:.0}% churn, {hw_threads} hardware thread(s)",
        trace.len(),
        max_churn * 100.0
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;
    for name in &algos {
        let tree = nc_bench::build_baseline(name, &rules);
        let policy = RebuildPolicy { max_churn, min_updates: 8, max_overlay: 256 };
        let handle = ClassifierHandle::new(tree, policy);

        let mut schedule =
            ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 3);
        let checkpoint_every = (updates / 8).max(1);

        let wall_start = Instant::now();
        let ((update_secs, checkpoints, checkpoint_failures), served) =
            serve_during(&handle, &trace, readers, || {
                // Updates/sec excludes the checkpoint verifications
                // (they are harness work, not update-path work); the
                // sustained Mpps uses the full wall clock since the
                // readers never stop.
                let mut update_secs = 0.0f64;
                let mut checkpoints = 0usize;
                let mut checkpoint_failures = 0usize;
                let mut seg_start = Instant::now();
                for i in 0..updates {
                    schedule.step(&handle);
                    if (i + 1).is_multiple_of(checkpoint_every) || i + 1 == updates {
                        update_secs += seg_start.elapsed().as_secs_f64();
                        checkpoints += 1;
                        if let Some(p) = find_rebuild_divergence(&handle, &trace) {
                            eprintln!("MISMATCH {name} snapshot vs rebuild at {p}");
                            checkpoint_failures += 1;
                        }
                        seg_start = Instant::now();
                    }
                }
                (update_secs, checkpoints, checkpoint_failures)
            });
        let churn_secs = wall_start.elapsed().as_secs_f64();

        failures += checkpoint_failures;
        let applied_per_sec = updates as f64 / update_secs.max(1e-9);
        let stats = handle.stats();
        let sustained_mpps = served as f64 / churn_secs.max(1e-9) / 1e6;
        rows.push(Row {
            algo: name.clone(),
            updates,
            updates_per_sec: applied_per_sec,
            readers,
            sustained_mpps,
            rebuilds: stats.rebuilds,
            epoch: stats.epoch,
            checkpoints,
        });
    }

    for r in &rows {
        eprintln!(
            "{:<10} {:>6} updates  {:>9.0} upd/s  {:>7.2} Mpps sustained ({} readers)  \
             {:>2} rebuilds  {} checkpoints",
            r.algo,
            r.updates,
            r.updates_per_sec,
            r.sustained_mpps,
            r.readers,
            r.rebuilds,
            r.checkpoints
        );
    }

    // Hand-rolled JSON: flat structure, no string escapes needed.
    let mut json = String::from("{\n  \"schema\": \"bench_updates/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"family\": \"acl\", \"size\": {size}, \"trace\": {}, \"updates\": \
         {updates}, \"readers\": {readers}, \"max_churn\": {max_churn}, \"rule_seed\": 1, \
         \"trace_seed\": 2, \"schedule_seed\": 3, \"hw_threads\": {hw_threads}}},\n",
        trace.len()
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algo\": \"{}\", \"updates\": {}, \"updates_per_sec\": {:.1}, \"readers\": \
             {}, \"sustained_mpps\": {:.3}, \"rebuilds\": {}, \"epoch\": {}, \"checkpoints\": \
             {}}}{}\n",
            r.algo,
            r.updates,
            r.updates_per_sec,
            r.readers,
            r.sustained_mpps,
            r.rebuilds,
            r.epoch,
            r.checkpoints,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    if failures > 0 {
        eprintln!("{failures} correctness failures — numbers are not trustworthy");
        std::process::exit(1);
    }
}
