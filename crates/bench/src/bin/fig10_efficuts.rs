//! Figure 10: NeuroCuts restricted to the EffiCuts partition action vs
//! EffiCuts itself — sorted rankings of space and time improvement
//! across the suite.
//!
//! Paper results to reproduce (§6.3): with the EffiCuts partitioner,
//! NeuroCuts gives a ~29% median space improvement over EffiCuts at
//! about the same classification time, doing as well or better on all
//! 36 rule sets for space.
//!
//! ```text
//! cargo run --release -p nc-bench --bin fig10_efficuts
//! ```

use dtree::TreeStats;
use nc_bench::*;
use neurocuts::PartitionMode;

fn main() {
    let suite = suite();
    println!(
        "Figure 10: NeuroCuts (EffiCuts partitioner) vs EffiCuts, {} rules/classifier\n",
        suite_size()
    );

    let mut space_improvements: Vec<(String, f64)> = Vec::new();
    let mut time_improvements: Vec<(String, f64)> = Vec::new();

    for entry in &suite {
        let efficuts = TreeStats::compute(&build_baseline("EffiCuts", &entry.rules));
        // Space-focused objective with the EffiCuts partition action
        // only (the figure's headline claim is the space improvement,
        // with time "about the same").
        let cfg = harness_config()
            .with_coeff(0.0)
            .with_partition_mode(PartitionMode::EffiCuts)
            .with_seed(3);
        let result = run_neurocuts(&entry.rules, cfg);
        space_improvements.push((
            entry.label.clone(),
            improvement(result.stats.bytes_per_rule, efficuts.bytes_per_rule),
        ));
        time_improvements.push((
            entry.label.clone(),
            improvement(result.stats.time as f64, efficuts.time as f64),
        ));
    }

    // Figure 10a: sorted space-improvement ranking.
    space_improvements.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("(a) space improvement (1 - NeuroCuts/EffiCuts), sorted:");
    for (label, imp) in &space_improvements {
        println!("  {label:<12} {:>7.1}%  {}", imp * 100.0, bar(*imp));
    }
    let med_space = median(&space_improvements.iter().map(|x| x.1).collect::<Vec<_>>());
    println!("  median: {:.1}% (paper: 29%)\n", med_space * 100.0);

    // Figure 10b: sorted time-improvement ranking.
    time_improvements.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("(b) time improvement, sorted:");
    for (label, imp) in &time_improvements {
        println!("  {label:<12} {:>7.1}%  {}", imp * 100.0, bar(*imp));
    }
    let med_time = median(&time_improvements.iter().map(|x| x.1).collect::<Vec<_>>());
    println!("  median: {:.1}% (paper: ~0%, 'about the same')", med_time * 100.0);
}

fn bar(imp: f64) -> String {
    let n = (imp.abs() * 40.0).round() as usize;
    let ch = if imp >= 0.0 { '+' } else { '-' };
    std::iter::repeat_n(ch, n.min(60)).collect()
}
