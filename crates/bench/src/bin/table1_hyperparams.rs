//! Table 1: the NeuroCuts hyperparameters, as encoded by
//! `NeuroCutsConfig::paper_default()` — a self-check that the defaults
//! in code are the defaults in the paper.
//!
//! ```text
//! cargo run -p nc-bench --bin table1_hyperparams
//! ```

use neurocuts::NeuroCutsConfig;

fn main() {
    let cfg = NeuroCutsConfig::paper_default();
    println!("Table 1: NeuroCuts hyperparameters (paper_default)\n");
    let rows: Vec<(&str, String)> = vec![
        ("Time-space coefficient c", format!("{} (set by user)", cfg.time_space_coeff)),
        (
            "Top-node partitioning",
            format!("{:?} (swept: none/simple/EffiCuts)", cfg.partition_mode),
        ),
        ("Reward scaling f", format!("{:?} (swept: x / log x)", cfg.reward_scaling)),
        (
            "Max timesteps per rollout",
            format!("{} (swept: 1000/5000/15000)", cfg.max_timesteps_per_rollout),
        ),
        ("Max tree depth", format!("{} (swept: 100/500)", cfg.max_tree_depth)),
        ("Max timesteps to train", cfg.max_timesteps.to_string()),
        ("Max timesteps per batch", cfg.timesteps_per_batch.to_string()),
        ("Model type", "fully-connected".to_string()),
        ("Model nonlinearity", "tanh".to_string()),
        ("Model hidden layers", format!("{:?}", cfg.hidden)),
        ("Weight sharing theta/theta_v", "true (shared trunk)".to_string()),
        ("Learning rate", format!("{}", cfg.ppo.adam.lr)),
        ("Discount factor gamma", "1.0 (1-step decisions)".to_string()),
        ("PPO entropy coefficient", format!("{}", cfg.ppo.entropy_coeff)),
        ("PPO clip param", format!("{}", cfg.ppo.clip)),
        ("PPO VF clip param", format!("{}", cfg.ppo.vf_clip)),
        ("PPO KL target", format!("{}", cfg.ppo.kl_target)),
        ("SGD iterations per batch", cfg.ppo.sgd_iters.to_string()),
        ("SGD minibatch size", cfg.ppo.minibatch.to_string()),
    ];
    for (k, v) in rows {
        println!("  {k:<30} {v}");
    }
}
