//! `bench_sweep` — the scenario-matrix emitter: every ClassBench
//! family × ruleset size × generator seed × traffic skew × algorithm,
//! one consolidated JSON, every cell verified.
//!
//! The figure binaries each reproduce one hand-picked slice of the
//! paper's evaluation; this emitter runs the full matrix through the
//! unified [`Classifier`] trait (NeuroCuts plus all five baselines)
//! the way artifact-grade evaluations do: one harness, one output,
//! nothing unverified. Per cell it records flat-batch throughput
//! (Mpps), worst-case depth, bytes/rule, compiled footprint, and
//! build time, and — before any number is written — checks **every
//! sampled packet** of the cell's trace against the rule set's linear
//! scan through both the scalar and the batched path. Any mismatch
//! anywhere exits non-zero: the matrix can never outlive correctness.
//!
//! Scale is controlled by environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_FAMILIES` | comma list of `acl,fw,ipc` | all three |
//! | `NC_SIZES` | comma list of rules-per-classifier | `300,1000,10000` |
//! | `NC_SEEDS` | comma list of generator seeds | `0,1` |
//! | `NC_SKEWS` | comma list of traffic skews (`uniform`, `zipf[:EXP]`, `locality[:SETxBURST]`) | `uniform,zipf,locality` |
//! | `NC_SWEEP_ALGOS` | comma list of algorithms | all six |
//! | `NC_TIMESTEPS` | RL timesteps per NeuroCuts cell | 2000 |
//! | `NC_BENCH_TRACE` | packets per cell (verified + measured) | 2048 |
//! | `NC_BENCH_MS` | target measure time per cell (ms) | 80 |
//! | `NC_BENCH_OUT` | output path | `BENCH_sweep.json` |
//!
//! Classifiers are built once per (family, size, seed) rule set and
//! re-measured under every skew, so the traffic axis isolates the
//! trace distribution rather than rebuild noise. The JSON carries a
//! `cells` array (one row per matrix cell) and a `summary` array
//! (median flat-batch Mpps per family × algorithm) that CI's
//! `bench_gate` gates against the committed smoke baseline.

use baselines::Classifier;
use classbench::{
    generate_rules, generate_skewed_trace, trace_hash, ClassifierFamily, GeneratorConfig, Packet,
    RuleSet, SkewedTraceConfig, TrafficSkew,
};
use neurocuts::NeuroCutsConfig;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_list(name: &str, default: &str) -> Vec<String> {
    let raw = std::env::var(name).unwrap_or_else(|_| default.to_string());
    raw.split(',').map(|t| t.trim().to_string()).filter(|t| !t.is_empty()).collect()
}

/// One verified + measured matrix cell.
struct Cell {
    family: &'static str,
    size: usize,
    seed: u64,
    skew: String,
    algo: String,
    mpps: f64,
    ns_per_packet: f64,
    depth: usize,
    max_depth: usize,
    nodes: usize,
    bytes_per_rule: f64,
    resident_bytes: usize,
    build_secs: f64,
    trace_hash: u64,
    mismatches: usize,
}

/// Verify one classifier against the linear scan over `trace` through
/// both lookup paths; returns the number of mismatching packets.
fn verify_cell(c: &dyn Classifier, rules: &RuleSet, trace: &[Packet]) -> usize {
    let truth: Vec<Option<usize>> = trace.iter().map(|p| rules.classify(p)).collect();
    let mut batch = vec![None; trace.len()];
    c.classify_batch(trace, &mut batch);
    let mut bad = 0usize;
    for (i, p) in trace.iter().enumerate() {
        let scalar = c.classify(p);
        if scalar != truth[i] || batch[i] != truth[i] {
            if bad < 5 {
                eprintln!(
                    "MISMATCH {}: scalar {scalar:?} batch {:?} truth {:?} at {p}",
                    c.name(),
                    batch[i],
                    truth[i]
                );
            }
            bad += 1;
        }
    }
    bad
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are algorithm names / family tags / skew
    // tags from fixed vocabularies; assert rather than escape.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || ":._-".contains(c)), "{s:?}");
    s
}

fn main() {
    let families: Vec<ClassifierFamily> = env_list("NC_FAMILIES", "acl,fw,ipc")
        .iter()
        .map(|t| {
            ClassifierFamily::ALL
                .into_iter()
                .find(|f| f.tag() == t.as_str())
                .unwrap_or_else(|| panic!("unknown family {t}"))
        })
        .collect();
    let sizes: Vec<usize> = env_list("NC_SIZES", "300,1000,10000")
        .iter()
        .map(|t| t.parse().unwrap_or_else(|_| panic!("bad size {t}")))
        .collect();
    let seeds: Vec<u64> = env_list("NC_SEEDS", "0,1")
        .iter()
        .map(|t| t.parse().unwrap_or_else(|_| panic!("bad seed {t}")))
        .collect();
    let skew_tags = env_list("NC_SKEWS", "uniform,zipf,locality");
    let skews: Vec<(String, TrafficSkew)> = skew_tags
        .iter()
        .map(|t| (t.clone(), TrafficSkew::parse(t).unwrap_or_else(|| panic!("unknown skew {t}"))))
        .collect();
    let algos = env_list("NC_SWEEP_ALGOS", &nc_bench::CLASSIFIER_NAMES.join(","));
    let timesteps = env_usize("NC_TIMESTEPS", 2000);
    let trace_len = env_usize("NC_BENCH_TRACE", 2048);
    let target_ms = env_usize("NC_BENCH_MS", 80) as u64;
    let out_path = std::env::var("NC_BENCH_OUT").unwrap_or_else(|_| "BENCH_sweep.json".to_string());

    let total_cells = families.len() * sizes.len() * seeds.len() * skews.len() * algos.len();
    eprintln!(
        "bench_sweep: {} families x {} sizes x {} seeds x {} skews x {} algorithms = {} cells, \
         {trace_len} packets/cell",
        families.len(),
        sizes.len(),
        seeds.len(),
        skews.len(),
        algos.len(),
        total_cells
    );

    let mut cells: Vec<Cell> = Vec::with_capacity(total_cells);
    let mut mismatches = 0usize;
    for &family in &families {
        for &size in &sizes {
            for &seed in &seeds {
                let cfg = GeneratorConfig::new(family, size).with_seed(seed);
                let rules = generate_rules(&cfg);
                eprintln!("== {} ({} rules, seed {seed})", cfg.label(), rules.len());

                // Build each classifier once per rule set; NeuroCuts
                // trains under the env-scaled budget with the cell's
                // seed, so every cell is reproducible from its row.
                let nc_cfg = NeuroCutsConfig::small(timesteps).with_seed(seed);
                let classifiers: Vec<Box<dyn Classifier>> =
                    algos.iter().map(|a| nc_bench::build_classifier(a, &rules, &nc_cfg)).collect();
                for c in &classifiers {
                    let s = c.stats();
                    eprintln!(
                        "   built {:<10} in {:>7.3}s  depth {:>3}  bytes/rule {:>9.1}  nodes {:>7}",
                        c.name(),
                        s.build_secs,
                        s.depth(),
                        s.tree.bytes_per_rule,
                        s.tree.nodes
                    );
                }

                for (tag, skew) in &skews {
                    // The trace seed folds in the generator seed but
                    // not the skew: the *same* seed under different
                    // skews isolates the distribution change.
                    let tcfg = SkewedTraceConfig::new(trace_len, *skew).with_seed(seed ^ 0x5eed);
                    let trace = generate_skewed_trace(&rules, &tcfg);
                    let thash = trace_hash(&trace);
                    for c in &classifiers {
                        let bad = verify_cell(c.as_ref(), &rules, &trace);
                        mismatches += bad;
                        let mut out = vec![None; trace.len()];
                        let (ns, mpps) = nc_bench::measure_ns(trace.len(), target_ms, || {
                            c.classify_batch(&trace, &mut out);
                            std::hint::black_box(&out);
                        });
                        let s = c.stats();
                        eprintln!(
                            "   {:<10} {tag:<10} {mpps:>8.2} Mpps  ({ns:>7.1} ns/pkt)  {}",
                            c.name(),
                            if bad == 0 { "verified" } else { "MISMATCH" }
                        );
                        cells.push(Cell {
                            family: family.tag(),
                            size,
                            seed,
                            skew: tag.clone(),
                            algo: c.name().to_string(),
                            mpps,
                            ns_per_packet: ns,
                            depth: s.depth(),
                            max_depth: s.tree.max_depth,
                            nodes: s.tree.nodes,
                            bytes_per_rule: s.tree.bytes_per_rule,
                            resident_bytes: s.resident_bytes,
                            build_secs: s.build_secs,
                            trace_hash: thash,
                            mismatches: bad,
                        });
                    }
                }
            }
        }
    }

    // Per-family x algorithm flat-batch summary (median over cells) —
    // the rows CI's bench_gate tracks, plus a printed tradeoff table.
    struct Summary {
        family: &'static str,
        algo: String,
        cells: usize,
        mpps: f64,
        depth: f64,
        bytes_per_rule: f64,
        build_secs: f64,
    }
    let mut summaries: Vec<Summary> = Vec::new();
    for &family in &families {
        for algo in &algos {
            let sel: Vec<&Cell> =
                cells.iter().filter(|c| c.family == family.tag() && &c.algo == algo).collect();
            if sel.is_empty() {
                continue;
            }
            let med = |f: &dyn Fn(&Cell) -> f64| {
                nc_bench::median(&sel.iter().map(|c| f(c)).collect::<Vec<f64>>())
            };
            summaries.push(Summary {
                family: family.tag(),
                algo: algo.clone(),
                cells: sel.len(),
                mpps: med(&|c| c.mpps),
                depth: med(&|c| c.depth as f64),
                bytes_per_rule: med(&|c| c.bytes_per_rule),
                build_secs: med(&|c| c.build_secs),
            });
        }
    }
    eprintln!("\ntradeoff summary (median over cells, flat-batch path):");
    eprintln!(
        "{:<6} {:<10} {:>6} {:>10} {:>8} {:>12} {:>10}",
        "family", "algo", "cells", "Mpps", "depth", "bytes/rule", "build s"
    );
    for s in &summaries {
        eprintln!(
            "{:<6} {:<10} {:>6} {:>10.2} {:>8.1} {:>12.1} {:>10.3}",
            s.family, s.algo, s.cells, s.mpps, s.depth, s.bytes_per_rule, s.build_secs
        );
    }

    if mismatches > 0 {
        eprintln!("\nMISMATCH: {mismatches} packets diverged from the linear-scan ground truth");
    } else {
        eprintln!(
            "\nall {} cells verified against the linear scan ({trace_len} packets each)",
            cells.len()
        );
    }

    // Hand-rolled JSON; strings come from fixed vocabularies (asserted
    // escape-free), so no escaping machinery is needed.
    let list = |v: &[String]| v.join(",");
    let mut json = String::from("{\n  \"schema\": \"bench_sweep/v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"families\": \"{}\", \"sizes\": \"{}\", \"seeds\": \"{}\", \
         \"skews\": \"{}\", \"algos\": \"{}\", \"timesteps\": {timesteps}, \
         \"trace\": {trace_len}, \"ms\": {target_ms}}},\n",
        families.iter().map(|f| f.tag().to_string()).collect::<Vec<_>>().join(","),
        sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","),
        seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","),
        list(&skew_tags),
        list(&algos),
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"size\": {}, \"seed\": {}, \"skew\": \"{}\", \
             \"algo\": \"{}\", \"mpps\": {:.3}, \"ns_per_packet\": {:.2}, \"depth\": {}, \
             \"max_depth\": {}, \"nodes\": {}, \"bytes_per_rule\": {:.1}, \
             \"resident_bytes\": {}, \"build_secs\": {:.4}, \"trace_hash\": \"{:016x}\", \
             \"mismatches\": {}}}{}\n",
            c.family,
            c.size,
            c.seed,
            json_escape_free(&c.skew),
            json_escape_free(&c.algo),
            c.mpps,
            c.ns_per_packet,
            c.depth,
            c.max_depth,
            c.nodes,
            c.bytes_per_rule,
            c.resident_bytes,
            c.build_secs,
            c.trace_hash,
            c.mismatches,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"summary\": [\n");
    for (i, s) in summaries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"family\": \"{}\", \"algo\": \"{}\", \"path\": \"flat_batch\", \
             \"cells\": {}, \"mpps\": {:.3}, \"depth\": {:.1}, \"bytes_per_rule\": {:.1}, \
             \"build_secs\": {:.4}}}{}\n",
            s.family,
            json_escape_free(&s.algo),
            s.cells,
            s.mpps,
            s.depth,
            s.bytes_per_rule,
            s.build_secs,
            if i + 1 < summaries.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"verified\": {{\"packets_per_cell\": {trace_len}, \"cells\": {}, \
         \"mismatches\": {mismatches}}}\n}}\n",
        cells.len()
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    if mismatches > 0 {
        eprintln!("correctness failure — numbers are not trustworthy");
        std::process::exit(1);
    }
}
