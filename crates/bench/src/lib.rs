//! Shared harness for regenerating the paper's evaluation figures.
//!
//! Every figure binary (`fig5_learning` … `fig11_tradeoff`,
//! `ablation_*`) is built from the pieces here: the 36-classifier
//! ClassBench suite of §6, baseline runners, NeuroCuts runners, and
//! plain-text table output. Scale is controlled by environment
//! variables so the same binaries run as quick smoke checks or as
//! overnight full-scale reproductions:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_SIZE` | rules per classifier | 300 |
//! | `NC_TIMESTEPS` | RL timesteps per NeuroCuts run | 24000 |
//! | `NC_VARIANTS` | seed variants per family (≤5/5/2) | full suite |
//! | `NC_FAMILIES` | comma list of `acl,fw,ipc` | all |
//!
//! The paper trained to 10M timesteps per classifier on AWS; shapes
//! (who wins, by what factor) are what these defaults reproduce.

#![warn(missing_docs)]

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig, RuleSet};
use dtree::{DecisionTree, TreeStats};
use neurocuts::{NeuroCutsConfig, Trainer};

/// One classifier of the evaluation suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Paper-style label, e.g. `acl3_1k`.
    pub label: String,
    /// Family the rules were drawn from.
    pub family: ClassifierFamily,
    /// The rules.
    pub rules: RuleSet,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Rules per classifier (`NC_SIZE`, default 300).
pub fn suite_size() -> usize {
    env_usize("NC_SIZE", 300)
}

/// RL timesteps per NeuroCuts run (`NC_TIMESTEPS`, default 24000).
pub fn train_timesteps() -> usize {
    env_usize("NC_TIMESTEPS", 24_000)
}

/// The evaluation suite: `acl1..5, fw1..5, ipc1..2` at [`suite_size`]
/// rules each (the paper's Figure 8/9 x-axis at one size tier; set
/// `NC_SIZE=10000`/`100000` for the other tiers).
pub fn suite() -> Vec<SuiteEntry> {
    let size = suite_size();
    let max_variants = env_usize("NC_VARIANTS", usize::MAX);
    let families: Vec<ClassifierFamily> = match std::env::var("NC_FAMILIES") {
        Ok(list) => ClassifierFamily::ALL
            .into_iter()
            .filter(|f| list.split(',').any(|t| t.trim() == f.tag()))
            .collect(),
        Err(_) => ClassifierFamily::ALL.to_vec(),
    };
    let mut out = Vec::new();
    for family in families {
        for seed in 0..family.num_variants().min(max_variants) as u64 {
            let cfg = GeneratorConfig::new(family, size).with_seed(seed);
            out.push(SuiteEntry { label: cfg.label(), family, rules: generate_rules(&cfg) });
        }
    }
    out
}

/// The four hand-tuned baselines of §6, by name.
pub const BASELINE_NAMES: [&str; 4] = ["HiCuts", "HyperCuts", "EffiCuts", "CutSplit"];

/// Build one baseline by name on `rules`.
///
/// # Panics
/// Panics on an unknown name.
pub fn build_baseline(name: &str, rules: &RuleSet) -> DecisionTree {
    match name {
        "HiCuts" => baselines::build_hicuts(rules, &baselines::HiCutsConfig::default()),
        "HyperCuts" => baselines::build_hypercuts(rules, &baselines::HyperCutsConfig::default()),
        "HyperSplit" => baselines::build_hypersplit(rules, &baselines::HyperSplitConfig::default()),
        "EffiCuts" => baselines::build_efficuts(rules, &baselines::EffiCutsConfig::default()),
        "CutSplit" => baselines::build_cutsplit(rules, &baselines::CutSplitConfig::default()),
        other => panic!("unknown baseline {other}"),
    }
}

/// The harness-scale NeuroCuts configuration: `small()` with the
/// `NC_TIMESTEPS` budget (the rollout cap and batch scale with it).
pub fn harness_config() -> NeuroCutsConfig {
    NeuroCutsConfig::small(train_timesteps())
}

/// Outcome of one NeuroCuts run on one classifier.
#[derive(Debug, Clone)]
pub struct NeuroCutsResult {
    /// Best completed tree's stats (falls back to the greedy tree when
    /// every training rollout truncated).
    pub stats: TreeStats,
    /// The tree behind `stats` (an `Arc` snapshot shared with the
    /// trainer's best-tree record).
    pub tree: std::sync::Arc<DecisionTree>,
    /// Timesteps actually consumed.
    pub timesteps: usize,
}

/// Train NeuroCuts on `rules` under `cfg` and return the best tree
/// (best completed training rollout, or the greedy tree if better /
/// the only completed one).
///
/// # Panics
/// Panics on degenerate inputs ([`neurocuts::TrainError`]) — the
/// figure harness generates its own rule sets, so those are bugs here,
/// not user error.
pub fn run_neurocuts(rules: &RuleSet, cfg: NeuroCutsConfig) -> NeuroCutsResult {
    let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");
    let report = trainer.train().expect("training makes progress");
    let objective = *trainer.env().objective();
    let score = |s: &TreeStats| objective.value(s.time, s.bytes);
    let (greedy_tree, greedy_stats) = trainer.greedy_tree();
    match report.best {
        Some(best) if score(&best.stats) <= score(&greedy_stats) => {
            NeuroCutsResult { stats: best.stats, tree: best.tree, timesteps: report.timesteps }
        }
        _ => {
            NeuroCutsResult { stats: greedy_stats, tree: greedy_tree, timesteps: report.timesteps }
        }
    }
}

/// Median of a sample (mean of middle pair for even sizes).
///
/// # Panics
/// Panics on an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// `1 - a/b`: the paper's improvement metric (positive = `a` better).
pub fn improvement(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        1.0 - a / b
    }
}

/// Print a row of a fixed-width results table.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<12}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn improvement_signs() {
        assert!((improvement(5.0, 10.0) - 0.5).abs() < 1e-12);
        assert!(improvement(10.0, 5.0) < 0.0);
        assert_eq!(improvement(1.0, 0.0), 0.0);
    }

    #[test]
    fn baselines_build_by_name() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 100));
        for name in BASELINE_NAMES {
            let tree = build_baseline(name, &rules);
            assert!(TreeStats::compute(&tree).time >= 1, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn unknown_baseline_panics() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 10));
        let _ = build_baseline("TCAM", &rules);
    }
}
