//! Shared harness for regenerating the paper's evaluation figures.
//!
//! Every figure binary (`fig5_learning` … `fig11_tradeoff`,
//! `ablation_*`) is built from the pieces here: the 36-classifier
//! ClassBench suite of §6, baseline runners, NeuroCuts runners, and
//! plain-text table output. Scale is controlled by environment
//! variables so the same binaries run as quick smoke checks or as
//! overnight full-scale reproductions:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NC_SIZE` | rules per classifier | 300 |
//! | `NC_TIMESTEPS` | RL timesteps per NeuroCuts run | 24000 |
//! | `NC_VARIANTS` | seed variants per family (≤5/5/2) | full suite |
//! | `NC_FAMILIES` | comma list of `acl,fw,ipc` | all |
//!
//! The paper trained to 10M timesteps per classifier on AWS; shapes
//! (who wins, by what factor) are what these defaults reproduce.

#![warn(missing_docs)]

use baselines::Classifier;
use classbench::{generate_rules, ClassifierFamily, GeneratorConfig, RuleSet};
use dtree::{DecisionTree, TreeStats};
use neurocuts::{NeuroCutsClassifier, NeuroCutsConfig, Trainer};
use std::time::Instant;

/// One classifier of the evaluation suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Paper-style label, e.g. `acl3_1k`.
    pub label: String,
    /// Family the rules were drawn from.
    pub family: ClassifierFamily,
    /// The rules.
    pub rules: RuleSet,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Rules per classifier (`NC_SIZE`, default 300).
pub fn suite_size() -> usize {
    env_usize("NC_SIZE", 300)
}

/// RL timesteps per NeuroCuts run (`NC_TIMESTEPS`, default 24000).
pub fn train_timesteps() -> usize {
    env_usize("NC_TIMESTEPS", 24_000)
}

/// The evaluation suite: `acl1..5, fw1..5, ipc1..2` at [`suite_size`]
/// rules each (the paper's Figure 8/9 x-axis at one size tier; set
/// `NC_SIZE=10000`/`100000` for the other tiers).
pub fn suite() -> Vec<SuiteEntry> {
    let size = suite_size();
    let max_variants = env_usize("NC_VARIANTS", usize::MAX);
    let families: Vec<ClassifierFamily> = match std::env::var("NC_FAMILIES") {
        Ok(list) => ClassifierFamily::ALL
            .into_iter()
            .filter(|f| list.split(',').any(|t| t.trim() == f.tag()))
            .collect(),
        Err(_) => ClassifierFamily::ALL.to_vec(),
    };
    let mut out = Vec::new();
    for family in families {
        for seed in 0..family.num_variants().min(max_variants) as u64 {
            let cfg = GeneratorConfig::new(family, size).with_seed(seed);
            out.push(SuiteEntry { label: cfg.label(), family, rules: generate_rules(&cfg) });
        }
    }
    out
}

/// The four hand-tuned baselines of §6, by name.
pub const BASELINE_NAMES: [&str; 4] = ["HiCuts", "HyperCuts", "EffiCuts", "CutSplit"];

/// All six [`Classifier`] implementations, sweep order: NeuroCuts
/// first, then the baselines.
pub const CLASSIFIER_NAMES: [&str; 6] =
    ["NeuroCuts", "HiCuts", "HyperCuts", "HyperSplit", "EffiCuts", "CutSplit"];

/// Build one baseline by name on `rules`, routed through the unified
/// [`Classifier`] trait (every figure/ablation binary therefore rides
/// the same build path the sweep measures).
///
/// # Panics
/// Panics on an unknown name.
pub fn build_baseline(name: &str, rules: &RuleSet) -> DecisionTree {
    baselines::build_baseline_compiled(name, rules)
        .unwrap_or_else(|| panic!("unknown baseline {name}"))
        .into_tree()
}

/// Build one of the six [`Classifier`] implementations by name.
/// NeuroCuts trains under `nc_cfg`; the baselines use their default
/// configurations (the trait's `build`).
///
/// # Panics
/// Panics on an unknown name or an untrainable rule set — the
/// harnesses generate their own rule sets, so those are bugs here.
pub fn build_classifier(
    name: &str,
    rules: &RuleSet,
    nc_cfg: &NeuroCutsConfig,
) -> Box<dyn Classifier> {
    if name == "NeuroCuts" {
        Box::new(NeuroCutsClassifier::train(rules, nc_cfg.clone()).expect("trainable rule set"))
    } else {
        baselines::build_baseline_classifier(name, rules)
            .unwrap_or_else(|| panic!("unknown classifier {name}"))
    }
}

/// Time `f` (which processes `work_items` items per call) with an
/// adaptive pass count filling roughly `target_ms` per trial, and
/// return `(ns/item, M items/s)`. Takes the fastest of three trials:
/// benchmark boxes (CI, shared VMs) are noisy, and the minimum is the
/// best estimator of the code's actual cost.
pub fn measure_ns<F: FnMut()>(work_items: usize, target_ms: u64, mut f: F) -> (f64, f64) {
    // Warm-up + calibration pass.
    let start = Instant::now();
    f();
    let once = start.elapsed();
    let passes =
        ((target_ms as u128 * 1_000_000) / once.as_nanos().max(1)).clamp(1, 100_000) as usize;
    let mut best_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..passes {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / (work_items * passes) as f64;
        best_ns = best_ns.min(ns);
    }
    (best_ns, 1e3 / best_ns)
}

/// The harness-scale NeuroCuts configuration: `small()` with the
/// `NC_TIMESTEPS` budget (the rollout cap and batch scale with it).
pub fn harness_config() -> NeuroCutsConfig {
    NeuroCutsConfig::small(train_timesteps())
}

/// Outcome of one NeuroCuts run on one classifier.
#[derive(Debug, Clone)]
pub struct NeuroCutsResult {
    /// Best completed tree's stats (falls back to the greedy tree when
    /// every training rollout truncated).
    pub stats: TreeStats,
    /// The tree behind `stats` (an `Arc` snapshot shared with the
    /// trainer's best-tree record).
    pub tree: std::sync::Arc<DecisionTree>,
    /// Timesteps actually consumed.
    pub timesteps: usize,
}

/// Train NeuroCuts on `rules` under `cfg` and return the best tree
/// (best completed training rollout, or the greedy tree if better /
/// the only completed one).
///
/// # Panics
/// Panics on degenerate inputs ([`neurocuts::TrainError`]) — the
/// figure harness generates its own rule sets, so those are bugs here,
/// not user error.
pub fn run_neurocuts(rules: &RuleSet, cfg: NeuroCutsConfig) -> NeuroCutsResult {
    let mut trainer = Trainer::new(rules.clone(), cfg).expect("trainable rule set");
    let report = trainer.train().expect("training makes progress");
    let objective = *trainer.env().objective();
    let score = |s: &TreeStats| objective.value(s.time, s.bytes);
    let (greedy_tree, greedy_stats) = trainer.greedy_tree();
    match report.best {
        Some(best) if score(&best.stats) <= score(&greedy_stats) => {
            NeuroCutsResult { stats: best.stats, tree: best.tree, timesteps: report.timesteps }
        }
        _ => {
            NeuroCutsResult { stats: greedy_stats, tree: greedy_tree, timesteps: report.timesteps }
        }
    }
}

/// Median of a sample (mean of middle pair for even sizes).
///
/// # Panics
/// Panics on an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// `1 - a/b`: the paper's improvement metric (positive = `a` better).
pub fn improvement(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        1.0 - a / b
    }
}

/// Print a row of a fixed-width results table.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<12}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn improvement_signs() {
        assert!((improvement(5.0, 10.0) - 0.5).abs() < 1e-12);
        assert!(improvement(10.0, 5.0) < 0.0);
        assert_eq!(improvement(1.0, 0.0), 0.0);
    }

    #[test]
    fn baselines_build_by_name() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 100));
        for name in BASELINE_NAMES {
            let tree = build_baseline(name, &rules);
            assert!(TreeStats::compute(&tree).time >= 1, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn unknown_baseline_panics() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 10));
        let _ = build_baseline("TCAM", &rules);
    }

    #[test]
    fn classifier_factory_covers_all_six() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 60).with_seed(4));
        let cfg = NeuroCutsConfig::smoke_test();
        for name in CLASSIFIER_NAMES {
            let c = build_classifier(name, &rules, &cfg);
            assert_eq!(c.name(), name);
            assert!(c.stats().depth() >= 1, "{name}");
        }
    }
}
