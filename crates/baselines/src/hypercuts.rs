//! HyperCuts: multidimensional cutting (Singh et al., SIGCOMM 2003).
//!
//! HyperCuts generalises HiCuts by cutting several dimensions at one
//! node. Dimension selection follows the paper: dimensions whose
//! distinct-projection count exceeds the mean are candidates. The cut
//! counts are grown greedily — repeatedly double the count of whichever
//! candidate dimension most reduces the largest child — under a global
//! child budget of `spfac * sqrt(rules(node))`.

use crate::common::{dims_by_distinct_ranges, simulate_multicut, BuildLimits};
use classbench::{Dim, RuleSet};
use dtree::{DecisionTree, NodeId};

/// HyperCuts tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct HyperCutsConfig {
    /// Leaf threshold and safety limits.
    pub limits: BuildLimits,
    /// Space factor: child budget multiplier (`spfac * sqrt(n)`).
    pub spfac: f64,
    /// Maximum dimensions cut simultaneously (the paper typically uses
    /// up to 2–3 in practice).
    pub max_dims: usize,
    /// Hard cap on children per node regardless of budget.
    pub max_children: usize,
    /// Apply covered-rule truncation to children.
    pub rule_overlap: bool,
}

impl Default for HyperCutsConfig {
    fn default() -> Self {
        HyperCutsConfig {
            limits: BuildLimits::default(),
            spfac: 4.0,
            max_dims: 2,
            max_children: 128,
            rule_overlap: true,
        }
    }
}

/// Greedily grow per-dimension cut counts under the child budget.
/// Returns the chosen `(dim, ncuts)` list (only dims with `ncuts >= 2`),
/// or `None` if no multicut makes progress.
fn choose_multicut(
    tree: &DecisionTree,
    id: NodeId,
    cfg: &HyperCutsConfig,
) -> Option<Vec<(Dim, usize)>> {
    let n = tree.node(id).num_rules();
    let budget = ((cfg.spfac * (n as f64).sqrt()) as usize).clamp(4, cfg.max_children);

    // Candidate dims: distinct count above the mean (HyperCuts' rule),
    // keeping at most `max_dims` of the most discriminating.
    let ranked = dims_by_distinct_ranges(tree, id);
    if ranked.is_empty() || ranked[0].1 <= 1 {
        return None;
    }
    let mean = ranked.iter().map(|&(_, c)| c).sum::<usize>() as f64 / ranked.len() as f64;
    let mut candidates: Vec<Dim> = ranked
        .iter()
        .filter(|&&(_, c)| c as f64 >= mean && c > 1)
        .map(|&(d, _)| d)
        .take(cfg.max_dims)
        .collect();
    if candidates.is_empty() {
        candidates.push(ranked[0].0);
    }

    // Start all candidates at 1 cut and double the most helpful one.
    let mut counts: Vec<usize> = vec![1; candidates.len()];
    loop {
        let current: Vec<(Dim, usize)> = candidates
            .iter()
            .zip(&counts)
            .filter(|&(_, &c)| c >= 2)
            .map(|(&d, &c)| (d, c))
            .collect();
        let current_worst = if current.is_empty() {
            n
        } else {
            *simulate_multicut(tree, id, &current).iter().max().unwrap_or(&n)
        };

        let mut best: Option<(usize, usize)> = None; // (candidate idx, worst child)
        for i in 0..candidates.len() {
            let doubled = counts[i] * 2;
            let total: usize =
                counts.iter().enumerate().map(|(j, &c)| if j == i { doubled } else { c }).product();
            if total > budget || (doubled as u64) > tree.node(id).space.range(candidates[i]).len() {
                continue;
            }
            let trial: Vec<(Dim, usize)> = candidates
                .iter()
                .enumerate()
                .map(|(j, &d)| (d, if j == i { doubled } else { counts[j] }))
                .filter(|&(_, c)| c >= 2)
                .collect();
            if trial.is_empty() {
                continue;
            }
            let worst = *simulate_multicut(tree, id, &trial).iter().max().unwrap();
            if worst < current_worst && best.is_none_or(|(_, w)| worst < w) {
                best = Some((i, worst));
            }
        }
        match best {
            Some((i, _)) => counts[i] *= 2,
            None => break,
        }
    }

    let chosen: Vec<(Dim, usize)> =
        candidates.into_iter().zip(counts).filter(|&(_, c)| c >= 2).collect();
    if chosen.is_empty() {
        return None;
    }
    // Require progress.
    let sim = simulate_multicut(tree, id, &chosen);
    if sim.iter().any(|&c| c < n) {
        Some(chosen)
    } else {
        None
    }
}

/// Build a HyperCuts tree for `rules`.
pub fn build_hypercuts(rules: &RuleSet, cfg: &HyperCutsConfig) -> DecisionTree {
    let mut tree = DecisionTree::new(rules);
    let mut stack: Vec<NodeId> = vec![tree.root()];
    while let Some(id) = stack.pop() {
        if cfg.limits.must_stop(&tree, id) {
            continue;
        }
        if let Some(dims) = choose_multicut(&tree, id, cfg) {
            let children = tree.multicut_node(id, &dims);
            for c in children {
                if cfg.rule_overlap {
                    tree.truncate_covered(c);
                }
                stack.push(c);
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
    use dtree::{validate::assert_tree_valid, NodeKind, TreeStats};

    #[test]
    fn builds_valid_trees_for_all_families() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 300).with_seed(21));
            let tree = build_hypercuts(&rs, &HyperCutsConfig::default());
            assert_tree_valid(&tree, 400, 22);
        }
    }

    #[test]
    fn uses_multidimensional_cuts() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 500).with_seed(23));
        let tree = build_hypercuts(&rs, &HyperCutsConfig::default());
        let multi = tree
            .nodes()
            .iter()
            .filter(|n| matches!(&n.kind, NodeKind::MultiCut { dims, .. } if dims.len() >= 2))
            .count();
        assert!(multi > 0, "expected at least one true multi-dim cut");
    }

    #[test]
    fn shallower_than_hicuts_on_average() {
        // HyperCuts' motivation: multi-dim cuts reduce depth. Check the
        // trend across seeds rather than requiring it per-instance.
        let mut hyper_depth = 0usize;
        let mut hi_depth = 0usize;
        for seed in 0..3 {
            let rs =
                generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 400).with_seed(seed));
            hyper_depth +=
                TreeStats::compute(&build_hypercuts(&rs, &HyperCutsConfig::default())).time;
            hi_depth += TreeStats::compute(&crate::hicuts::build_hicuts(
                &rs,
                &crate::hicuts::HiCutsConfig::default(),
            ))
            .time;
        }
        assert!(hyper_depth <= hi_depth + 3, "hypercuts {hyper_depth} vs hicuts {hi_depth}");
    }

    #[test]
    fn child_budget_is_respected() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 300).with_seed(25));
        let cfg = HyperCutsConfig { max_children: 16, ..Default::default() };
        let tree = build_hypercuts(&rs, &cfg);
        for n in tree.nodes() {
            assert!(n.kind.children().len() <= 16);
        }
        assert_tree_valid(&tree, 300, 26);
    }

    #[test]
    fn trace_agreement() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 250).with_seed(27));
        let tree = build_hypercuts(&rs, &HyperCutsConfig::default());
        let trace = classbench::generate_trace(&rs, &classbench::TraceConfig::new(400));
        for p in &trace {
            assert_eq!(tree.classify(p), rs.classify(p));
        }
    }
}
