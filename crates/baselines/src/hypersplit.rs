//! HyperSplit: balanced rule-boundary splits (Qi et al., INFOCOM 2009).
//!
//! Instead of equal-size cuts, HyperSplit picks a rule-range endpoint as
//! a binary split threshold, choosing the dimension/threshold pair that
//! most evenly balances the rules across the two children. Binary splits
//! give logarithmic-ish depth with far less rule replication than wide
//! equal cuts — the memory-friendly end of the design space, and the
//! post-processing stage CutSplit applies inside its partitions.

use crate::common::{interior_endpoints, BuildLimits};
use classbench::{Dim, RuleSet, DIMS};
use dtree::{DecisionTree, NodeId};

/// HyperSplit tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct HyperSplitConfig {
    /// Leaf threshold and safety limits.
    pub limits: BuildLimits,
    /// At most this many candidate thresholds are evaluated per
    /// dimension (evenly sampled from the endpoint list) to bound the
    /// per-node work on large nodes.
    pub max_candidates: usize,
}

impl Default for HyperSplitConfig {
    fn default() -> Self {
        HyperSplitConfig {
            limits: BuildLimits { max_depth: 200, ..Default::default() },
            max_candidates: 32,
        }
    }
}

/// Score of a split: `(max(left, right), left + right)` — primary
/// balance, secondary total replication. Lower is better.
type Score = (usize, usize);

fn split_score(tree: &DecisionTree, id: NodeId, dim: Dim, threshold: u64) -> Score {
    let node = tree.node(id);
    let (ls, rs) = node.space.split(dim, threshold);
    let mut left = 0usize;
    let mut right = 0usize;
    for &r in tree.rules_at(id) {
        if !tree.is_active(r) {
            continue;
        }
        let rule = tree.rule(r);
        if ls.intersects_rule(rule) {
            left += 1;
        }
        if rs.intersects_rule(rule) {
            right += 1;
        }
    }
    (left.max(right), left + right)
}

/// Best `(dim, threshold)` for a node, or `None` when no endpoint-based
/// split makes progress.
fn choose_split(tree: &DecisionTree, id: NodeId, cfg: &HyperSplitConfig) -> Option<(Dim, u64)> {
    let n = tree.node(id).num_rules();
    let mut best: Option<(Score, Dim, u64)> = None;
    for &dim in &DIMS {
        let endpoints = interior_endpoints(tree, id, dim);
        if endpoints.is_empty() {
            continue;
        }
        // Evenly sample candidates when there are too many endpoints.
        let step = endpoints.len().div_ceil(cfg.max_candidates);
        for t in endpoints.iter().step_by(step.max(1)) {
            let score = split_score(tree, id, dim, *t);
            if score.0 >= n {
                continue; // no progress: one side keeps every rule
            }
            if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
                best = Some((score, dim, *t));
            }
        }
    }
    best.map(|(_, d, t)| (d, t))
}

/// Build a HyperSplit tree for `rules`.
pub fn build_hypersplit(rules: &RuleSet, cfg: &HyperSplitConfig) -> DecisionTree {
    let mut tree = DecisionTree::new(rules);
    let mut stack = vec![tree.root()];
    split_subtrees(&mut tree, &mut stack, cfg);
    tree
}

/// Drive HyperSplit recursion over the given work stack; exposed so
/// CutSplit can run the same post-splitting over its pre-cut leaves.
pub(crate) fn split_subtrees(
    tree: &mut DecisionTree,
    stack: &mut Vec<NodeId>,
    cfg: &HyperSplitConfig,
) {
    while let Some(id) = stack.pop() {
        if cfg.limits.must_stop(tree, id) {
            continue;
        }
        if let Some((dim, threshold)) = choose_split(tree, id, cfg) {
            let (l, r) = tree.split_node(id, dim, threshold);
            tree.truncate_covered(l);
            tree.truncate_covered(r);
            stack.push(l);
            stack.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
    use dtree::{validate::assert_tree_valid, NodeKind, TreeStats};

    #[test]
    fn builds_valid_trees_for_all_families() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 300).with_seed(31));
            let tree = build_hypersplit(&rs, &HyperSplitConfig::default());
            assert_tree_valid(&tree, 400, 32);
        }
    }

    #[test]
    fn only_binary_splits_are_used() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(33));
        let tree = build_hypersplit(&rs, &HyperSplitConfig::default());
        for n in tree.nodes() {
            assert!(
                matches!(n.kind, NodeKind::Leaf | NodeKind::Split { .. }),
                "unexpected kind {:?}",
                n.kind
            );
        }
    }

    #[test]
    fn less_replication_than_hicuts() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 400).with_seed(34));
        let hs = TreeStats::compute(&build_hypersplit(&rs, &HyperSplitConfig::default()));
        let hc = TreeStats::compute(&crate::hicuts::build_hicuts(
            &rs,
            &crate::hicuts::HiCutsConfig::default(),
        ));
        // HyperSplit's raison d'être: balanced splits replicate less on
        // wildcard-heavy (FW) rule sets.
        assert!(hs.bytes_per_rule <= hc.bytes_per_rule * 1.5, "hypersplit {hs} vs hicuts {hc}");
    }

    #[test]
    fn splits_balance_children() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 300).with_seed(35));
        let tree = build_hypersplit(&rs, &HyperSplitConfig::default());
        // Spot-check the root split: neither child should hold everything.
        if let NodeKind::Split { children, .. } = &tree.node(tree.root()).kind {
            let total = tree.node(tree.root()).num_rules();
            for &c in children.iter() {
                assert!(tree.node(c).num_rules() < total);
            }
        } else {
            panic!("root should have been split");
        }
    }

    #[test]
    fn trace_agreement() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 250).with_seed(36));
        let tree = build_hypersplit(&rs, &HyperSplitConfig::default());
        let trace = classbench::generate_trace(&rs, &classbench::TraceConfig::new(400));
        for p in &trace {
            assert_eq!(tree.classify(p), rs.classify(p));
        }
    }

    #[test]
    fn binth_respected_where_progress_is_possible() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 300).with_seed(37));
        let cfg = HyperSplitConfig::default();
        let tree = build_hypersplit(&rs, &cfg);
        for id in tree.leaf_ids() {
            if tree.node(id).num_rules() > cfg.limits.binth
                && tree.node(id).depth < cfg.limits.max_depth
            {
                assert!(choose_split(&tree, id, &cfg).is_none());
            }
        }
    }
}
