//! The unified [`Classifier`] trait: one boundary every packet
//! classifier in the workspace serves behind.
//!
//! Every algorithm here — the five hand-tuned baselines and the trained
//! NeuroCuts policy (`neurocuts::NeuroCutsClassifier`) — ends at the
//! same place: a [`DecisionTree`] compiled to a [`FlatTree`] for
//! serving. The trait makes that uniformity explicit so harnesses
//! (`bench_sweep`, the examples, the conformance suites) and future
//! multi-tenant serving can treat "a classifier" as one thing:
//!
//! * **build-from-ruleset** — [`Classifier::build`] constructs the
//!   classifier from a [`RuleSet`] under the algorithm's default
//!   configuration, timing the build (each concrete type also offers a
//!   config-taking constructor);
//! * **lookup** — [`Classifier::classify`] (scalar) and
//!   [`Classifier::classify_batch`] (wavefront) return the same
//!   [`RuleId`]s as the rule set's linear scan;
//! * **accounting** — [`Classifier::stats`] reports depth, node count,
//!   bytes/rule, compiled footprint, and build time.
//!
//! The trait is object safe (`build` is `where Self: Sized`), so
//! heterogeneous sweeps hold `Box<dyn Classifier>`.

use crate::{
    build_cutsplit, build_efficuts, build_hicuts, build_hypercuts, build_hypersplit,
    CutSplitConfig, EffiCutsConfig, HiCutsConfig, HyperCutsConfig, HyperSplitConfig,
};
use classbench::{Packet, RuleSet};
use dtree::{DecisionTree, FlatTree, RuleId, TreeStats};
use std::time::Instant;

/// Build-time and shape statistics every [`Classifier`] reports.
///
/// `tree` carries the paper's metrics (worst-case classification time,
/// bytes/rule, node and leaf counts); the extra fields account for the
/// compiled serving artifact and the cost of producing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierStats {
    /// Arena-tree statistics (Eqs. 1–4): `time`, `bytes_per_rule`,
    /// `nodes`, `max_depth`, `replication`, …
    pub tree: TreeStats,
    /// Wall-clock seconds to build the tree *and* compile it to the
    /// serving [`FlatTree`].
    pub build_secs: f64,
    /// Resident bytes of the compiled [`FlatTree`] (exact capacity
    /// accounting, see [`FlatTree::resident_bytes`]).
    pub resident_bytes: usize,
}

impl ClassifierStats {
    /// Worst-case lookup depth (`T_root`, ≥ 1 for any non-empty tree).
    pub fn depth(&self) -> usize {
        self.tree.time
    }
}

/// A packet classifier built from a rule set and compiled for serving.
///
/// Implementations guarantee **exactness**: `classify` and
/// `classify_batch` return the same winning [`RuleId`] as the rule
/// set's linear scan for every valid packet (pinned by the workspace
/// conformance suites). The trait is object safe; [`Classifier::build`]
/// is reachable only on concrete types.
pub trait Classifier {
    /// Build from `rules` under the algorithm's default configuration,
    /// recording build time in [`Classifier::stats`].
    ///
    /// # Panics
    /// May panic on degenerate inputs (e.g. an empty rule set) — the
    /// harnesses generate their own rule sets, so those are caller
    /// bugs, not runtime input. Config-taking constructors on the
    /// concrete types surface typed errors where construction can
    /// actually fail (NeuroCuts training).
    fn build(rules: &RuleSet) -> Self
    where
        Self: Sized;

    /// Algorithm name as the figures print it (e.g. `"HiCuts"`).
    fn name(&self) -> &'static str;

    /// Classify one packet; `None` means no rule matched.
    fn classify(&self, packet: &Packet) -> Option<RuleId>;

    /// Classify a batch through the wavefront path. `out` must be the
    /// same length as `packets`; results equal per-packet
    /// [`Classifier::classify`] calls.
    fn classify_batch(&self, packets: &[Packet], out: &mut [Option<RuleId>]);

    /// Shape and build-time statistics.
    fn stats(&self) -> &ClassifierStats;
}

/// Time a closure, returning its result and elapsed wall-clock seconds
/// (clamped away from zero so rate computations stay finite).
///
/// Lives here — not in the training crates — so the determinism-pure
/// domains (`core`, `rl`, `nn`) never touch a wall clock themselves:
/// callers pass the deterministic work in and only the *measurement*
/// reads time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64().max(1e-9))
}

/// The shared back half of every [`Classifier`] implementation: an
/// arena [`DecisionTree`] plus its compiled [`FlatTree`] and stats.
///
/// Concrete algorithm types wrap this (see [`HiCutsClassifier`] et
/// al.); it is not itself a `Classifier` because it has no
/// build-from-ruleset story of its own.
#[derive(Debug, Clone)]
pub struct CompiledClassifier {
    name: &'static str,
    tree: DecisionTree,
    flat: FlatTree,
    stats: ClassifierStats,
}

impl CompiledClassifier {
    /// Run `build`, compile its tree, and wrap the result; `build_secs`
    /// covers both steps.
    pub fn compile_timed(
        name: &'static str,
        build: impl FnOnce() -> DecisionTree,
    ) -> CompiledClassifier {
        let ((tree, flat), build_secs) = timed(|| {
            let tree = build();
            let flat = FlatTree::compile(&tree);
            (tree, flat)
        });
        CompiledClassifier::from_parts(name, tree, flat, build_secs)
    }

    /// Wrap an already-built tree + compiled form.
    pub fn from_parts(
        name: &'static str,
        tree: DecisionTree,
        flat: FlatTree,
        build_secs: f64,
    ) -> CompiledClassifier {
        let stats = ClassifierStats {
            tree: TreeStats::compute(&tree),
            build_secs,
            resident_bytes: flat.resident_bytes(),
        };
        CompiledClassifier { name, tree, flat, stats }
    }

    /// The algorithm name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The arena tree (construction form).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The compiled serving tree.
    pub fn flat(&self) -> &FlatTree {
        &self.flat
    }

    /// Stats computed at construction.
    pub fn stats(&self) -> &ClassifierStats {
        &self.stats
    }

    /// Surrender the arena tree (for harnesses that post-process it).
    pub fn into_tree(self) -> DecisionTree {
        self.tree
    }

    /// Scalar lookup through the compiled tree.
    pub fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.flat.classify(packet)
    }

    /// Batched wavefront lookup through the compiled tree.
    pub fn classify_batch(&self, packets: &[Packet], out: &mut [Option<RuleId>]) {
        self.flat.classify_batch(packets, out);
    }
}

macro_rules! baseline_classifier {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $build:path, $cfg:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $ty(CompiledClassifier);

        impl $ty {
            /// Build with an explicit configuration (timed, compiled).
            pub fn with_config(rules: &RuleSet, cfg: &$cfg) -> $ty {
                $ty(CompiledClassifier::compile_timed($name, || $build(rules, cfg)))
            }

            /// The shared compiled form (tree/flat/stats access).
            pub fn inner(&self) -> &CompiledClassifier {
                &self.0
            }

            /// Surrender the compiled form.
            pub fn into_inner(self) -> CompiledClassifier {
                self.0
            }
        }

        impl Classifier for $ty {
            fn build(rules: &RuleSet) -> $ty {
                $ty::with_config(rules, &<$cfg>::default())
            }

            fn name(&self) -> &'static str {
                self.0.name()
            }

            fn classify(&self, packet: &Packet) -> Option<RuleId> {
                self.0.classify(packet)
            }

            fn classify_batch(&self, packets: &[Packet], out: &mut [Option<RuleId>]) {
                self.0.classify_batch(packets, out)
            }

            fn stats(&self) -> &ClassifierStats {
                self.0.stats()
            }
        }
    };
}

baseline_classifier!(
    /// HiCuts compiled behind the [`Classifier`] boundary.
    HiCutsClassifier,
    "HiCuts",
    build_hicuts,
    HiCutsConfig
);
baseline_classifier!(
    /// HyperCuts compiled behind the [`Classifier`] boundary.
    HyperCutsClassifier,
    "HyperCuts",
    build_hypercuts,
    HyperCutsConfig
);
baseline_classifier!(
    /// HyperSplit compiled behind the [`Classifier`] boundary.
    HyperSplitClassifier,
    "HyperSplit",
    build_hypersplit,
    HyperSplitConfig
);
baseline_classifier!(
    /// EffiCuts compiled behind the [`Classifier`] boundary.
    EffiCutsClassifier,
    "EffiCuts",
    build_efficuts,
    EffiCutsConfig
);
baseline_classifier!(
    /// CutSplit compiled behind the [`Classifier`] boundary.
    CutSplitClassifier,
    "CutSplit",
    build_cutsplit,
    CutSplitConfig
);

/// The five baseline algorithm names, harness order.
pub const BASELINE_CLASSIFIERS: [&str; 5] =
    ["HiCuts", "HyperCuts", "HyperSplit", "EffiCuts", "CutSplit"];

/// Build one baseline [`Classifier`] by harness name with its default
/// configuration; `None` for an unknown name.
pub fn build_baseline_classifier(name: &str, rules: &RuleSet) -> Option<Box<dyn Classifier>> {
    Some(match name {
        "HiCuts" => Box::new(HiCutsClassifier::build(rules)),
        "HyperCuts" => Box::new(HyperCutsClassifier::build(rules)),
        "HyperSplit" => Box::new(HyperSplitClassifier::build(rules)),
        "EffiCuts" => Box::new(EffiCutsClassifier::build(rules)),
        "CutSplit" => Box::new(CutSplitClassifier::build(rules)),
        _ => return None,
    })
}

/// Like [`build_baseline_classifier`] but keeping the concrete
/// [`CompiledClassifier`] (arena-tree access) instead of boxing.
pub fn build_baseline_compiled(name: &str, rules: &RuleSet) -> Option<CompiledClassifier> {
    Some(match name {
        "HiCuts" => HiCutsClassifier::build(rules).into_inner(),
        "HyperCuts" => HyperCutsClassifier::build(rules).into_inner(),
        "HyperSplit" => HyperSplitClassifier::build(rules).into_inner(),
        "EffiCuts" => EffiCutsClassifier::build(rules).into_inner(),
        "CutSplit" => CutSplitClassifier::build(rules).into_inner(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig,
    };

    fn rules() -> RuleSet {
        generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(9))
    }

    #[test]
    fn every_baseline_classifier_matches_linear_scan() {
        let rs = rules();
        let trace = generate_trace(&rs, &TraceConfig::new(256).with_seed(10));
        for name in BASELINE_CLASSIFIERS {
            let c = build_baseline_classifier(name, &rs).expect("known name");
            assert_eq!(c.name(), name);
            let mut batch = vec![None; trace.len()];
            c.classify_batch(&trace, &mut batch);
            for (i, p) in trace.iter().enumerate() {
                let scalar = c.classify(p);
                assert_eq!(scalar, rs.classify(p), "{name} scalar at {p}");
                assert_eq!(batch[i], scalar, "{name} batch at {p}");
            }
        }
    }

    #[test]
    fn stats_are_sane_and_timed() {
        let rs = rules();
        let c = HiCutsClassifier::build(&rs);
        let s = c.stats();
        assert!(s.depth() >= 1);
        assert!(s.tree.bytes > 0);
        assert!(s.tree.nodes >= 1);
        assert!(s.tree.bytes_per_rule.is_finite() && s.tree.bytes_per_rule > 0.0);
        assert!(s.build_secs > 0.0);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn trait_build_equals_direct_build_bit_identically() {
        let rs = rules();
        let via_trait = CutSplitClassifier::build(&rs);
        let direct = build_cutsplit(&rs, &CutSplitConfig::default());
        assert_eq!(via_trait.stats().tree, TreeStats::compute(&direct));
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build_baseline_classifier("TCAM", &rules()).is_none());
        assert!(build_baseline_compiled("TCAM", &rules()).is_none());
    }

    #[test]
    fn compiled_accessors_agree() {
        let rs = rules();
        let c = EffiCutsClassifier::build(&rs).into_inner();
        assert_eq!(c.name(), "EffiCuts");
        assert_eq!(c.stats().tree, TreeStats::compute(c.tree()));
        assert_eq!(c.stats().resident_bytes, c.flat().resident_bytes());
        let tree = c.clone().into_tree();
        assert_eq!(TreeStats::compute(&tree), c.stats().tree);
    }

    #[test]
    fn timed_reports_positive_elapsed() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs > 0.0);
    }
}
