//! Shared helpers for the baseline tree builders: node-local statistics
//! (distinct ranges, endpoints) and global build limits.

use classbench::{Dim, DimRange, DIMS};
use dtree::{DecisionTree, NodeId};

/// Safety limits shared by all builders: every recursion stops at
/// `binth` rules, `max_depth` levels, or `max_nodes` total nodes,
/// whichever comes first. The depth/node caps exist so that adversarial
/// inputs degrade to larger leaves instead of runaway trees.
#[derive(Debug, Clone, Copy)]
pub struct BuildLimits {
    /// Terminal leaf threshold (rules per leaf).
    pub binth: usize,
    /// Maximum node depth.
    pub max_depth: usize,
    /// Maximum total nodes in the tree.
    pub max_nodes: usize,
}

impl Default for BuildLimits {
    fn default() -> Self {
        BuildLimits { binth: 16, max_depth: 100, max_nodes: 2_000_000 }
    }
}

impl BuildLimits {
    /// True when the node must become a leaf under these limits.
    pub fn must_stop(&self, tree: &DecisionTree, id: NodeId) -> bool {
        tree.is_terminal(id, self.binth)
            || tree.node(id).depth >= self.max_depth
            || tree.num_nodes() >= self.max_nodes
    }
}

/// Number of distinct rule projections (clipped to the node's range) in
/// `dim` — HiCuts' classic dimension-choice statistic: more distinct
/// ranges means cutting this dimension discriminates more rules.
pub fn distinct_ranges(tree: &DecisionTree, id: NodeId, dim: Dim) -> usize {
    let node = tree.node(id);
    let space = node.space.range(dim);
    let mut ranges: Vec<(u64, u64)> = tree
        .rules_at(id)
        .iter()
        .filter(|&&r| tree.is_active(r))
        .map(|&r| {
            let clipped = tree.rule(r).range(dim).intersect(space);
            (clipped.lo, clipped.hi)
        })
        .collect();
    ranges.sort_unstable();
    ranges.dedup();
    ranges.len()
}

/// Sorted, deduplicated rule-range endpoints strictly inside the node's
/// range in `dim` — the candidate split thresholds for HyperSplit and
/// the candidate boundaries for equi-dense cuts.
pub fn interior_endpoints(tree: &DecisionTree, id: NodeId, dim: Dim) -> Vec<u64> {
    let node = tree.node(id);
    let space = node.space.range(dim);
    let mut points: Vec<u64> = Vec::with_capacity(node.num_rules() * 2);
    for &r in tree.rules_at(id) {
        if !tree.is_active(r) {
            continue;
        }
        let clipped = tree.rule(r).range(dim).intersect(space);
        if clipped.is_empty() {
            continue;
        }
        if clipped.lo > space.lo {
            points.push(clipped.lo);
        }
        if clipped.hi < space.hi {
            points.push(clipped.hi);
        }
    }
    points.sort_unstable();
    points.dedup();
    points
}

/// Rule counts each child of an equal-size cut would receive, without
/// materialising the children. Used to evaluate `spfac` budgets.
/// Delegates to the tree's single-pass counting kernel: O(rules +
/// overlapped children) instead of one full rescan per child.
pub fn simulate_cut(tree: &DecisionTree, id: NodeId, dim: Dim, ncuts: usize) -> Vec<usize> {
    tree.cut_child_counts(id, dim, ncuts)
}

/// Rule counts for a simultaneous multi-dimension cut (HyperCuts),
/// single-pass like [`simulate_cut`].
pub fn simulate_multicut(tree: &DecisionTree, id: NodeId, dims: &[(Dim, usize)]) -> Vec<usize> {
    tree.multicut_child_counts(id, dims)
}

/// Dimensions ordered by decreasing distinct-range count; dimensions
/// whose node range cannot be cut (length < 2) are excluded.
pub fn dims_by_distinct_ranges(tree: &DecisionTree, id: NodeId) -> Vec<(Dim, usize)> {
    let node = tree.node(id);
    let mut out: Vec<(Dim, usize)> = DIMS
        .iter()
        .filter(|&&d| node.space.range(d).len() >= 2)
        .map(|&d| (d, distinct_ranges(tree, id, d)))
        .collect();
    out.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    out
}

/// A `DimRange` sanity alias used by builders when clipping.
pub fn clip(rule_range: &DimRange, space: &DimRange) -> DimRange {
    rule_range.intersect(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{Rule, RuleSet};

    fn tree() -> DecisionTree {
        let mut a = Rule::default_rule(3);
        a.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        let mut b = Rule::default_rule(2);
        b.ranges[Dim::DstPort.index()] = DimRange::new(512, 2048);
        let mut c = Rule::default_rule(1);
        c.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let rs = RuleSet::new(vec![a, b, c, Rule::default_rule(0)]);
        DecisionTree::new(&rs)
    }

    #[test]
    fn distinct_ranges_counts_projections() {
        let t = tree();
        // DstPort projections: [0,1024), [512,2048), full, full -> 3 distinct.
        assert_eq!(distinct_ranges(&t, t.root(), Dim::DstPort), 3);
        // Proto: exact(6), full x3 -> 2 distinct.
        assert_eq!(distinct_ranges(&t, t.root(), Dim::Proto), 2);
        // SrcIp: all full -> 1.
        assert_eq!(distinct_ranges(&t, t.root(), Dim::SrcIp), 1);
    }

    #[test]
    fn interior_endpoints_excludes_space_bounds() {
        let t = tree();
        assert_eq!(interior_endpoints(&t, t.root(), Dim::DstPort), vec![512, 1024, 2048]);
        assert_eq!(interior_endpoints(&t, t.root(), Dim::Proto), vec![6, 7]);
        assert!(interior_endpoints(&t, t.root(), Dim::SrcIp).is_empty());
    }

    #[test]
    fn simulate_cut_matches_real_cut() {
        let mut t = tree();
        let sim = simulate_cut(&t, t.root(), Dim::DstPort, 4);
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        let real: Vec<usize> = kids.iter().map(|&k| t.node(k).num_rules()).collect();
        assert_eq!(sim, real);
    }

    #[test]
    fn simulate_multicut_matches_real() {
        let mut t = tree();
        let dims = [(Dim::DstPort, 2), (Dim::Proto, 2)];
        let sim = simulate_multicut(&t, t.root(), &dims);
        let kids = t.multicut_node(t.root(), &dims);
        let real: Vec<usize> = kids.iter().map(|&k| t.node(k).num_rules()).collect();
        assert_eq!(sim, real);
    }

    #[test]
    fn dims_ordered_by_discrimination() {
        let t = tree();
        let order = dims_by_distinct_ranges(&t, t.root());
        assert_eq!(order[0].0, Dim::DstPort);
        assert_eq!(order[0].1, 3);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn build_limits_stop_conditions() {
        let t = tree();
        let tight = BuildLimits { binth: 10, ..Default::default() };
        assert!(tight.must_stop(&t, t.root())); // 4 rules <= 10
        let loose = BuildLimits { binth: 2, max_depth: 0, ..Default::default() };
        assert!(loose.must_stop(&t, t.root())); // depth 0 >= 0
        let nodes = BuildLimits { binth: 2, max_depth: 100, max_nodes: 1 };
        assert!(nodes.must_stop(&t, t.root())); // already 1 node
    }
}
