//! HiCuts: hierarchical intelligent cuttings (Gupta & McKeown, 1999).
//!
//! At every node HiCuts (i) picks the dimension whose rule projections
//! are most distinct, and (ii) picks the largest power-of-two cut count
//! whose *space measure* — total child rule references plus the child
//! pointers themselves — stays within `spfac * rules(node)`. Children
//! apply the rule-overlap optimisation (drop rules shadowed by a
//! covering higher-priority rule).

use crate::common::{dims_by_distinct_ranges, simulate_cut, BuildLimits};
use classbench::{Dim, RuleSet};
use dtree::{DecisionTree, NodeId};

/// HiCuts tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct HiCutsConfig {
    /// Leaf threshold and safety limits.
    pub limits: BuildLimits,
    /// Space factor: budget multiplier for the per-node space measure.
    /// The original paper uses 1.5–4; larger builds shallower, fatter
    /// trees.
    pub spfac: f64,
    /// Upper bound on cuts per node (power of two).
    pub max_cuts: usize,
    /// Apply the rule-overlap (covered-rule truncation) optimisation.
    pub rule_overlap: bool,
}

impl Default for HiCutsConfig {
    fn default() -> Self {
        HiCutsConfig {
            limits: BuildLimits::default(),
            spfac: 4.0,
            max_cuts: 64,
            rule_overlap: true,
        }
    }
}

/// Space measure of a candidate cut: children rule references plus one
/// pointer per child (HiCuts' `sm()` heuristic).
fn space_measure(child_counts: &[usize]) -> usize {
    child_counts.iter().sum::<usize>() + child_counts.len()
}

/// Pick the number of cuts for `dim`: the largest power of two within
/// `max_cuts` whose space measure stays within budget, provided it
/// makes progress. Returns `None` when even 2 cuts make no progress.
fn choose_ncuts(
    tree: &DecisionTree,
    id: NodeId,
    dim: Dim,
    spfac: f64,
    max_cuts: usize,
) -> Option<usize> {
    let n = tree.node(id).num_rules();
    let budget = (spfac * n as f64).max(4.0) as usize;
    let range_len = tree.node(id).space.range(dim).len();
    let mut best: Option<usize> = None;
    let mut ncuts = 2usize;
    while ncuts <= max_cuts && (ncuts as u64) <= range_len.max(2) {
        let counts = simulate_cut(tree, id, dim, ncuts);
        if space_measure(&counts) > budget {
            break;
        }
        // Progress: some child strictly smaller than the parent.
        if counts.iter().any(|&c| c < n) {
            best = Some(ncuts);
        }
        ncuts *= 2;
    }
    best
}

/// Build a HiCuts tree for `rules`.
pub fn build_hicuts(rules: &RuleSet, cfg: &HiCutsConfig) -> DecisionTree {
    let mut tree = DecisionTree::new(rules);
    let mut stack: Vec<NodeId> = vec![tree.root()];
    while let Some(id) = stack.pop() {
        if cfg.limits.must_stop(&tree, id) {
            continue;
        }
        // Try dimensions in decreasing discrimination order until one
        // admits a budget-respecting, progress-making cut.
        let mut applied = false;
        for (dim, distinct) in dims_by_distinct_ranges(&tree, id) {
            if distinct <= 1 {
                break; // no dimension separates the rules
            }
            if let Some(ncuts) = choose_ncuts(&tree, id, dim, cfg.spfac, cfg.max_cuts) {
                let children = tree.cut_node(id, dim, ncuts);
                for c in children {
                    if cfg.rule_overlap {
                        tree.truncate_covered(c);
                    }
                    stack.push(c);
                }
                applied = true;
                break;
            }
        }
        let _ = applied; // node stays a leaf when no dimension worked
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
    use dtree::{validate::assert_tree_valid, TreeStats};

    #[test]
    fn builds_valid_trees_for_all_families() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 300).with_seed(1));
            let tree = build_hicuts(&rs, &HiCutsConfig::default());
            assert_tree_valid(&tree, 400, 11);
            let stats = TreeStats::compute(&tree);
            assert!(stats.time > 1, "{fam}: tree should have real depth");
        }
    }

    #[test]
    fn respects_binth() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 400).with_seed(2));
        let cfg = HiCutsConfig::default();
        let tree = build_hicuts(&rs, &cfg);
        // Every leaf either satisfies binth or could make no progress.
        for id in tree.leaf_ids() {
            let n = tree.node(id).num_rules();
            if n > cfg.limits.binth {
                // Oversized leaves are only allowed when no dimension
                // could separate their rules within budget.
                let any_progress = dims_by_distinct_ranges(&tree, id)
                    .iter()
                    .any(|&(d, _)| choose_ncuts(&tree, id, d, cfg.spfac, cfg.max_cuts).is_some());
                assert!(!any_progress, "leaf with {n} rules could still be cut");
            }
        }
    }

    #[test]
    fn spfac_trades_depth_for_space() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 500).with_seed(3));
        let narrow = build_hicuts(&rs, &HiCutsConfig { spfac: 1.5, ..Default::default() });
        let wide = build_hicuts(&rs, &HiCutsConfig { spfac: 8.0, ..Default::default() });
        let sn = TreeStats::compute(&narrow);
        let sw = TreeStats::compute(&wide);
        // More space budget must not *hurt* depth.
        assert!(sw.time <= sn.time, "wide {sw} vs narrow {sn}");
    }

    #[test]
    fn rule_overlap_reduces_replication() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 300).with_seed(4));
        let with = build_hicuts(&rs, &HiCutsConfig { rule_overlap: true, ..Default::default() });
        let without =
            build_hicuts(&rs, &HiCutsConfig { rule_overlap: false, ..Default::default() });
        let sw = TreeStats::compute(&with);
        let so = TreeStats::compute(&without);
        assert!(sw.replication <= so.replication);
        assert_tree_valid(&with, 300, 5);
        assert_tree_valid(&without, 300, 6);
    }

    #[test]
    fn classification_agrees_with_ground_truth_on_trace() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 250).with_seed(7));
        let tree = build_hicuts(&rs, &HiCutsConfig::default());
        let trace = classbench::generate_trace(&rs, &classbench::TraceConfig::new(500));
        for p in &trace {
            assert_eq!(tree.classify(p), rs.classify(p));
        }
    }

    #[test]
    fn depth_limit_is_respected() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 300).with_seed(8));
        let cfg = HiCutsConfig {
            limits: BuildLimits { binth: 2, max_depth: 3, ..Default::default() },
            ..Default::default()
        };
        let tree = build_hicuts(&rs, &cfg);
        assert!(TreeStats::compute(&tree).max_depth <= 3);
    }
}
