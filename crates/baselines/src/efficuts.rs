//! EffiCuts: separable trees + equi-dense cuts (Vamanan et al.,
//! SIGCOMM 2010).
//!
//! EffiCuts attacks rule replication with two ideas this module
//! implements:
//!
//! 1. **Separable trees** — partition the rules by their per-dimension
//!    "largeness" signature (a rule is *large* in a dimension when it
//!    covers more than `largeness_threshold` of the full span). Rules
//!    that are large in the same set of dimensions never force each
//!    other to replicate, so each signature gets its own tree.
//!    **Selective tree merging** then folds small partitions into a
//!    partition whose signature differs in one dimension, bounding the
//!    number of trees (and thus lookup cost).
//! 2. **Equi-dense cuts** — instead of equal-size cuts, cut at rule
//!    boundaries chosen so children receive roughly equal numbers of
//!    rules, eliminating the empty/duplicate children of equal-size
//!    cutting.
//!
//! The paper's NeuroCuts uses this module's partitioner as its
//! "EffiCuts partition action" (§4, §6.3).

use crate::common::{dims_by_distinct_ranges, interior_endpoints, BuildLimits};
use classbench::{Dim, RuleSet, DIMS};
use dtree::{DecisionTree, NodeId, RuleId};

/// EffiCuts tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EffiCutsConfig {
    /// Leaf threshold and safety limits.
    pub limits: BuildLimits,
    /// Coverage fraction above which a rule counts as "large" in a
    /// dimension (0.5 in the paper).
    pub largeness_threshold: f64,
    /// Partitions smaller than this are merged into a 1-bit-different
    /// neighbour (selective tree merging).
    pub min_partition: usize,
    /// Maximum children per equi-dense cut.
    pub max_fanout: usize,
}

impl Default for EffiCutsConfig {
    fn default() -> Self {
        EffiCutsConfig {
            limits: BuildLimits::default(),
            largeness_threshold: 0.5,
            min_partition: 16,
            max_fanout: 16,
        }
    }
}

/// Largeness signature of a rule: bit `d` set when the rule is large in
/// dimension `d`.
pub fn largeness_signature(rule: &classbench::Rule, threshold: f64) -> u8 {
    let mut sig = 0u8;
    for &d in &DIMS {
        if rule.largeness(d) > threshold {
            sig |= 1 << d.index();
        }
    }
    sig
}

/// Partition rule ids by largeness signature, then apply selective tree
/// merging: every partition smaller than `min_partition` is folded into
/// the largest partition whose signature differs in exactly one bit
/// (preferring supersets, which can only make rules *smaller* relative
/// to their tree). Returns the rule-id groups, largest first.
pub fn partition_by_largeness(
    tree: &DecisionTree,
    ids: &[RuleId],
    threshold: f64,
    min_partition: usize,
) -> Vec<Vec<RuleId>> {
    let mut by_sig: std::collections::BTreeMap<u8, Vec<RuleId>> = Default::default();
    for &id in ids {
        let sig = largeness_signature(tree.rule(id), threshold);
        by_sig.entry(sig).or_default().push(id);
    }

    // Selective merging: smallest partitions first.
    loop {
        let sigs: Vec<u8> = by_sig.keys().copied().collect();
        let Some(&small) = sigs
            .iter()
            .filter(|&&s| by_sig[&s].len() < min_partition)
            .min_by_key(|&&s| by_sig[&s].len())
        else {
            break;
        };
        if by_sig.len() <= 1 {
            break;
        }
        // Best 1-bit neighbour: prefer supersets (extra large dims),
        // then the largest partition.
        let neighbour = sigs
            .iter()
            .filter(|&&s| s != small && (s ^ small).count_ones() == 1)
            .max_by_key(|&&s| ((s & small) == small, by_sig[&s].len()));
        let target = match neighbour {
            Some(&t) => t,
            // No 1-bit neighbour: merge into the overall largest other
            // partition to keep the tree count bounded.
            None => {
                *sigs.iter().filter(|&&s| s != small).max_by_key(|&&s| by_sig[&s].len()).unwrap()
            }
        };
        let moved = by_sig.remove(&small).unwrap();
        by_sig.get_mut(&target).unwrap().extend(moved);
    }

    let mut groups: Vec<Vec<RuleId>> = by_sig.into_values().collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    groups
}

/// Equi-dense boundaries for cutting `dim` at node `id` into at most
/// `fanout` children with roughly equal rule counts. Returns `None`
/// when fewer than two children are possible.
fn equi_dense_bounds(tree: &DecisionTree, id: NodeId, dim: Dim, fanout: usize) -> Option<Vec<u64>> {
    let node = tree.node(id);
    let space = *node.space.range(dim);
    let endpoints = interior_endpoints(tree, id, dim);
    if endpoints.is_empty() {
        return None;
    }
    let n = node.num_rules();
    let target = n.div_ceil(fanout).max(1);

    // Sweep the endpoints, counting rules that *start* before each
    // candidate; emit a boundary whenever a chunk has accumulated
    // roughly `target` rule starts. This balances rule density without
    // simulating every child.
    let mut starts: Vec<u64> = tree
        .rules_at(id)
        .iter()
        .filter(|&&r| tree.is_active(r))
        .map(|&r| tree.rule(r).range(dim).intersect(&space).lo)
        .collect();
    starts.sort_unstable();

    let mut bounds = vec![space.lo];
    for &e in &endpoints {
        let since_last = starts.iter().filter(|&&s| s >= *bounds.last().unwrap() && s < e).count();
        if since_last >= target && bounds.len() < fanout {
            bounds.push(e);
        }
    }
    bounds.push(space.hi);
    bounds.dedup();
    if bounds.len() >= 3 {
        Some(bounds)
    } else {
        None
    }
}

/// Grow one separable tree (below one partition child) with equi-dense
/// cuts.
fn grow_equidense(tree: &mut DecisionTree, root: NodeId, cfg: &EffiCutsConfig) {
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if cfg.limits.must_stop(tree, id) {
            continue;
        }
        let n = tree.node(id).num_rules();
        let mut expanded = false;
        for (dim, distinct) in dims_by_distinct_ranges(tree, id) {
            if distinct <= 1 {
                break;
            }
            if let Some(bounds) = equi_dense_bounds(tree, id, dim, cfg.max_fanout) {
                // Progress check: some child must shrink.
                let mut trial = tree.clone_node_counts(id, dim, &bounds);
                trial.sort_unstable();
                if trial.iter().all(|&c| c >= n) {
                    continue;
                }
                let children = tree.dense_cut_node(id, dim, bounds);
                for c in children {
                    tree.truncate_covered(c);
                    stack.push(c);
                }
                expanded = true;
                break;
            }
        }
        let _ = expanded;
    }
}

/// Rule counts each dense-cut child would receive (progress check).
trait DenseCutProbe {
    fn clone_node_counts(&self, id: NodeId, dim: Dim, bounds: &[u64]) -> Vec<usize>;
}

impl DenseCutProbe for DecisionTree {
    fn clone_node_counts(&self, id: NodeId, dim: Dim, bounds: &[u64]) -> Vec<usize> {
        self.dense_child_counts(id, dim, bounds)
    }
}

/// Build an EffiCuts classifier: a top-level rule partition by largeness
/// signature (with selective merging), one equi-dense tree per group.
pub fn build_efficuts(rules: &RuleSet, cfg: &EffiCutsConfig) -> DecisionTree {
    let mut tree = DecisionTree::new(rules);
    let root = tree.root();
    let all = tree.rules_at(root).to_vec();
    let groups = partition_by_largeness(&tree, &all, cfg.largeness_threshold, cfg.min_partition);
    let children: Vec<NodeId> =
        if groups.len() >= 2 { tree.partition_node(root, groups) } else { vec![root] };
    for c in children {
        grow_equidense(&mut tree, c, cfg);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, DimRange, GeneratorConfig, Rule};
    use dtree::{validate::assert_tree_valid, NodeKind, TreeStats};

    #[test]
    fn signature_flags_large_dims() {
        let r = Rule::default_rule(0);
        assert_eq!(largeness_signature(&r, 0.5), 0b11111);
        let mut narrow = Rule::default_rule(0);
        narrow.ranges[Dim::SrcIp.index()] = DimRange::exact(5);
        narrow.ranges[Dim::Proto.index()] = DimRange::exact(6);
        assert_eq!(
            largeness_signature(&narrow, 0.5),
            (1 << Dim::DstIp.index()) | (1 << Dim::SrcPort.index()) | (1 << Dim::DstPort.index())
        );
    }

    #[test]
    fn partition_groups_disjoint_and_cover() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 300).with_seed(41));
        let tree = DecisionTree::new(&rs);
        let all = tree.rules_at(tree.root()).to_vec();
        let groups = partition_by_largeness(&tree, &all, 0.5, 16);
        let mut seen: Vec<RuleId> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        let mut expected = all.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
        // Merging keeps small fragments out.
        for g in &groups[..groups.len() - 1] {
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn merging_reduces_partition_count() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 300).with_seed(42));
        let tree = DecisionTree::new(&rs);
        let all = tree.rules_at(tree.root()).to_vec();
        let merged = partition_by_largeness(&tree, &all, 0.5, 32);
        let unmerged = partition_by_largeness(&tree, &all, 0.5, 1);
        assert!(merged.len() <= unmerged.len());
    }

    #[test]
    fn builds_valid_trees_for_all_families() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 300).with_seed(43));
            let tree = build_efficuts(&rs, &EffiCutsConfig::default());
            assert_tree_valid(&tree, 400, 44);
        }
    }

    #[test]
    fn root_is_a_partition_on_mixed_rule_sets() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 400).with_seed(45));
        let tree = build_efficuts(&rs, &EffiCutsConfig::default());
        assert!(matches!(tree.node(tree.root()).kind, NodeKind::Partition { .. }));
    }

    #[test]
    fn much_less_replication_than_hicuts_on_fw() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 500).with_seed(46));
        let ef = TreeStats::compute(&build_efficuts(&rs, &EffiCutsConfig::default()));
        let hi = TreeStats::compute(&crate::hicuts::build_hicuts(
            &rs,
            &crate::hicuts::HiCutsConfig::default(),
        ));
        // The EffiCuts headline: drastically less memory on
        // wildcard-heavy sets, at some cost in classification time.
        assert!(ef.bytes_per_rule < hi.bytes_per_rule, "efficuts {ef} vs hicuts {hi}");
        assert!(ef.replication < hi.replication);
    }

    #[test]
    fn trace_agreement() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 250).with_seed(47));
        let tree = build_efficuts(&rs, &EffiCutsConfig::default());
        let trace = classbench::generate_trace(&rs, &classbench::TraceConfig::new(400));
        for p in &trace {
            assert_eq!(tree.classify(p), rs.classify(p));
        }
    }
}
