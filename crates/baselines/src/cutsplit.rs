//! CutSplit: cutting + splitting combined (Li et al., INFOCOM 2018).
//!
//! CutSplit observes that equal-size cuts (HiCuts) are cheap and
//! effective while a field is *small* (specific prefixes), and that
//! rule-boundary splits (HyperSplit) are memory-efficient once rules
//! get dense and overlapping. It therefore:
//!
//! 1. partitions rules into four subsets by which IP fields are small
//!    (source small & destination small / only source / only
//!    destination / neither);
//! 2. runs **FiCuts** — fixed-dimension equal-size cuts in exactly the
//!    small field(s) — until nodes fall below a pre-cut threshold;
//! 3. finishes each remaining node with HyperSplit post-splitting.

use crate::common::{simulate_cut, simulate_multicut, BuildLimits};
use crate::hypersplit::{split_subtrees, HyperSplitConfig};
use classbench::{Dim, RuleSet};
use dtree::{DecisionTree, NodeId, RuleId};

/// CutSplit tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CutSplitConfig {
    /// Leaf threshold and safety limits.
    pub limits: BuildLimits,
    /// A rule's IP field is "small" when it covers at most this fraction
    /// of the address space (the paper's /16 boundary = `2^-16`).
    pub small_threshold: f64,
    /// FiCuts keeps cutting while a node holds more rules than this.
    pub precut_threshold: usize,
    /// Equal-size cuts per FiCuts step (per dimension).
    pub ficuts_fanout: usize,
}

impl Default for CutSplitConfig {
    fn default() -> Self {
        CutSplitConfig {
            limits: BuildLimits { max_depth: 200, ..Default::default() },
            small_threshold: 1.0 / 65536.0, // /16 or longer prefixes
            precut_threshold: 32,
            ficuts_fanout: 8,
        }
    }
}

/// The four CutSplit subsets, keyed by which IP dimensions are small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the `Small` postfix is the paper's term
enum Subset {
    /// Both source and destination IP are small: FiCuts in both.
    BothSmall,
    /// Only the source IP is small.
    SrcSmall,
    /// Only the destination IP is small.
    DstSmall,
    /// Neither is small: straight to HyperSplit.
    NeitherSmall,
}

fn classify_rule(tree: &DecisionTree, id: RuleId, threshold: f64) -> Subset {
    let src_small = tree.rule(id).largeness(Dim::SrcIp) <= threshold;
    let dst_small = tree.rule(id).largeness(Dim::DstIp) <= threshold;
    match (src_small, dst_small) {
        (true, true) => Subset::BothSmall,
        (true, false) => Subset::SrcSmall,
        (false, true) => Subset::DstSmall,
        (false, false) => Subset::NeitherSmall,
    }
}

/// FiCuts: keep applying fixed-dimension equal-size cuts below `root`
/// while nodes hold more than `precut_threshold` rules and the cut makes
/// progress; leave the rest for post-splitting.
fn ficuts(
    tree: &mut DecisionTree,
    root: NodeId,
    dims: &[Dim],
    cfg: &CutSplitConfig,
) -> Vec<NodeId> {
    let mut stack = vec![root];
    let mut remaining = Vec::new();
    while let Some(id) = stack.pop() {
        let n = tree.node(id).num_rules();
        if n <= cfg.precut_threshold
            || tree.node(id).depth >= cfg.limits.max_depth / 2
            || tree.num_nodes() >= cfg.limits.max_nodes
        {
            remaining.push(id);
            continue;
        }
        let children = match dims {
            [d] => {
                let fan =
                    cfg.ficuts_fanout.min(tree.node(id).space.range(*d).len().max(2) as usize);
                if simulate_cut(tree, id, *d, fan).iter().all(|&c| c >= n) {
                    remaining.push(id);
                    continue;
                }
                tree.cut_node(id, *d, fan)
            }
            [a, b] => {
                let fan = (cfg.ficuts_fanout / 2).max(2);
                let spec = [(*a, fan), (*b, fan)];
                if simulate_multicut(tree, id, &spec).iter().all(|&c| c >= n) {
                    remaining.push(id);
                    continue;
                }
                tree.multicut_node(id, &spec)
            }
            _ => {
                remaining.push(id);
                continue;
            }
        };
        for c in children {
            tree.truncate_covered(c);
            stack.push(c);
        }
    }
    remaining
}

/// Build a CutSplit classifier for `rules`.
pub fn build_cutsplit(rules: &RuleSet, cfg: &CutSplitConfig) -> DecisionTree {
    let mut tree = DecisionTree::new(rules);
    let root = tree.root();
    let all = tree.rules_at(root).to_vec();

    let mut groups: Vec<(Subset, Vec<RuleId>)> = vec![
        (Subset::BothSmall, Vec::new()),
        (Subset::SrcSmall, Vec::new()),
        (Subset::DstSmall, Vec::new()),
        (Subset::NeitherSmall, Vec::new()),
    ];
    for &id in &all {
        let s = classify_rule(&tree, id, cfg.small_threshold);
        groups.iter_mut().find(|(g, _)| *g == s).unwrap().1.push(id);
    }
    groups.retain(|(_, ids)| !ids.is_empty());

    let children: Vec<(Subset, NodeId)> = if groups.len() >= 2 {
        let subsets: Vec<Subset> = groups.iter().map(|(s, _)| *s).collect();
        let ids = tree.partition_node(root, groups.into_iter().map(|(_, v)| v).collect());
        subsets.into_iter().zip(ids).collect()
    } else {
        vec![(groups.pop().map(|(s, _)| s).unwrap_or(Subset::NeitherSmall), root)]
    };

    let split_cfg = HyperSplitConfig { limits: cfg.limits, ..Default::default() };
    for (subset, node) in children {
        let dims: &[Dim] = match subset {
            Subset::BothSmall => &[Dim::SrcIp, Dim::DstIp],
            Subset::SrcSmall => &[Dim::SrcIp],
            Subset::DstSmall => &[Dim::DstIp],
            Subset::NeitherSmall => &[],
        };
        let mut remaining =
            if dims.is_empty() { vec![node] } else { ficuts(&mut tree, node, dims, cfg) };
        split_subtrees(&mut tree, &mut remaining, &split_cfg);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
    use dtree::{validate::assert_tree_valid, NodeKind, TreeStats};

    #[test]
    fn builds_valid_trees_for_all_families() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 300).with_seed(51));
            let tree = build_cutsplit(&rs, &CutSplitConfig::default());
            assert_tree_valid(&tree, 400, 52);
        }
    }

    #[test]
    fn partitions_by_small_fields() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 400).with_seed(53));
        let tree = build_cutsplit(&rs, &CutSplitConfig::default());
        // FW sets mix specific and wildcard IPs, so the root partitions.
        assert!(matches!(tree.node(tree.root()).kind, NodeKind::Partition { .. }));
    }

    #[test]
    fn uses_both_cuts_and_splits() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 500).with_seed(54));
        let tree = build_cutsplit(&rs, &CutSplitConfig::default());
        let cuts = tree
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Cut { .. } | NodeKind::MultiCut { .. }))
            .count();
        let splits =
            tree.nodes().iter().filter(|n| matches!(n.kind, NodeKind::Split { .. })).count();
        assert!(cuts > 0, "FiCuts phase should cut");
        assert!(splits > 0, "post-splitting should split");
    }

    #[test]
    fn memory_competitive_with_efficuts() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 500).with_seed(55));
        let cs = TreeStats::compute(&build_cutsplit(&rs, &CutSplitConfig::default()));
        let hi = TreeStats::compute(&crate::hicuts::build_hicuts(
            &rs,
            &crate::hicuts::HiCutsConfig::default(),
        ));
        // CutSplit's claim: much less memory than pure cutting.
        assert!(cs.bytes_per_rule < hi.bytes_per_rule, "cutsplit {cs} vs hicuts {hi}");
    }

    #[test]
    fn trace_agreement() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 250).with_seed(56));
        let tree = build_cutsplit(&rs, &CutSplitConfig::default());
        let trace = classbench::generate_trace(&rs, &classbench::TraceConfig::new(400));
        for p in &trace {
            assert_eq!(tree.classify(p), rs.classify(p));
        }
    }
}
