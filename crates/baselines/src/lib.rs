//! Hand-tuned decision-tree baselines the paper compares against (§6):
//!
//! * [`hicuts`] — HiCuts (Gupta & McKeown, Hot Interconnects 1999):
//!   equal-size cuts in one dimension per node, cut count bounded by a
//!   space factor `spfac`.
//! * [`hypercuts`] — HyperCuts (Singh et al., SIGCOMM 2003): equal-size
//!   cuts in *several* dimensions at once, plus region compaction.
//! * [`hypersplit`] — HyperSplit (Qi et al., INFOCOM 2009): binary
//!   rule-boundary splits with balanced child weights; also the
//!   post-splitting stage of CutSplit.
//! * [`efficuts`] — EffiCuts (Vamanan et al., SIGCOMM 2010): separable
//!   trees (partition rules by per-dimension "largeness"), selective
//!   tree merging, and equi-dense cuts.
//! * [`cutsplit`] — CutSplit (Li et al., INFOCOM 2018): FiCuts
//!   (fixed-dimension equal-size pre-cutting) combined with HyperSplit
//!   post-splitting, partitioned by small fields.
//!
//! All five build on the same [`dtree`] substrate NeuroCuts uses, per
//! the paper's methodology (§5), and every builder's output is checked
//! against the linear-scan ground truth in tests.

#![warn(missing_docs)]

pub mod classifier;
pub mod common;
pub mod cutsplit;
pub mod efficuts;
pub mod hicuts;
pub mod hypercuts;
pub mod hypersplit;

pub use classifier::{
    build_baseline_classifier, build_baseline_compiled, Classifier, ClassifierStats,
    CompiledClassifier, CutSplitClassifier, EffiCutsClassifier, HiCutsClassifier,
    HyperCutsClassifier, HyperSplitClassifier, BASELINE_CLASSIFIERS,
};
pub use common::BuildLimits;
pub use cutsplit::{build_cutsplit, CutSplitConfig};
pub use efficuts::{build_efficuts, partition_by_largeness, EffiCutsConfig};
pub use hicuts::{build_hicuts, HiCutsConfig};
pub use hypercuts::{build_hypercuts, HyperCutsConfig};
pub use hypersplit::{build_hypersplit, HyperSplitConfig};
