//! A minimal dense neural-network library for the NeuroCuts policy.
//!
//! The paper's model (Appendix B) is a fully-connected network with two
//! tanh hidden layers shared between the policy heads and the value
//! function. That topology is small and fixed, so instead of pulling in
//! a tensor framework we implement exactly what is needed with
//! hand-derived reverse-mode gradients:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the handful of BLAS-like
//!   kernels the model needs;
//! * [`Linear`] — an affine layer with gradient accumulation and Adam
//!   state;
//! * [`categorical`] — masked categorical distributions over logits
//!   (sampling, log-probabilities, entropy, and their gradients);
//! * [`PolicyValueNet`] — the shared-trunk two-head policy + value
//!   network, with `forward` / `backward` / `adam_step`, plus the
//!   allocation-free batched inference path ([`InferBuffer`] /
//!   [`PolicyValueNet::infer`]) that the vectorised rollout collector
//!   drives with one matrix-matrix pass per environment step.
//!
//! Every gradient path is covered by finite-difference checks in the
//! test suite, and the batched inference path is proven bit-identical
//! to the scalar one.

#![warn(missing_docs)]

pub mod adam;
pub mod categorical;
pub mod linear;
pub mod matrix;
pub mod policy_value;

pub use adam::AdamConfig;
pub use categorical::MaskedCategorical;
pub use linear::Linear;
pub use matrix::Matrix;
pub use policy_value::{ForwardCache, InferBuffer, NetConfig, PolicyValueNet};
