//! Row-major `f32` matrices with the few kernels the model needs.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// `rows * cols` values, row-major.
    pub data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the warm-up state of reusable buffers
    /// ([`crate::InferBuffer`]); every `*_into` kernel resizes it.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation scaled by `gain` — the
    /// standard init for tanh networks; policy output layers use a small
    /// gain so initial policies are near-uniform.
    pub fn xavier(rows: usize, cols: usize, gain: f32, rng: &mut impl Rng) -> Self {
        let limit = gain * (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..=limit)).collect();
        Matrix { rows, cols, data }
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self[r][c]`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set `self[r][c]`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `x · wᵀ`: `[n, in] · [out, in]ᵀ -> [n, out]`.
    ///
    /// The weight layout `[out, in]` keeps the inner loop over the
    /// weight row contiguous in both the forward and input-gradient
    /// kernels.
    pub fn matmul_nt(&self, w: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_nt_into(w, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a caller-owned output buffer, resized
    /// and overwritten in place. Reusing one buffer across calls makes
    /// steady-state batched inference allocation-free (the buffer only
    /// grows).
    ///
    /// The loop is blocked two ways. Over input rows: each block of
    /// rows (sized to stay L1-resident) is swept by every weight row
    /// before the next block starts, so the weight matrix — the
    /// dominant memory traffic; a `[512, 278]` layer is ~570 KB — is
    /// streamed once per *block* instead of once per *row*. And over
    /// **weight rows, eight at a time**: a lone `f32` dot product is a
    /// single serial dependency chain (one add per FMA latency);
    /// accumulating eight output columns side by side gives the core
    /// eight independent chains to overlap, which is where most of the
    /// kernel's throughput comes from. Neither blocking changes any
    /// element's reduction: every output is still the same `k`-ordered
    /// dot product, so results are **bit-identical** to the naive
    /// row-at-a-time kernel for every batch size — the determinism
    /// contract the vectorised collector's tests pin.
    // nc-lint: kernel
    pub fn matmul_nt_into(&self, w: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, w.cols, "inner dimension mismatch");
        out.rows = self.rows;
        out.cols = w.rows;
        // Resize without clearing: every element is written below, and
        // a shape-stable steady state (the hot inference case) must not
        // pay a per-call memset.
        out.data.resize(self.rows * w.rows, 0.0);
        // ~16 rows × 4 B × up to 512 columns stays within L1 alongside
        // eight weight rows.
        const ROW_BLOCK: usize = 16;
        const J_BLOCK: usize = 8;
        for r0 in (0..self.rows).step_by(ROW_BLOCK) {
            let r1 = (r0 + ROW_BLOCK).min(self.rows);
            let mut j0 = 0;
            while j0 + J_BLOCK <= w.rows {
                // Eight weight rows swept together: eight independent
                // accumulator chains per input row. Input rows are
                // additionally paired so each weight load feeds two
                // rows' chains (16 chains in flight, half the loads
                // per multiply-add).
                let wr: [&[f32]; J_BLOCK] = std::array::from_fn(|i| w.row(j0 + i));
                let mut r = r0;
                while r + 2 <= r1 {
                    let xa = self.row(r);
                    let xb = self.row(r + 1);
                    let mut acc_a = [0.0f32; J_BLOCK];
                    let mut acc_b = [0.0f32; J_BLOCK];
                    for (k, (&xav, &xbv)) in xa.iter().zip(xb).enumerate() {
                        for i in 0..J_BLOCK {
                            let wv = wr[i][k];
                            acc_a[i] += xav * wv;
                            acc_b[i] += xbv * wv;
                        }
                    }
                    out.data[r * w.rows + j0..r * w.rows + j0 + J_BLOCK].copy_from_slice(&acc_a);
                    out.data[(r + 1) * w.rows + j0..(r + 1) * w.rows + j0 + J_BLOCK]
                        .copy_from_slice(&acc_b);
                    r += 2;
                }
                if r < r1 {
                    let x = self.row(r);
                    let mut acc = [0.0f32; J_BLOCK];
                    for (k, &xv) in x.iter().enumerate() {
                        for (a, wrj) in acc.iter_mut().zip(&wr) {
                            *a += xv * wrj[k];
                        }
                    }
                    out.data[r * w.rows + j0..r * w.rows + j0 + J_BLOCK].copy_from_slice(&acc);
                }
                j0 += J_BLOCK;
            }
            // Remainder columns, one chain each.
            for j in j0..w.rows {
                let wr = w.row(j);
                for r in r0..r1 {
                    let x = self.row(r);
                    let mut acc = 0.0f32;
                    for k in 0..x.len() {
                        acc += x[k] * wr[k];
                    }
                    out.data[r * w.rows + j] = acc;
                }
            }
        }
    }

    /// `dy · w`: `[n, out] · [out, in] -> [n, in]` (input gradient).
    pub fn matmul_nn(&self, w: &Matrix) -> Matrix {
        assert_eq!(self.cols, w.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, w.cols);
        for r in 0..self.rows {
            let dy = self.row(r);
            let o = out.row_mut(r);
            for (j, &d) in dy.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                let wr = w.row(j);
                for k in 0..o.len() {
                    o[k] += d * wr[k];
                }
            }
        }
        out
    }

    /// `dyᵀ · x` accumulated into `acc`: `[n, out]ᵀ · [n, in] -> [out,
    /// in]` (weight gradient).
    pub fn accumulate_tn(&self, x: &Matrix, acc: &mut Matrix) {
        assert_eq!(self.rows, x.rows, "batch mismatch");
        assert_eq!(acc.rows, self.cols);
        assert_eq!(acc.cols, x.cols);
        for r in 0..self.rows {
            let dy = self.row(r);
            let xr = x.row(r);
            for (j, &d) in dy.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                let a = acc.row_mut(j);
                for k in 0..xr.len() {
                    a[k] += d * xr[k];
                }
            }
        }
    }

    /// Element-wise `tanh`.
    pub fn tanh(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v.tanh()).collect(),
        }
    }

    /// Element-wise `tanh` in place (the batched-inference variant of
    /// [`Matrix::tanh`]; identical values, no allocation).
    pub fn tanh_inplace(&mut self) {
        for v in &mut self.data {
            *v = v.tanh();
        }
    }

    /// Backprop through tanh: `dx = dy ⊙ (1 - y²)` where `y = tanh(x)`.
    pub fn tanh_backward(dy: &Matrix, y: &Matrix) -> Matrix {
        assert_eq!(dy.data.len(), y.data.len());
        Matrix {
            rows: dy.rows,
            cols: dy.cols,
            data: dy.data.iter().zip(y.data.iter()).map(|(&d, &yv)| d * (1.0 - yv * yv)).collect(),
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Fill with zeros (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reset to an empty `0 × cols` matrix, keeping the allocation, so
    /// rows can be appended with [`Matrix::push_row`]. This is how the
    /// vectorised rollout collector assembles each step's observation
    /// batch without reallocating.
    pub fn reset(&mut self, cols: usize) {
        self.rows = 0;
        self.cols = cols;
        self.data.clear();
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the matrix width.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Stack row slices into a matrix.
    ///
    /// # Panics
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matmul_nt_small() {
        // x = [[1,2],[3,4]], w = [[1,0],[0,1],[1,1]] (3 outputs)
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let y = x.matmul_nt(&w);
        assert_eq!(y.data, vec![1.0, 2.0, 3.0, 3.0, 4.0, 7.0]);
    }

    #[test]
    fn matmul_nn_is_transpose_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Matrix::xavier(4, 3, 1.0, &mut rng);
        let w = Matrix::xavier(5, 3, 1.0, &mut rng);
        // (x · wᵀ) · w == x · (wᵀw); just check shapes and one entry by hand.
        let y = x.matmul_nt(&w);
        let back = y.matmul_nn(&w);
        assert_eq!(back.rows, 4);
        assert_eq!(back.cols, 3);
        let mut expect = 0.0f32;
        for j in 0..5 {
            expect += y.get(0, j) * w.get(j, 0);
        }
        assert!((back.get(0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn accumulate_tn_matches_manual_outer_product() {
        let dy = Matrix::from_vec(1, 2, vec![2.0, -1.0]);
        let x = Matrix::from_vec(1, 3, vec![1.0, 0.5, -2.0]);
        let mut acc = Matrix::zeros(2, 3);
        dy.accumulate_tn(&x, &mut acc);
        assert_eq!(acc.data, vec![2.0, 1.0, -4.0, -1.0, -0.5, 2.0]);
        // Accumulation adds.
        dy.accumulate_tn(&x, &mut acc);
        assert_eq!(acc.get(0, 0), 4.0);
    }

    #[test]
    fn tanh_backward_matches_derivative() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let y = x.tanh();
        let dy = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let dx = Matrix::tanh_backward(&dy, &y);
        for i in 0..3 {
            let t = x.data[i].tanh();
            assert!((dx.data[i] - (1.0 - t * t)).abs() < 1e-6);
        }
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = Matrix::xavier(64, 64, 1.0, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(m.data.iter().all(|v| v.abs() <= limit));
        // Not degenerate.
        assert!(m.data.iter().any(|v| v.abs() > limit / 10.0));
    }

    #[test]
    fn from_rows_stacks() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows, 2);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_nt_into_reuses_buffer_bit_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = Matrix::xavier(4, 6, 1.0, &mut rng);
        let w = Matrix::xavier(5, 6, 1.0, &mut rng);
        let fresh = x.matmul_nt(&w);
        // A stale, differently-shaped buffer must be fully overwritten.
        let mut buf = Matrix::from_vec(1, 2, vec![9.0, 9.0]);
        x.matmul_nt_into(&w, &mut buf);
        assert_eq!(buf, fresh);
        // And tanh_inplace matches tanh.
        let mut t = fresh.clone();
        t.tanh_inplace();
        assert_eq!(t, fresh.tanh());
    }

    #[test]
    fn reset_and_push_row_assemble_batches() {
        let mut m = Matrix::default();
        m.reset(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        // Reset keeps the allocation but clears the contents.
        m.reset(2);
        assert_eq!(m.rows, 0);
        m.push_row(&[7.0, 8.0]);
        assert_eq!(m.row(0), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut m = Matrix::default();
        m.reset(2);
        m.push_row(&[1.0]);
    }
}
