//! Row-major `f32` matrices with the few kernels the model needs.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// `rows * cols` values, row-major.
    pub data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation scaled by `gain` — the
    /// standard init for tanh networks; policy output layers use a small
    /// gain so initial policies are near-uniform.
    pub fn xavier(rows: usize, cols: usize, gain: f32, rng: &mut impl Rng) -> Self {
        let limit = gain * (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..=limit)).collect();
        Matrix { rows, cols, data }
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self[r][c]`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set `self[r][c]`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `x · wᵀ`: `[n, in] · [out, in]ᵀ -> [n, out]`.
    ///
    /// The weight layout `[out, in]` keeps the inner loop over the
    /// weight row contiguous in both the forward and input-gradient
    /// kernels.
    pub fn matmul_nt(&self, w: &Matrix) -> Matrix {
        assert_eq!(self.cols, w.cols, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, w.rows);
        for r in 0..self.rows {
            let x = self.row(r);
            let o = out.row_mut(r);
            for (j, oj) in o.iter_mut().enumerate() {
                let wr = w.row(j);
                let mut acc = 0.0f32;
                for k in 0..x.len() {
                    acc += x[k] * wr[k];
                }
                *oj = acc;
            }
        }
        out
    }

    /// `dy · w`: `[n, out] · [out, in] -> [n, in]` (input gradient).
    pub fn matmul_nn(&self, w: &Matrix) -> Matrix {
        assert_eq!(self.cols, w.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, w.cols);
        for r in 0..self.rows {
            let dy = self.row(r);
            let o = out.row_mut(r);
            for (j, &d) in dy.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                let wr = w.row(j);
                for k in 0..o.len() {
                    o[k] += d * wr[k];
                }
            }
        }
        out
    }

    /// `dyᵀ · x` accumulated into `acc`: `[n, out]ᵀ · [n, in] -> [out,
    /// in]` (weight gradient).
    pub fn accumulate_tn(&self, x: &Matrix, acc: &mut Matrix) {
        assert_eq!(self.rows, x.rows, "batch mismatch");
        assert_eq!(acc.rows, self.cols);
        assert_eq!(acc.cols, x.cols);
        for r in 0..self.rows {
            let dy = self.row(r);
            let xr = x.row(r);
            for (j, &d) in dy.iter().enumerate() {
                if d == 0.0 {
                    continue;
                }
                let a = acc.row_mut(j);
                for k in 0..xr.len() {
                    a[k] += d * xr[k];
                }
            }
        }
    }

    /// Element-wise `tanh`.
    pub fn tanh(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v.tanh()).collect(),
        }
    }

    /// Backprop through tanh: `dx = dy ⊙ (1 - y²)` where `y = tanh(x)`.
    pub fn tanh_backward(dy: &Matrix, y: &Matrix) -> Matrix {
        assert_eq!(dy.data.len(), y.data.len());
        Matrix {
            rows: dy.rows,
            cols: dy.cols,
            data: dy.data.iter().zip(y.data.iter()).map(|(&d, &yv)| d * (1.0 - yv * yv)).collect(),
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Fill with zeros (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Stack row slices into a matrix.
    ///
    /// # Panics
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matmul_nt_small() {
        // x = [[1,2],[3,4]], w = [[1,0],[0,1],[1,1]] (3 outputs)
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let y = x.matmul_nt(&w);
        assert_eq!(y.data, vec![1.0, 2.0, 3.0, 3.0, 4.0, 7.0]);
    }

    #[test]
    fn matmul_nn_is_transpose_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Matrix::xavier(4, 3, 1.0, &mut rng);
        let w = Matrix::xavier(5, 3, 1.0, &mut rng);
        // (x · wᵀ) · w == x · (wᵀw); just check shapes and one entry by hand.
        let y = x.matmul_nt(&w);
        let back = y.matmul_nn(&w);
        assert_eq!(back.rows, 4);
        assert_eq!(back.cols, 3);
        let mut expect = 0.0f32;
        for j in 0..5 {
            expect += y.get(0, j) * w.get(j, 0);
        }
        assert!((back.get(0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn accumulate_tn_matches_manual_outer_product() {
        let dy = Matrix::from_vec(1, 2, vec![2.0, -1.0]);
        let x = Matrix::from_vec(1, 3, vec![1.0, 0.5, -2.0]);
        let mut acc = Matrix::zeros(2, 3);
        dy.accumulate_tn(&x, &mut acc);
        assert_eq!(acc.data, vec![2.0, 1.0, -4.0, -1.0, -0.5, 2.0]);
        // Accumulation adds.
        dy.accumulate_tn(&x, &mut acc);
        assert_eq!(acc.get(0, 0), 4.0);
    }

    #[test]
    fn tanh_backward_matches_derivative() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let y = x.tanh();
        let dy = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let dx = Matrix::tanh_backward(&dy, &y);
        for i in 0..3 {
            let t = x.data[i].tanh();
            assert!((dx.data[i] - (1.0 - t * t)).abs() < 1e-6);
        }
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = Matrix::xavier(64, 64, 1.0, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(m.data.iter().all(|v| v.abs() <= limit));
        // Not degenerate.
        assert!(m.data.iter().any(|v| v.abs() > limit / 10.0));
    }

    #[test]
    fn from_rows_stacks() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows, 2);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}
