//! Masked categorical distributions over logits.
//!
//! NeuroCuts actions are sampled from two categorical heads (dimension
//! and cut/partition action, Appendix A), with an **action mask**
//! prohibiting partition actions below the top node. Masked entries get
//! probability exactly zero and contribute nothing to gradients.

/// Logit value used for masked entries: small enough that masked
/// probabilities underflow to zero, large enough to avoid `-inf` NaNs.
const MASKED: f32 = -1.0e9;

/// A categorical distribution over `logits`, with `mask[i] == false`
/// marking invalid entries.
#[derive(Debug, Clone)]
pub struct MaskedCategorical {
    /// Normalised log-probabilities (masked entries ≈ `-1e9`).
    pub log_probs: Vec<f32>,
    /// Probabilities (masked entries exactly 0 after underflow).
    pub probs: Vec<f32>,
}

impl MaskedCategorical {
    /// Build from raw logits and a validity mask.
    ///
    /// # Panics
    /// Panics if no entry is valid or lengths differ.
    pub fn new(logits: &[f32], mask: &[bool]) -> Self {
        assert_eq!(logits.len(), mask.len());
        assert!(mask.iter().any(|&m| m), "no valid action");
        let masked: Vec<f32> =
            logits.iter().zip(mask.iter()).map(|(&l, &m)| if m { l } else { MASKED }).collect();
        let max = masked.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = masked.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        let log_sum = sum.ln() + max;
        let log_probs: Vec<f32> = masked.iter().map(|&l| l - log_sum).collect();
        let probs: Vec<f32> = exp.iter().map(|&e| e / sum).collect();
        MaskedCategorical { log_probs, probs }
    }

    /// Unmasked convenience constructor.
    pub fn from_logits(logits: &[f32]) -> Self {
        Self::new(logits, &vec![true; logits.len()])
    }

    /// Sample an index proportionally to `probs` using a uniform draw
    /// `u ∈ [0, 1)` supplied by the caller (keeps this crate free of RNG
    /// plumbing and makes sampling reproducible).
    pub fn sample(&self, u: f32) -> usize {
        let mut acc = 0.0f32;
        let mut last_valid = 0;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > 0.0 {
                last_valid = i;
                acc += p;
                if u < acc {
                    return i;
                }
            }
        }
        last_valid // numerical slack: u ≈ 1.0
    }

    /// Index of the most likely action (greedy decoding).
    pub fn argmax(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    /// Log-probability of `action`.
    pub fn log_prob(&self, action: usize) -> f32 {
        self.log_probs[action]
    }

    /// Entropy `H = -Σ p log p` (masked entries contribute 0).
    pub fn entropy(&self) -> f32 {
        -self
            .probs
            .iter()
            .zip(self.log_probs.iter())
            .filter(|(&p, _)| p > 0.0)
            .map(|(&p, &lp)| p * lp)
            .sum::<f32>()
    }

    /// Gradient of `log p(action)` with respect to the logits:
    /// `d log p_a / d z_i = [i == a] - p_i`.
    pub fn dlogp_dlogits(&self, action: usize) -> Vec<f32> {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| if i == action { 1.0 - p } else { -p })
            .collect()
    }

    /// Gradient of the entropy with respect to the logits:
    /// `dH/dz_i = -p_i (log p_i + H)`.
    pub fn dentropy_dlogits(&self) -> Vec<f32> {
        let h = self.entropy();
        self.probs
            .iter()
            .zip(self.log_probs.iter())
            .map(|(&p, &lp)| if p > 0.0 { -p * (lp + h) } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn probabilities_normalise() {
        let d = MaskedCategorical::from_logits(&[1.0, 2.0, 3.0]);
        let sum: f32 = d.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(d.probs[2] > d.probs[1] && d.probs[1] > d.probs[0]);
    }

    #[test]
    fn masked_entries_get_zero_probability() {
        let d = MaskedCategorical::new(&[5.0, 5.0, 5.0], &[true, false, true]);
        assert_eq!(d.probs[1], 0.0);
        assert!((d.probs[0] - 0.5).abs() < 1e-5);
        // Sampling never yields the masked action.
        for i in 0..100 {
            let u = i as f32 / 100.0;
            assert_ne!(d.sample(u), 1);
        }
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let d = MaskedCategorical::from_logits(&[0.0; 8]);
        assert!((d.entropy() - (8.0f32).ln()).abs() < 1e-5);
        // A peaked distribution has lower entropy.
        let p = MaskedCategorical::from_logits(&[10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(p.entropy() < 0.01);
    }

    #[test]
    fn argmax_and_logprob() {
        let d = MaskedCategorical::from_logits(&[0.0, 3.0, 1.0]);
        assert_eq!(d.argmax(), 1);
        assert!((d.log_prob(1) - d.probs[1].ln()).abs() < 1e-5);
    }

    #[test]
    fn dlogp_matches_finite_difference() {
        let logits = [0.3f32, -1.2, 0.7, 0.0];
        let action = 2;
        let d = MaskedCategorical::from_logits(&logits);
        let grad = d.dlogp_dlogits(action);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let numeric = (MaskedCategorical::from_logits(&lp).log_prob(action)
                - MaskedCategorical::from_logits(&lm).log_prob(action))
                / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-2,
                "i={i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn dentropy_matches_finite_difference() {
        let logits = [0.5f32, -0.5, 1.5, -2.0];
        let d = MaskedCategorical::from_logits(&logits);
        let grad = d.dentropy_dlogits();
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let numeric = (MaskedCategorical::from_logits(&lp).entropy()
                - MaskedCategorical::from_logits(&lm).entropy())
                / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-2,
                "i={i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn masked_gradients_are_zero() {
        let d = MaskedCategorical::new(&[1.0, 2.0, 3.0], &[true, false, true]);
        assert_eq!(d.dlogp_dlogits(0)[1], 0.0);
        assert_eq!(d.dentropy_dlogits()[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "no valid action")]
    fn all_masked_panics() {
        let _ = MaskedCategorical::new(&[1.0, 2.0], &[false, false]);
    }

    proptest! {
        #[test]
        fn prop_sampling_respects_support(
            logits in proptest::collection::vec(-5.0f32..5.0, 2..10),
            u in 0.0f32..1.0,
            mask_seed in 0u64..u64::MAX)
        {
            // Build a mask with at least one valid entry.
            let mut mask: Vec<bool> =
                (0..logits.len()).map(|i| (mask_seed >> i) & 1 == 1).collect();
            if !mask.iter().any(|&m| m) {
                mask[0] = true;
            }
            let d = MaskedCategorical::new(&logits, &mask);
            let s = d.sample(u);
            prop_assert!(mask[s], "sampled a masked action");
            let total: f32 = d.probs.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }
}
