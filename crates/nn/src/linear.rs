//! Affine layers with gradient accumulation and Adam state.

use crate::adam::{AdamConfig, AdamState};
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer `y = x · Wᵀ + b` with weights `[out, in]`.
///
/// Gradients accumulate across [`Linear::backward`] calls until
/// [`Linear::zero_grad`]; [`Linear::adam_step`] applies the update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `[out, in]`.
    pub w: Matrix,
    /// Bias, `[out]`.
    pub b: Vec<f32>,
    /// Accumulated weight gradient.
    pub gw: Matrix,
    /// Accumulated bias gradient.
    pub gb: Vec<f32>,
    opt_w: AdamState,
    opt_b: AdamState,
}

impl Linear {
    /// Xavier-initialised layer; `gain < 1` makes near-zero outputs
    /// (used for policy/value heads so the initial policy is near
    /// uniform).
    pub fn new(in_dim: usize, out_dim: usize, gain: f32, rng: &mut impl Rng) -> Self {
        Linear {
            w: Matrix::xavier(out_dim, in_dim, gain, rng),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(out_dim, in_dim),
            gb: vec![0.0; out_dim],
            opt_w: AdamState::new(out_dim * in_dim),
            opt_b: AdamState::new(out_dim),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.cols
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.rows
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.w.data.len() + self.b.len()
    }

    /// Forward pass: `[n, in] -> [n, out]`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, &mut y);
        y
    }

    /// [`Linear::forward`] into a caller-owned buffer (resized and
    /// overwritten) — the allocation-free kernel behind the batched
    /// inference path. Bit-identical to `forward`.
    // nc-lint: kernel
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_nt_into(&self.w, out);
        for r in 0..out.rows {
            let row = out.row_mut(r);
            for (v, b) in row.iter_mut().zip(self.b.iter()) {
                *v += b;
            }
        }
    }

    /// Backward pass: accumulate parameter gradients for the batch and
    /// return the input gradient. `x` must be the input the forward pass
    /// saw.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!(x.rows, dy.rows, "batch mismatch");
        assert_eq!(dy.cols, self.out_dim());
        dy.accumulate_tn(x, &mut self.gw);
        for r in 0..dy.rows {
            for (g, d) in self.gb.iter_mut().zip(dy.row(r).iter()) {
                *g += d;
            }
        }
        dy.matmul_nn(&self.w)
    }

    /// Reset accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.fill_zero();
        self.gb.fill(0.0);
    }

    /// Scale accumulated gradients (e.g. by `1/batch`).
    pub fn scale_grad(&mut self, s: f32) {
        self.gw.scale(s);
        for g in &mut self.gb {
            *g *= s;
        }
    }

    /// Sum of squared gradient entries (for global-norm clipping).
    pub fn grad_sq_norm(&self) -> f32 {
        self.gw.data.iter().map(|g| g * g).sum::<f32>() + self.gb.iter().map(|g| g * g).sum::<f32>()
    }

    /// Apply one Adam update from the accumulated gradients.
    pub fn adam_step(&mut self, cfg: &AdamConfig, t: u64) {
        self.opt_w.step(&mut self.w.data, &self.gw.data, cfg, t);
        self.opt_b.step(&mut self.b, &self.gb, cfg, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn finite_diff_check(in_dim: usize, out_dim: usize, batch: usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut layer = Linear::new(in_dim, out_dim, 1.0, &mut rng);
        let x = Matrix::xavier(batch, in_dim, 1.0, &mut rng);
        // Loss = sum of outputs weighted by fixed coefficients.
        let coef = Matrix::xavier(batch, out_dim, 1.0, &mut rng);
        let loss = |l: &Linear| -> f32 {
            let y = l.forward(&x);
            y.data.iter().zip(coef.data.iter()).map(|(a, b)| a * b).sum()
        };
        layer.zero_grad();
        let dx = layer.backward(&x, &coef);

        // Weight gradients.
        let eps = 1e-2f32;
        for idx in [0, in_dim * out_dim / 2, in_dim * out_dim - 1] {
            let orig = layer.w.data[idx];
            layer.w.data[idx] = orig + eps;
            let lp = loss(&layer);
            layer.w.data[idx] = orig - eps;
            let lm = loss(&layer);
            layer.w.data[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = layer.gw.data[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "w[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient = column sums of coef.
        for j in 0..out_dim {
            let expect: f32 = (0..batch).map(|r| coef.get(r, j)).sum();
            assert!((layer.gb[j] - expect).abs() < 1e-4);
        }
        // Input gradient = coef · W.
        let expect_dx = coef.matmul_nn(&layer.w);
        for (a, b) in dx.data.iter().zip(expect_dx.data.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(5, 3, 4);
        finite_diff_check(16, 8, 2);
    }

    #[test]
    fn forward_applies_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut layer = Linear::new(2, 2, 1.0, &mut rng);
        layer.w = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        layer.b = vec![10.0, -10.0];
        let y = layer.forward(&Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(y.data, vec![11.0, -8.0]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut layer = Linear::new(3, 2, 1.0, &mut rng);
        let x = Matrix::xavier(2, 3, 1.0, &mut rng);
        let dy = Matrix::xavier(2, 2, 1.0, &mut rng);
        layer.backward(&x, &dy);
        assert!(layer.grad_sq_norm() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.grad_sq_norm(), 0.0);
    }

    #[test]
    fn sgd_via_adam_fits_a_linear_map() {
        // Teach the layer to reproduce a fixed target map.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let target = Matrix::xavier(2, 4, 1.0, &mut rng);
        let mut layer = Linear::new(4, 2, 1.0, &mut rng);
        let cfg = AdamConfig { lr: 0.02, ..Default::default() };
        for t in 1..=800 {
            let x = Matrix::xavier(8, 4, 1.0, &mut rng);
            let y = layer.forward(&x);
            let want = x.matmul_nt(&target);
            // dL/dy for L = 0.5 * ||y - want||^2
            let dy = Matrix::from_vec(
                8,
                2,
                y.data.iter().zip(want.data.iter()).map(|(a, b)| a - b).collect(),
            );
            layer.zero_grad();
            layer.backward(&x, &dy);
            layer.scale_grad(1.0 / 8.0);
            layer.adam_step(&cfg, t);
        }
        // Residual should be tiny.
        let x = Matrix::xavier(16, 4, 1.0, &mut rng);
        let y = layer.forward(&x);
        let want = x.matmul_nt(&target);
        let mse: f32 =
            y.data.iter().zip(want.data.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
                / y.data.len() as f32;
        assert!(mse < 1e-3, "mse {mse}");
    }
}
