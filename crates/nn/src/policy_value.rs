//! The NeuroCuts policy/value network: a shared tanh trunk with two
//! categorical policy heads (dimension, action) and a scalar value head.
//!
//! Table 1 of the paper: fully-connected, tanh nonlinearity, hidden
//! layers `[512, 512]`, weight sharing between policy and value
//! parameters. The trunk is shared; only the three output heads differ.

use crate::adam::AdamConfig;
use crate::linear::Linear;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Network topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Observation width (278 for the NeuroCuts encoding).
    pub obs_dim: usize,
    /// First categorical head width (number of dimensions, 5).
    pub dim_actions: usize,
    /// Second categorical head width (cut + partition actions).
    pub num_actions: usize,
    /// Hidden layer widths (Table 1: `[512, 512]`).
    pub hidden: [usize; 2],
}

impl NetConfig {
    /// The paper's default model for a given observation/action space.
    pub fn paper_default(obs_dim: usize, dim_actions: usize, num_actions: usize) -> Self {
        NetConfig { obs_dim, dim_actions, num_actions, hidden: [512, 512] }
    }
}

/// Cached activations from one forward pass, needed for backprop.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// The input batch.
    pub x: Matrix,
    /// First hidden activation (post-tanh).
    pub h1: Matrix,
    /// Second hidden activation (post-tanh).
    pub h2: Matrix,
    /// Dimension-head logits `[n, dim_actions]`.
    pub dim_logits: Matrix,
    /// Action-head logits `[n, num_actions]`.
    pub act_logits: Matrix,
    /// Value estimates `[n, 1]`.
    pub values: Matrix,
}

/// Reusable activations for the batched *inference* path.
///
/// [`PolicyValueNet::infer`] writes every intermediate and output
/// activation into these preallocated matrices, so steady-state rollout
/// collection performs no per-step allocation (buffers only grow, and
/// only until they fit the largest batch seen). Unlike
/// [`ForwardCache`], nothing needed for backprop is retained — this is
/// the actor-side forward, not the learner-side one.
///
/// ```
/// use nn::{InferBuffer, Matrix, NetConfig, PolicyValueNet};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let net = PolicyValueNet::new(
///     NetConfig { obs_dim: 4, dim_actions: 2, num_actions: 3, hidden: [8, 8] },
///     &mut rng,
/// );
/// let obs = [0.25f32, -1.0, 0.5, 0.0];
/// let mut x = Matrix::default();
/// x.reset(4);
/// x.push_row(&obs);
/// let mut buf = InferBuffer::default();
/// net.infer(&x, &mut buf);
/// // Bit-identical to the scalar convenience path.
/// let (dim, act, value) = net.forward_one(&obs);
/// assert_eq!(buf.dim_logits.row(0), &dim[..]);
/// assert_eq!(buf.act_logits.row(0), &act[..]);
/// assert_eq!(buf.values.get(0, 0), value);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InferBuffer {
    h1: Matrix,
    h2: Matrix,
    /// Dimension-head logits `[n, dim_actions]`.
    pub dim_logits: Matrix,
    /// Action-head logits `[n, num_actions]`.
    pub act_logits: Matrix,
    /// Value estimates `[n, 1]`.
    pub values: Matrix,
}

/// The shared-trunk policy + value network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyValueNet {
    /// Topology.
    pub config: NetConfig,
    l1: Linear,
    l2: Linear,
    dim_head: Linear,
    act_head: Linear,
    value_head: Linear,
    steps: u64,
}

impl PolicyValueNet {
    /// Randomly initialised network. Policy heads use a small gain so
    /// the initial policy is near uniform; the value head likewise
    /// starts near zero.
    pub fn new(config: NetConfig, rng: &mut impl Rng) -> Self {
        PolicyValueNet {
            l1: Linear::new(config.obs_dim, config.hidden[0], 1.0, rng),
            l2: Linear::new(config.hidden[0], config.hidden[1], 1.0, rng),
            dim_head: Linear::new(config.hidden[1], config.dim_actions, 0.01, rng),
            act_head: Linear::new(config.hidden[1], config.num_actions, 0.01, rng),
            value_head: Linear::new(config.hidden[1], 1, 1.0, rng),
            steps: 0,
            config,
        }
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.l1.num_params()
            + self.l2.num_params()
            + self.dim_head.num_params()
            + self.act_head.num_params()
            + self.value_head.num_params()
    }

    /// Forward pass over a batch `[n, obs_dim]`.
    pub fn forward(&self, x: Matrix) -> ForwardCache {
        assert_eq!(x.cols, self.config.obs_dim, "observation width mismatch");
        let h1 = self.l1.forward(&x).tanh();
        let h2 = self.l2.forward(&h1).tanh();
        let dim_logits = self.dim_head.forward(&h2);
        let act_logits = self.act_head.forward(&h2);
        let values = self.value_head.forward(&h2);
        ForwardCache { x, h1, h2, dim_logits, act_logits, values }
    }

    /// Batched inference: forward `[n, obs_dim]` into `buf` without
    /// retaining anything for backprop and without allocating once the
    /// buffers are warm. One matrix-matrix pass replaces `n` per-row
    /// matrix-vector passes, and the results are bit-identical to
    /// [`PolicyValueNet::forward`]/[`PolicyValueNet::forward_one`]
    /// row-for-row (the same kernels run over the same row layout).
    pub fn infer(&self, x: &Matrix, buf: &mut InferBuffer) {
        assert_eq!(x.cols, self.config.obs_dim, "observation width mismatch");
        self.l1.forward_into(x, &mut buf.h1);
        buf.h1.tanh_inplace();
        self.l2.forward_into(&buf.h1, &mut buf.h2);
        buf.h2.tanh_inplace();
        self.dim_head.forward_into(&buf.h2, &mut buf.dim_logits);
        self.act_head.forward_into(&buf.h2, &mut buf.act_logits);
        self.value_head.forward_into(&buf.h2, &mut buf.values);
    }

    /// Convenience: forward a single observation, returning
    /// `(dim_logits, act_logits, value)`.
    pub fn forward_one(&self, obs: &[f32]) -> (Vec<f32>, Vec<f32>, f32) {
        let cache = self.forward(Matrix::from_rows(&[obs]));
        (cache.dim_logits.row(0).to_vec(), cache.act_logits.row(0).to_vec(), cache.values.get(0, 0))
    }

    /// Backward pass: accumulate gradients given the loss gradients at
    /// the three heads (shapes must match the cache).
    pub fn backward(
        &mut self,
        cache: &ForwardCache,
        d_dim_logits: &Matrix,
        d_act_logits: &Matrix,
        d_values: &Matrix,
    ) {
        let mut dh2 = self.dim_head.backward(&cache.h2, d_dim_logits);
        dh2.add_assign(&self.act_head.backward(&cache.h2, d_act_logits));
        dh2.add_assign(&self.value_head.backward(&cache.h2, d_values));
        let dh2_pre = Matrix::tanh_backward(&dh2, &cache.h2);
        let dh1 = self.l2.backward(&cache.h1, &dh2_pre);
        let dh1_pre = Matrix::tanh_backward(&dh1, &cache.h1);
        let _ = self.l1.backward(&cache.x, &dh1_pre);
    }

    fn layers_mut(&mut self) -> [&mut Linear; 5] {
        [&mut self.l1, &mut self.l2, &mut self.dim_head, &mut self.act_head, &mut self.value_head]
    }

    /// Reset accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in self.layers_mut() {
            l.zero_grad();
        }
    }

    /// Scale accumulated gradients (e.g. `1/minibatch`).
    pub fn scale_grad(&mut self, s: f32) {
        for l in self.layers_mut() {
            l.scale_grad(s);
        }
    }

    /// Clip gradients to a maximum global L2 norm; returns the
    /// pre-clipping norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.layers_mut().iter().map(|l| l.grad_sq_norm()).sum::<f32>().sqrt();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            self.scale_grad(s);
        }
        norm
    }

    /// Apply one Adam update from accumulated gradients.
    pub fn adam_step(&mut self, cfg: &AdamConfig) {
        self.steps += 1;
        let t = self.steps;
        for l in self.layers_mut() {
            l.adam_step(cfg, t);
        }
    }

    /// Serialise to JSON (checkpointing).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("network serialises")
    }

    /// Load from [`PolicyValueNet::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::MaskedCategorical;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_net(rng: &mut ChaCha8Rng) -> PolicyValueNet {
        PolicyValueNet::new(
            NetConfig { obs_dim: 6, dim_actions: 3, num_actions: 4, hidden: [8, 8] },
            rng,
        )
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = tiny_net(&mut rng);
        let x = Matrix::xavier(5, 6, 1.0, &mut rng);
        let out = net.forward(x);
        assert_eq!(out.dim_logits.rows, 5);
        assert_eq!(out.dim_logits.cols, 3);
        assert_eq!(out.act_logits.cols, 4);
        assert_eq!(out.values.cols, 1);
    }

    #[test]
    fn initial_policy_is_near_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = tiny_net(&mut rng);
        let (dim_logits, act_logits, _v) = net.forward_one(&[0.5; 6]);
        let d = MaskedCategorical::from_logits(&dim_logits);
        let a = MaskedCategorical::from_logits(&act_logits);
        // Small-gain heads -> all probabilities close to uniform.
        for &p in &d.probs {
            assert!((p - 1.0 / 3.0).abs() < 0.05, "dim prob {p}");
        }
        for &p in &a.probs {
            assert!((p - 0.25).abs() < 0.05, "act prob {p}");
        }
    }

    #[test]
    fn full_network_gradient_check() {
        // Scalar loss: weighted sum over all three heads. Check d/dθ for
        // a sample of parameters in every layer against central
        // differences.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = tiny_net(&mut rng);
        let x = Matrix::xavier(3, 6, 1.0, &mut rng);
        let cd = Matrix::xavier(3, 3, 1.0, &mut rng);
        let ca = Matrix::xavier(3, 4, 1.0, &mut rng);
        let cv = Matrix::xavier(3, 1, 1.0, &mut rng);
        let loss = |n: &PolicyValueNet| -> f32 {
            let o = n.forward(x.clone());
            let s1: f32 = o.dim_logits.data.iter().zip(cd.data.iter()).map(|(a, b)| a * b).sum();
            let s2: f32 = o.act_logits.data.iter().zip(ca.data.iter()).map(|(a, b)| a * b).sum();
            let s3: f32 = o.values.data.iter().zip(cv.data.iter()).map(|(a, b)| a * b).sum();
            s1 + s2 + s3
        };
        net.zero_grad();
        let cache = net.forward(x.clone());
        net.backward(&cache, &cd, &ca, &cv);

        // Probe a few weights in each layer via serde surgery-free
        // access: l1 isn't public, so check through the public heads
        // plus re-serialisation. Instead, perturb via JSON roundtrip.
        let eps = 1e-2f32;
        let json = serde_json::to_value(&net).unwrap();
        let layers = ["l1", "l2", "dim_head", "act_head", "value_head"];
        for layer in layers {
            let w = json[layer]["w"]["data"].as_array().unwrap();
            let idx = w.len() / 2;
            let orig = w[idx].as_f64().unwrap() as f32;
            let probe = |delta: f32| -> f32 {
                let mut j = json.clone();
                j[layer]["w"]["data"][idx] = serde_json::json!(orig + delta);
                let n: PolicyValueNet = serde_json::from_value(j).unwrap();
                loss(&n)
            };
            let numeric = (probe(eps) - probe(-eps)) / (2.0 * eps);
            let analytic = serde_json::to_value(&net).unwrap()[layer]["gw"]["data"][idx]
                .as_f64()
                .unwrap() as f32;
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "{layer}[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn value_head_can_regress() {
        // Train the value head (through the shared trunk) to predict a
        // fixed function of the input.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = tiny_net(&mut rng);
        let cfg = AdamConfig { lr: 0.01, ..Default::default() };
        let target = |row: &[f32]| -> f32 { row[0] - 2.0 * row[1] };
        for _ in 0..600 {
            let x = Matrix::xavier(16, 6, 1.0, &mut rng);
            let cache = net.forward(x.clone());
            let mut dv = Matrix::zeros(16, 1);
            for r in 0..16 {
                let want = target(x.row(r));
                dv.set(r, 0, cache.values.get(r, 0) - want);
            }
            let zero_d = Matrix::zeros(16, 3);
            let zero_a = Matrix::zeros(16, 4);
            net.zero_grad();
            net.backward(&cache, &zero_d, &zero_a, &dv);
            net.scale_grad(1.0 / 16.0);
            net.adam_step(&cfg);
        }
        let x = Matrix::xavier(32, 6, 1.0, &mut rng);
        let cache = net.forward(x.clone());
        let mse: f32 = (0..32)
            .map(|r| {
                let e = cache.values.get(r, 0) - target(x.row(r));
                e * e
            })
            .sum::<f32>()
            / 32.0;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    fn policy_gradient_solves_a_contextual_bandit() {
        // REINFORCE sanity check: reward 1 when the sampled dim action
        // matches a context bit, else 0. The policy must learn the
        // mapping.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = PolicyValueNet::new(
            NetConfig { obs_dim: 2, dim_actions: 2, num_actions: 2, hidden: [16, 16] },
            &mut rng,
        );
        let cfg = AdamConfig { lr: 0.01, ..Default::default() };
        for _ in 0..400 {
            let batch = 32;
            let mut xs = Matrix::zeros(batch, 2);
            for r in 0..batch {
                let ctx = rng.gen_range(0..2usize);
                xs.set(r, ctx, 1.0);
            }
            let cache = net.forward(xs.clone());
            let mut d_dim = Matrix::zeros(batch, 2);
            let d_act = Matrix::zeros(batch, 2);
            let d_val = Matrix::zeros(batch, 1);
            for r in 0..batch {
                let dist = MaskedCategorical::from_logits(cache.dim_logits.row(r));
                let a = dist.sample(rng.gen::<f32>());
                let ctx = if xs.get(r, 0) > 0.5 { 0 } else { 1 };
                let reward = if a == ctx { 1.0 } else { 0.0 };
                let adv = reward - 0.5; // fixed baseline
                                        // Gradient ascent on adv * log p(a): negate for descent.
                for (i, g) in dist.dlogp_dlogits(a).iter().enumerate() {
                    d_dim.set(r, i, -adv * g);
                }
            }
            net.zero_grad();
            net.backward(&cache, &d_dim, &d_act, &d_val);
            net.scale_grad(1.0 / batch as f32);
            net.adam_step(&cfg);
        }
        // The learned policy should strongly prefer the matching action.
        let (l0, _, _) = net.forward_one(&[1.0, 0.0]);
        let (l1, _, _) = net.forward_one(&[0.0, 1.0]);
        assert!(
            MaskedCategorical::from_logits(&l0).probs[0] > 0.8,
            "p(a=0|ctx 0) = {:?}",
            MaskedCategorical::from_logits(&l0).probs
        );
        assert!(MaskedCategorical::from_logits(&l1).probs[1] > 0.8);
    }

    #[test]
    fn batched_infer_matches_per_row_forward_bit_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let net = tiny_net(&mut rng);
        let x = Matrix::xavier(7, 6, 1.0, &mut rng);
        let mut buf = InferBuffer::default();
        net.infer(&x, &mut buf);
        // Warm buffers: run again with a different batch size to prove
        // stale contents never leak through.
        let y = Matrix::xavier(3, 6, 1.0, &mut rng);
        net.infer(&y, &mut buf);
        net.infer(&x, &mut buf);
        let cache = net.forward(x.clone());
        assert_eq!(buf.dim_logits, cache.dim_logits);
        assert_eq!(buf.act_logits, cache.act_logits);
        assert_eq!(buf.values, cache.values);
        for r in 0..x.rows {
            let (dim, act, v) = net.forward_one(x.row(r));
            assert_eq!(buf.dim_logits.row(r), &dim[..]);
            assert_eq!(buf.act_logits.row(r), &act[..]);
            assert_eq!(buf.values.get(r, 0), v);
        }
    }

    #[test]
    fn json_roundtrip_preserves_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let net = tiny_net(&mut rng);
        let restored = PolicyValueNet::from_json(&net.to_json()).unwrap();
        let obs = [0.1f32, -0.4, 0.9, 0.0, 1.0, -1.0];
        assert_eq!(net.forward_one(&obs), restored.forward_one(&obs));
    }

    #[test]
    fn grad_clipping_bounds_norm() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net = tiny_net(&mut rng);
        let x = Matrix::xavier(4, 6, 1.0, &mut rng);
        let cache = net.forward(x);
        let big = Matrix::from_vec(4, 3, vec![100.0; 12]);
        let za = Matrix::zeros(4, 4);
        let zv = Matrix::zeros(4, 1);
        net.zero_grad();
        net.backward(&cache, &big, &za, &zv);
        let before = net.clip_grad_norm(1.0);
        assert!(before > 1.0);
        let after = net.clip_grad_norm(1.0);
        assert!(after <= 1.0 + 1e-3);
    }
}
