//! Adam optimiser state and update rule (Kingma & Ba, 2015) — the
//! optimiser RLlib's PPO uses, and therefore the one the paper trained
//! with.

use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Step size (Table 1: `5e-5`).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 5e-5, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Per-parameter-tensor Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamState {
    /// Zero-initialised moments for `n` parameters.
    pub fn new(n: usize) -> Self {
        AdamState { m: vec![0.0; n], v: vec![0.0; n] }
    }

    /// Apply one Adam update to `params` given `grads`; `t` is the
    /// 1-based global step used for bias correction.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], cfg: &AdamConfig, t: u64) {
        assert_eq!(params.len(), grads.len());
        assert_eq!(params.len(), self.m.len());
        assert!(t >= 1, "Adam step count is 1-based");
        let bc1 = 1.0 - cfg.beta1.powi(t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = cfg.beta1 * self.m[i] + (1.0 - cfg.beta1) * g;
            self.v[i] = cfg.beta2 * self.v[i] + (1.0 - cfg.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_a_quadratic() {
        // Minimise f(x) = (x - 3)^2 from x = 0.
        let mut x = [0.0f32];
        let mut state = AdamState::new(1);
        let cfg = AdamConfig { lr: 0.1, ..Default::default() };
        for t in 1..=500 {
            let g = [2.0 * (x[0] - 3.0)];
            state.step(&mut x, &g, &cfg, t);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "converged to {}", x[0]);
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction the very first step is ~lr * sign(g).
        let mut x = [0.0f32];
        let mut state = AdamState::new(1);
        let cfg = AdamConfig { lr: 0.01, ..Default::default() };
        state.step(&mut x, &[42.0], &cfg, 1);
        assert!((x[0] + 0.01).abs() < 1e-4, "step was {}", x[0]);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_step_count() {
        let mut x = [0.0f32];
        let mut state = AdamState::new(1);
        state.step(&mut x, &[1.0], &AdamConfig::default(), 0);
    }
}
