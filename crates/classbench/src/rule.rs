//! Classification rules: a hypercube in the 5-dimensional header space
//! plus a priority.

use crate::dim::{Dim, DIMS, NUM_DIMS};
use crate::packet::Packet;
use crate::range::DimRange;
use serde::{Deserialize, Serialize};

/// A single classification rule.
///
/// A rule matches a packet when the packet's value in *every* dimension
/// falls inside the rule's range for that dimension (prefix, range, and
/// exact matches all reduce to ranges). Overlapping rules are
/// disambiguated by `priority`: **higher numeric priority wins**, matching
/// the convention of Figure 1 in the paper where the default rule has
/// priority 0.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// Per-dimension half-open ranges, indexed by [`Dim`].
    pub ranges: [DimRange; NUM_DIMS],
    /// Larger value wins among overlapping matches.
    pub priority: i32,
}

impl Rule {
    /// A rule with the given ranges and priority.
    pub fn new(ranges: [DimRange; NUM_DIMS], priority: i32) -> Self {
        Rule { ranges, priority }
    }

    /// The match-everything rule (all dimensions wildcarded).
    pub fn default_rule(priority: i32) -> Self {
        Rule {
            ranges: [
                DimRange::full(Dim::SrcIp),
                DimRange::full(Dim::DstIp),
                DimRange::full(Dim::SrcPort),
                DimRange::full(Dim::DstPort),
                DimRange::full(Dim::Proto),
            ],
            priority,
        }
    }

    /// Convenience constructor from prefixes/ranges in display order.
    pub fn from_fields(
        src_ip: DimRange,
        dst_ip: DimRange,
        src_port: DimRange,
        dst_port: DimRange,
        proto: DimRange,
        priority: i32,
    ) -> Self {
        Rule { ranges: [src_ip, dst_ip, src_port, dst_port, proto], priority }
    }

    /// The rule's range in dimension `dim`.
    #[inline]
    pub fn range(&self, dim: Dim) -> &DimRange {
        &self.ranges[dim.index()]
    }

    /// True when the packet lies inside the rule's hypercube.
    #[inline]
    pub fn matches(&self, packet: &Packet) -> bool {
        // Check ports/proto first: they discriminate more cheaply on
        // typical rule sets, but correctness is order-independent.
        self.ranges.iter().zip(packet.values.iter()).all(|(r, &v)| r.contains(v))
    }

    /// True when the rule's hypercube intersects the given node space.
    #[inline]
    pub fn intersects_space(&self, space: &[DimRange; NUM_DIMS]) -> bool {
        self.ranges.iter().zip(space.iter()).all(|(r, s)| r.overlaps(s))
    }

    /// True when every dimension is fully wildcarded.
    pub fn is_default(&self) -> bool {
        DIMS.iter().all(|&d| self.ranges[d.index()] == DimRange::full(d))
    }

    /// True when dimension `dim` is fully wildcarded.
    pub fn is_wildcard(&self, dim: Dim) -> bool {
        self.ranges[dim.index()] == DimRange::full(dim)
    }

    /// Fraction of the full space of `dim` this rule covers, in `[0, 1]`.
    ///
    /// EffiCuts calls a rule "large" in a dimension when this exceeds a
    /// threshold (0.5 in the paper).
    pub fn largeness(&self, dim: Dim) -> f64 {
        self.ranges[dim.index()].len() as f64 / dim.span() as f64
    }

    /// A point guaranteed to lie inside the rule (the low corner).
    ///
    /// Useful for generating packets that definitely match.
    pub fn low_corner(&self) -> Packet {
        let mut values = [0u64; NUM_DIMS];
        for (v, r) in values.iter_mut().zip(self.ranges.iter()) {
            *v = r.lo;
        }
        Packet { values }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "prio={} src={} dst={} sport={} dport={} proto={}",
            self.priority,
            self.ranges[0],
            self.ranges[1],
            self.ranges[2],
            self.ranges[3],
            self.ranges[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_rules() -> Vec<Rule> {
        // The three rules of Figure 1 in the paper.
        let r2 = Rule::from_fields(
            DimRange::exact(u64::from(u32::from_be_bytes([10, 0, 0, 0]))),
            DimRange::from_prefix(u64::from(u32::from_be_bytes([10, 0, 0, 0])), 16, 32),
            DimRange::full(Dim::SrcPort),
            DimRange::full(Dim::DstPort),
            DimRange::full(Dim::Proto),
            2,
        );
        let r1 = Rule::from_fields(
            DimRange::full(Dim::SrcIp),
            DimRange::full(Dim::DstIp),
            DimRange::new(0, 1024),
            DimRange::new(0, 1024),
            DimRange::exact(6), // TCP
            1,
        );
        let r0 = Rule::default_rule(0);
        vec![r2, r1, r0]
    }

    #[test]
    fn figure1_example_matches() {
        let rules = figure1_rules();
        // Packet (10.0.0.0, 10.0.0.1, 0, 0, 6) matches all three rules.
        let pkt = Packet::new(
            u64::from(u32::from_be_bytes([10, 0, 0, 0])),
            u64::from(u32::from_be_bytes([10, 0, 0, 1])),
            0,
            0,
            6,
        );
        assert!(rules.iter().all(|r| r.matches(&pkt)));
        // Highest priority match is rule with priority 2.
        let best = rules.iter().filter(|r| r.matches(&pkt)).max_by_key(|r| r.priority).unwrap();
        assert_eq!(best.priority, 2);
    }

    #[test]
    fn default_rule_matches_everything() {
        let r = Rule::default_rule(0);
        assert!(r.is_default());
        assert!(r.matches(&Packet::new(0, 0, 0, 0, 0)));
        assert!(r.matches(&Packet::new((1 << 32) - 1, (1 << 32) - 1, 65535, 65535, 255)));
    }

    #[test]
    fn non_default_is_detected() {
        let rules = figure1_rules();
        assert!(!rules[0].is_default());
        assert!(!rules[1].is_default());
        assert!(rules[2].is_default());
    }

    #[test]
    fn wildcard_detection_per_dim() {
        let rules = figure1_rules();
        let r1 = &rules[1];
        assert!(r1.is_wildcard(Dim::SrcIp));
        assert!(r1.is_wildcard(Dim::DstIp));
        assert!(!r1.is_wildcard(Dim::SrcPort));
        assert!(!r1.is_wildcard(Dim::Proto));
    }

    #[test]
    fn largeness() {
        let rules = figure1_rules();
        assert_eq!(rules[2].largeness(Dim::SrcIp), 1.0);
        // [0, 1024) of 65536 = 1/64.
        assert!((rules[1].largeness(Dim::SrcPort) - 1.0 / 64.0).abs() < 1e-12);
        // Exact match on proto: 1/256.
        assert!((rules[1].largeness(Dim::Proto) - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn low_corner_matches_own_rule() {
        for r in figure1_rules() {
            assert!(r.matches(&r.low_corner()));
        }
    }

    #[test]
    fn intersects_space() {
        let rules = figure1_rules();
        let full = Rule::default_rule(0).ranges;
        assert!(rules.iter().all(|r| r.intersects_space(&full)));
        // A space that excludes TCP: rule 1 does not intersect.
        let mut no_tcp = full;
        no_tcp[Dim::Proto.index()] = DimRange::new(7, 256);
        assert!(!rules[1].intersects_space(&no_tcp));
        assert!(rules[2].intersects_space(&no_tcp));
    }
}
