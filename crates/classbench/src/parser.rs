//! Parser and writer for the standard ClassBench filter-set text format.
//!
//! Each line describes one rule, highest priority first:
//!
//! ```text
//! @<sip>/<len> <dip>/<len> <splo> : <sphi> <dplo> : <dphi> <proto>/<mask> [extra fields...]
//! ```
//!
//! for example:
//!
//! ```text
//! @198.12.130.31/32 1.2.3.0/24 0 : 65535 1024 : 65535 0x06/0xFF
//! ```
//!
//! Port bounds are inclusive in the file format and converted to this
//! crate's half-open ranges. The protocol `0x00/0x00` denotes a wildcard;
//! any other mask is treated as exact match on the value (non-trivial
//! partial masks do not occur in ClassBench output). Trailing fields
//! (e.g. flags) are ignored, as is whitespace variation.

use crate::dim::Dim;
use crate::range::DimRange;
use crate::rule::Rule;
use crate::ruleset::RuleSet;

/// Error produced when a filter-set file cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending rule.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_ipv4(s: &str, line: usize) -> Result<u64, ParseError> {
    let mut out: u64 = 0;
    let mut count = 0;
    for part in s.split('.') {
        let octet: u64 = part.parse().map_err(|_| err(line, format!("bad IPv4 octet {part:?}")))?;
        if octet > 255 {
            return Err(err(line, format!("IPv4 octet {octet} out of range")));
        }
        out = (out << 8) | octet;
        count += 1;
    }
    if count != 4 {
        return Err(err(line, format!("expected 4 octets, got {count}")));
    }
    Ok(out)
}

fn parse_prefix(s: &str, line: usize) -> Result<DimRange, ParseError> {
    let (addr, len) =
        s.split_once('/').ok_or_else(|| err(line, format!("missing '/' in prefix {s:?}")))?;
    let value = parse_ipv4(addr, line)?;
    let len: u32 = len.parse().map_err(|_| err(line, format!("bad prefix length {len:?}")))?;
    if len > 32 {
        return Err(err(line, format!("prefix length {len} > 32")));
    }
    Ok(DimRange::from_prefix(value, len, 32))
}

fn parse_u64_maybe_hex(s: &str, line: usize) -> Result<u64, ParseError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| err(line, format!("bad number {s:?}")))
}

fn parse_port_range(lo: &str, hi: &str, line: usize) -> Result<DimRange, ParseError> {
    let lo = parse_u64_maybe_hex(lo, line)?;
    let hi = parse_u64_maybe_hex(hi, line)?;
    if lo > hi {
        return Err(err(line, format!("inverted port range {lo}:{hi}")));
    }
    if hi > 65535 {
        return Err(err(line, format!("port {hi} out of range")));
    }
    Ok(DimRange::new(lo, hi + 1)) // inclusive file format -> half-open
}

fn parse_proto(s: &str, line: usize) -> Result<DimRange, ParseError> {
    let (value, mask) =
        s.split_once('/').ok_or_else(|| err(line, format!("missing '/' in protocol {s:?}")))?;
    let value = parse_u64_maybe_hex(value, line)?;
    let mask = parse_u64_maybe_hex(mask, line)?;
    if value > 255 {
        return Err(err(line, format!("protocol {value} out of range")));
    }
    Ok(if mask == 0 { DimRange::full(Dim::Proto) } else { DimRange::exact(value) })
}

/// Parse a ClassBench filter-set from text. Lines are highest priority
/// first; blank lines and lines starting with `#` are skipped.
pub fn parse_rules(text: &str) -> Result<RuleSet, ParseError> {
    let mut rules = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line =
            line.strip_prefix('@').ok_or_else(|| err(line_no, "rule must start with '@'"))?;
        let tok: Vec<&str> = line.split_whitespace().collect();
        if tok.len() < 9 {
            return Err(err(line_no, format!("expected >= 9 tokens, got {}", tok.len())));
        }
        if tok[3] != ":" || tok[6] != ":" {
            return Err(err(line_no, "expected ':' between port bounds"));
        }
        let rule = Rule::from_fields(
            parse_prefix(tok[0], line_no)?,
            parse_prefix(tok[1], line_no)?,
            parse_port_range(tok[2], tok[4], line_no)?,
            parse_port_range(tok[5], tok[7], line_no)?,
            parse_proto(tok[8], line_no)?,
            0,
        );
        rules.push(rule);
    }
    Ok(RuleSet::from_ordered(rules))
}

fn format_ip(v: u64) -> String {
    let b = (v as u32).to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

fn format_prefix(r: &DimRange, bits: u32) -> String {
    // Recover the prefix length from the block size (ClassBench IP
    // fields are always power-of-two aligned prefixes).
    let block_bits =
        if r.len() >= (1u64 << bits) { bits } else { 63 - r.len().max(1).leading_zeros() };
    format!("{}/{}", format_ip(r.lo), bits - block_bits)
}

/// Serialise a rule set to ClassBench text (highest priority first).
///
/// IP fields are written as their covering prefix, ports as inclusive
/// ranges, and the protocol as `value/0xFF` or `0x00/0x00` for wildcard.
pub fn write_rules(rules: &RuleSet) -> String {
    let mut out = String::new();
    for r in rules.rules() {
        let proto = r.range(Dim::Proto);
        let proto_s = if *proto == DimRange::full(Dim::Proto) {
            "0x00/0x00".to_string()
        } else {
            format!("0x{:02X}/0xFF", proto.lo)
        };
        out.push_str(&format!(
            "@{}\t{}\t{} : {}\t{} : {}\t{}\n",
            format_prefix(r.range(Dim::SrcIp), 32),
            format_prefix(r.range(Dim::DstIp), 32),
            r.range(Dim::SrcPort).lo,
            r.range(Dim::SrcPort).hi - 1,
            r.range(Dim::DstPort).lo,
            r.range(Dim::DstPort).hi - 1,
            proto_s,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_rules, GeneratorConfig};
    use crate::profiles::ClassifierFamily;

    const SAMPLE: &str = "\
@198.12.130.31/32 1.2.3.0/24 0 : 65535 1024 : 65535 0x06/0xFF
@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00
";

    #[test]
    fn parses_sample() {
        let rs = parse_rules(SAMPLE).unwrap();
        assert_eq!(rs.len(), 2);
        let r = rs.rule(0);
        assert_eq!(
            r.range(Dim::SrcIp),
            &DimRange::exact(u64::from(u32::from_be_bytes([198, 12, 130, 31])))
        );
        assert_eq!(r.range(Dim::DstIp).len(), 256);
        assert_eq!(r.range(Dim::SrcPort), &DimRange::new(0, 65536));
        assert_eq!(r.range(Dim::DstPort), &DimRange::new(1024, 65536));
        assert_eq!(r.range(Dim::Proto), &DimRange::exact(6));
        assert!(rs.rule(1).is_default());
    }

    #[test]
    fn priority_order_matches_file_order() {
        let rs = parse_rules(SAMPLE).unwrap();
        assert!(rs.rule(0).priority > rs.rule(1).priority);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = format!("# header\n\n{SAMPLE}\n# trailing\n");
        let rs = parse_rules(&text).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn ignores_trailing_fields() {
        let text = "@1.2.3.4/32 5.6.7.8/32 80 : 80 443 : 443 0x11/0xFF 0x1000/0x1000 extra\n";
        let rs = parse_rules(text).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rule(0).range(Dim::Proto), &DimRange::exact(17));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_rules("not a rule\n").is_err());
        assert!(parse_rules("@1.2.3/32 5.6.7.8/32 0 : 1 0 : 1 0x00/0x00\n").is_err());
        assert!(parse_rules("@1.2.3.4/40 5.6.7.8/32 0 : 1 0 : 1 0x00/0x00\n").is_err());
        assert!(parse_rules("@1.2.3.4/32 5.6.7.8/32 9 : 1 0 : 1 0x00/0x00\n").is_err());
        assert!(parse_rules("@1.2.3.4/32 5.6.7.8/32 0 : 99999 0 : 1 0x00/0x00\n").is_err());
        let e = parse_rules("@1.2.3.4/32\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn roundtrip_generated_rules() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(5));
        let text = write_rules(&rs);
        let back = parse_rules(&text).unwrap();
        assert_eq!(back.len(), rs.len());
        for (a, b) in rs.rules().iter().zip(back.rules()) {
            assert_eq!(a.ranges, b.ranges, "{a} vs {b}");
        }
    }

    #[test]
    fn error_reports_line_number() {
        let text = format!("{SAMPLE}garbage\n");
        let e = parse_rules(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn wildcard_fields_roundtrip() {
        // A rule wildcarded in every dimension, and one wildcarded per
        // dimension, survive write -> parse exactly.
        let mut rules = vec![Rule::default_rule(0)];
        for dim in crate::dim::DIMS {
            let mut r = Rule::default_rule(0);
            // Pin every other dimension to an exact value so only `dim`
            // is wildcard.
            for other in crate::dim::DIMS {
                if other != dim {
                    r.ranges[other.index()] = DimRange::exact(7);
                }
            }
            rules.push(r);
        }
        let rs = RuleSet::from_ordered(rules);
        let back = parse_rules(&write_rules(&rs)).unwrap();
        assert_eq!(back.len(), rs.len());
        for (a, b) in rs.rules().iter().zip(back.rules()) {
            assert_eq!(a.ranges, b.ranges, "{a} vs {b}");
        }
        for dim in crate::dim::DIMS {
            assert!(back.rule(0).is_wildcard(dim), "{dim}");
        }
    }

    #[test]
    fn degenerate_port_ranges() {
        // A single-port inclusive range `80 : 80` is the half-open
        // [80, 81); hex bounds parse the same as decimal.
        let text = "@1.2.3.4/32 5.6.7.8/32 80 : 80 0x50 : 0x50 0x06/0xFF\n";
        let rs = parse_rules(text).unwrap();
        let r = rs.rule(0);
        assert_eq!(r.range(Dim::SrcPort), &DimRange::new(80, 81));
        assert_eq!(r.range(Dim::DstPort), &DimRange::new(80, 81));
        // The extreme single points survive a write -> parse round trip.
        for port in [0u64, 65535] {
            let mut rule = Rule::default_rule(0);
            rule.ranges[Dim::SrcPort.index()] = DimRange::new(port, port + 1);
            let rs = RuleSet::from_ordered(vec![rule, Rule::default_rule(0)]);
            let back = parse_rules(&write_rules(&rs)).unwrap();
            assert_eq!(back.rule(0).range(Dim::SrcPort), &DimRange::new(port, port + 1));
        }
    }

    #[test]
    fn inverted_port_ranges_are_rejected() {
        let e = parse_rules("@1.2.3.4/32 5.6.7.8/32 10 : 9 0 : 65535 0x00/0x00\n").unwrap_err();
        assert!(e.message.contains("inverted"), "{e}");
        let e = parse_rules("@1.2.3.4/32 5.6.7.8/32 0 : 65535 0xFFFF : 0x0001 0x00/0x00\n")
            .unwrap_err();
        assert!(e.message.contains("inverted"), "{e}");
    }

    #[test]
    fn malformed_fields_are_rejected_with_context() {
        // (line text, substring expected in the error message)
        let cases: [(&str, &str); 8] = [
            ("@1.2.3.4/32 5.6.7.8/32 0 : 1 0 : 1 6\n", "missing '/' in protocol"),
            ("@1.2.3.4/32 5.6.7.8/32 0 : 1 0 : 1 999/0xFF\n", "protocol 999 out of range"),
            ("@1.2.3.4/32 5.6.7.8/32 0 : 1 0 : 1 0xZZ/0xFF\n", "bad number"),
            ("@1.2.3.256/32 5.6.7.8/32 0 : 1 0 : 1 0x00/0x00\n", "octet 256 out of range"),
            ("@1.2.3.4.5/32 5.6.7.8/32 0 : 1 0 : 1 0x00/0x00\n", "expected 4 octets"),
            ("@1.2.3.4 5.6.7.8/32 0 : 1 0 : 1 0x00/0x00\n", "missing '/' in prefix"),
            ("@1.2.3.4/x2 5.6.7.8/32 0 : 1 0 : 1 0x00/0x00\n", "bad prefix length"),
            ("@1.2.3.4/32 5.6.7.8/32 0 - 1 0 : 1 0x00/0x00\n", "expected ':'"),
        ];
        for (text, want) in cases {
            let e = parse_rules(text).unwrap_err();
            assert!(e.message.contains(want), "{text:?}: got {e}");
            assert_eq!(e.line, 1, "{text:?}");
        }
    }

    #[test]
    fn roundtrip_every_family() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 150).with_seed(11));
            let back = parse_rules(&write_rules(&rs)).unwrap();
            assert_eq!(back.len(), rs.len(), "{fam}");
            for (a, b) in rs.rules().iter().zip(back.rules()) {
                assert_eq!(a.ranges, b.ranges, "{fam}: {a} vs {b}");
            }
        }
    }
}
