//! Priority-ordered rule containers and ground-truth linear matching.

use crate::packet::Packet;
use crate::rule::Rule;
use serde::{Deserialize, Serialize};

/// An ordered collection of rules forming one packet classifier.
///
/// Rules are kept sorted by descending priority, so index order equals
/// match-precedence order (index 0 is consulted first). The linear-scan
/// matcher here is the **ground truth** that every decision tree in the
/// workspace is validated against.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Build a rule set, sorting rules by descending priority.
    ///
    /// Ties in priority keep their relative input order (stable sort),
    /// matching the "first listed wins" convention of ClassBench files.
    pub fn new(mut rules: Vec<Rule>) -> Self {
        rules.sort_by_key(|r| std::cmp::Reverse(r.priority));
        RuleSet { rules }
    }

    /// Construct from rules already listed highest-priority-first,
    /// assigning descending priorities `n-1 .. 0` (ClassBench order).
    pub fn from_ordered(rules: Vec<Rule>) -> Self {
        let n = rules.len() as i32;
        let rules = rules
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.priority = n - 1 - i as i32;
                r
            })
            .collect();
        RuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules in descending priority order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rule at `index` in priority order.
    pub fn rule(&self, index: usize) -> &Rule {
        &self.rules[index]
    }

    /// Ground-truth classification: index of the highest-priority rule
    /// matching `packet`, or `None` when nothing matches.
    pub fn classify(&self, packet: &Packet) -> Option<usize> {
        self.rules.iter().position(|r| r.matches(packet))
    }

    /// Insert a rule, keeping priority order. Returns its index.
    ///
    /// Among equal priorities the new rule is placed last, so existing
    /// rules keep precedence over later additions.
    pub fn insert(&mut self, rule: Rule) -> usize {
        let idx = self.rules.partition_point(|r| r.priority >= rule.priority);
        self.rules.insert(idx, rule);
        idx
    }

    /// Remove and return the rule at `index` in priority order.
    pub fn remove(&mut self, index: usize) -> Rule {
        self.rules.remove(index)
    }

    /// True when a default (match-everything) rule is present, i.e. every
    /// packet is guaranteed at least one match.
    pub fn has_default(&self) -> bool {
        self.rules.iter().any(|r| r.is_default())
    }

    /// Iterate over `(index, rule)` pairs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Rule)> {
        self.rules.iter().enumerate()
    }
}

impl From<Vec<Rule>> for RuleSet {
    fn from(rules: Vec<Rule>) -> Self {
        RuleSet::new(rules)
    }
}

impl std::ops::Index<usize> for RuleSet {
    type Output = Rule;
    fn index(&self, index: usize) -> &Rule {
        &self.rules[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim;
    use crate::range::DimRange;

    fn rule_with_src(lo: u64, hi: u64, priority: i32) -> Rule {
        let mut r = Rule::default_rule(priority);
        r.ranges[Dim::SrcIp.index()] = DimRange::new(lo, hi);
        r
    }

    #[test]
    fn sorted_by_descending_priority() {
        let rs = RuleSet::new(vec![
            rule_with_src(0, 10, 1),
            rule_with_src(0, 10, 5),
            rule_with_src(0, 10, 3),
        ]);
        let prios: Vec<_> = rs.rules().iter().map(|r| r.priority).collect();
        assert_eq!(prios, vec![5, 3, 1]);
    }

    #[test]
    fn from_ordered_assigns_descending_priorities() {
        let rs = RuleSet::from_ordered(vec![
            rule_with_src(0, 10, 0),
            rule_with_src(5, 20, 0),
            Rule::default_rule(0),
        ]);
        assert_eq!(rs.rule(0).priority, 2);
        assert_eq!(rs.rule(2).priority, 0);
        assert!(rs.has_default());
    }

    #[test]
    fn classify_returns_first_match() {
        let rs = RuleSet::from_ordered(vec![
            rule_with_src(0, 10, 0),
            rule_with_src(0, 100, 0),
            Rule::default_rule(0),
        ]);
        let p = Packet::new(5, 0, 0, 0, 0);
        assert_eq!(rs.classify(&p), Some(0));
        let p = Packet::new(50, 0, 0, 0, 0);
        assert_eq!(rs.classify(&p), Some(1));
        let p = Packet::new(5000, 0, 0, 0, 0);
        assert_eq!(rs.classify(&p), Some(2));
    }

    #[test]
    fn classify_without_default_can_miss() {
        let rs = RuleSet::from_ordered(vec![rule_with_src(0, 10, 0)]);
        assert!(!rs.has_default());
        assert_eq!(rs.classify(&Packet::new(50, 0, 0, 0, 0)), None);
    }

    #[test]
    fn insert_keeps_order_and_precedence() {
        let mut rs = RuleSet::from_ordered(vec![rule_with_src(0, 10, 0), Rule::default_rule(0)]);
        // Insert at priority 1: ties with the existing priority-1 rule and
        // must land *after* it.
        let idx = rs.insert(rule_with_src(0, 10, 1));
        assert_eq!(idx, 1);
        assert_eq!(rs.len(), 3);
        // Insert above everything.
        let idx = rs.insert(rule_with_src(0, 10, 99));
        assert_eq!(idx, 0);
    }

    #[test]
    fn remove_rule() {
        let mut rs = RuleSet::from_ordered(vec![rule_with_src(0, 10, 0), Rule::default_rule(0)]);
        let removed = rs.remove(0);
        assert_eq!(removed.ranges[0], DimRange::new(0, 10));
        assert_eq!(rs.len(), 1);
        assert!(rs.has_default());
    }
}
