//! Packet-trace generation biased towards the rule set, mirroring
//! ClassBench's `trace_generator`.
//!
//! Real evaluation traffic overwhelmingly hits the installed rules, so
//! traces are built by picking a rule (Pareto-skewed, like ClassBench's
//! locality knob) and sampling a header inside its hypercube; a small
//! configurable fraction of headers is drawn uniformly from the full
//! space to exercise default-rule paths.

use crate::dim::DIMS;
use crate::packet::Packet;
use crate::range::DimRange;
use crate::ruleset::RuleSet;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`generate_trace`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of packets to produce.
    pub length: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of headers drawn uniformly from the whole space instead
    /// of from a rule (default 0.05).
    pub uniform_fraction: f64,
    /// Pareto shape for rule popularity; larger = more skew towards
    /// high-priority rules (default 1.0; 0 disables skew).
    pub skew: f64,
}

impl TraceConfig {
    /// A trace of `length` packets with default skew and seed 0.
    pub fn new(length: usize) -> Self {
        TraceConfig { length, seed: 0, uniform_fraction: 0.05, skew: 1.0 }
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn sample_in_range(rng: &mut impl Rng, r: &DimRange) -> u64 {
    if r.len() <= 1 {
        r.lo
    } else {
        rng.gen_range(r.lo..r.hi)
    }
}

/// Sample a header uniformly inside `rule`'s hypercube.
pub fn sample_packet_in_rule(rng: &mut impl Rng, rule: &crate::rule::Rule) -> Packet {
    let mut values = [0u64; 5];
    for (v, r) in values.iter_mut().zip(rule.ranges.iter()) {
        *v = sample_in_range(rng, r);
    }
    Packet { values }
}

/// Generate a packet trace biased towards `rules` (see module docs).
///
/// # Panics
/// Panics if `rules` is empty.
pub fn generate_trace(rules: &RuleSet, cfg: &TraceConfig) -> Vec<Packet> {
    assert!(!rules.is_empty(), "cannot build a trace for an empty rule set");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7472_6163); // "trac"
    let n = rules.len();
    (0..cfg.length)
        .map(|_| {
            if rng.gen::<f64>() < cfg.uniform_fraction {
                Packet::new(
                    rng.gen_range(0..1u64 << 32),
                    rng.gen_range(0..1u64 << 32),
                    rng.gen_range(0..1u64 << 16),
                    rng.gen_range(0..1u64 << 16),
                    rng.gen_range(0..256),
                )
            } else {
                // Pareto-skewed rule index: u^(1/(1+skew)) concentrates
                // mass near 0 (the high-priority rules).
                let u = rng.gen::<f64>();
                let idx = if cfg.skew > 0.0 {
                    ((u.powf(1.0 + cfg.skew)) * n as f64) as usize
                } else {
                    (u * n as f64) as usize
                }
                .min(n - 1);
                sample_packet_in_rule(&mut rng, rules.rule(idx))
            }
        })
        .collect()
}

/// Serialise a trace to the 13-bytes-per-packet wire layout.
pub fn trace_to_bytes(trace: &[Packet]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(trace.len() * 13);
    for p in trace {
        buf.extend_from_slice(&p.to_wire());
    }
    buf
}

/// Inverse of [`trace_to_bytes`]. Trailing partial records are ignored.
pub fn trace_from_bytes(data: &[u8]) -> Vec<Packet> {
    data.chunks_exact(13).map(|c| Packet::from_wire(c.try_into().unwrap())).collect()
}

/// Check that every value of every packet lies inside its dimension span.
pub fn trace_is_valid(trace: &[Packet]) -> bool {
    trace.iter().all(|p| DIMS.iter().all(|&d| p.value(d) < d.span()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_rules, GeneratorConfig};
    use crate::profiles::ClassifierFamily;

    fn rules() -> RuleSet {
        generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 100).with_seed(1))
    }

    #[test]
    fn trace_has_requested_length_and_is_valid() {
        let trace = generate_trace(&rules(), &TraceConfig::new(500));
        assert_eq!(trace.len(), 500);
        assert!(trace_is_valid(&trace));
    }

    #[test]
    fn trace_is_deterministic() {
        let rs = rules();
        let a = generate_trace(&rs, &TraceConfig::new(100).with_seed(3));
        let b = generate_trace(&rs, &TraceConfig::new(100).with_seed(3));
        assert_eq!(a, b);
        let c = generate_trace(&rs, &TraceConfig::new(100).with_seed(4));
        assert_ne!(a, c);
    }

    #[test]
    fn rule_directed_packets_match_nondefault_rules() {
        let rs = rules();
        let mut cfg = TraceConfig::new(400).with_seed(7);
        cfg.uniform_fraction = 0.0;
        let trace = generate_trace(&rs, &cfg);
        // With zero uniform fraction every packet was sampled inside some
        // rule, so every packet matches (priority may differ from the
        // sampled rule due to overlap, which is fine).
        for p in &trace {
            assert!(rs.classify(p).is_some(), "{p}");
        }
        // Skew means a decent fraction hits the top half of the rule list.
        let top_half_hits = trace.iter().filter(|p| rs.classify(p).unwrap() < rs.len() / 2).count();
        assert!(top_half_hits > trace.len() / 2);
    }

    #[test]
    fn wire_roundtrip() {
        let rs = rules();
        let trace = generate_trace(&rs, &TraceConfig::new(64));
        let bytes = trace_to_bytes(&trace);
        assert_eq!(bytes.len(), 64 * 13);
        assert_eq!(trace_from_bytes(&bytes), trace);
    }

    #[test]
    fn sample_in_rule_always_matches_that_rule() {
        let rs = rules();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for (_, rule) in rs.iter() {
            for _ in 0..5 {
                let p = sample_packet_in_rule(&mut rng, rule);
                assert!(rule.matches(&p), "{p} should match {rule}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_rule_set_panics() {
        let _ = generate_trace(&RuleSet::default(), &TraceConfig::new(1));
    }
}
