//! Packet-trace generation biased towards the rule set, mirroring
//! ClassBench's `trace_generator`.
//!
//! Real evaluation traffic overwhelmingly hits the installed rules, so
//! traces are built by picking a rule (Pareto-skewed, like ClassBench's
//! locality knob) and sampling a header inside its hypercube; a small
//! configurable fraction of headers is drawn uniformly from the full
//! space to exercise default-rule paths.

use crate::dim::DIMS;
use crate::packet::Packet;
use crate::range::DimRange;
use crate::ruleset::RuleSet;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`generate_trace`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of packets to produce.
    pub length: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of headers drawn uniformly from the whole space instead
    /// of from a rule (default 0.05).
    pub uniform_fraction: f64,
    /// Pareto shape for rule popularity; larger = more skew towards
    /// high-priority rules (default 1.0; 0 disables skew).
    pub skew: f64,
}

impl TraceConfig {
    /// A trace of `length` packets with default skew and seed 0.
    pub fn new(length: usize) -> Self {
        TraceConfig { length, seed: 0, uniform_fraction: 0.05, skew: 1.0 }
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn sample_in_range(rng: &mut impl Rng, r: &DimRange) -> u64 {
    if r.len() <= 1 {
        r.lo
    } else {
        rng.gen_range(r.lo..r.hi)
    }
}

/// Sample a header uniformly inside `rule`'s hypercube.
pub fn sample_packet_in_rule(rng: &mut impl Rng, rule: &crate::rule::Rule) -> Packet {
    let mut values = [0u64; 5];
    for (v, r) in values.iter_mut().zip(rule.ranges.iter()) {
        *v = sample_in_range(rng, r);
    }
    Packet { values }
}

/// Generate a packet trace biased towards `rules` (see module docs).
///
/// # Panics
/// Panics if `rules` is empty.
pub fn generate_trace(rules: &RuleSet, cfg: &TraceConfig) -> Vec<Packet> {
    assert!(!rules.is_empty(), "cannot build a trace for an empty rule set");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7472_6163); // "trac"
    let n = rules.len();
    (0..cfg.length)
        .map(|_| {
            if rng.gen::<f64>() < cfg.uniform_fraction {
                Packet::new(
                    rng.gen_range(0..1u64 << 32),
                    rng.gen_range(0..1u64 << 32),
                    rng.gen_range(0..1u64 << 16),
                    rng.gen_range(0..1u64 << 16),
                    rng.gen_range(0..256),
                )
            } else {
                // Pareto-skewed rule index: u^(1/(1+skew)) concentrates
                // mass near 0 (the high-priority rules).
                let u = rng.gen::<f64>();
                let idx = if cfg.skew > 0.0 {
                    ((u.powf(1.0 + cfg.skew)) * n as f64) as usize
                } else {
                    (u * n as f64) as usize
                }
                .min(n - 1);
                sample_packet_in_rule(&mut rng, rules.rule(idx))
            }
        })
        .collect()
}

/// Traffic-skew models for [`generate_skewed_trace`] — the scenario
/// axis of the `bench_sweep` matrix.
///
/// Real classifier traffic is rarely uniform over the installed rules:
/// a few flows dominate (Zipf popularity) and packets of one flow
/// arrive back-to-back (temporal locality). Each model below biases
/// *which rule* a packet is sampled inside; the header is then drawn
/// uniformly from that rule's hypercube, so every non-uniform packet
/// matches an installed rule by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficSkew {
    /// Every rule equally likely — the control cell.
    Uniform,
    /// Zipf-over-matched-rules: the rule at popularity rank `k`
    /// (priority order, rank 0 = highest priority) is drawn with
    /// probability ∝ `1 / (k + 1)^exponent`.
    Zipf {
        /// Zipf exponent; 1.0 is the classic heavy tail. Must be > 0.
        exponent: f64,
    },
    /// Locality bursts: a small working set of rules serves runs of
    /// consecutive packets before one member rotates out — flow-level
    /// temporal locality.
    LocalityBurst {
        /// Rules in the active working set (≥ 1).
        working_set: usize,
        /// Consecutive packets drawn from one rule per burst (≥ 1).
        burst: usize,
    },
}

impl TrafficSkew {
    /// The default Zipf cell (`exponent = 1.0`).
    pub const ZIPF: TrafficSkew = TrafficSkew::Zipf { exponent: 1.0 };
    /// The default locality cell (16-rule working set, 32-packet
    /// bursts).
    pub const LOCALITY: TrafficSkew = TrafficSkew::LocalityBurst { working_set: 16, burst: 32 };

    /// Parse a sweep tag: `uniform`, `zipf` (optionally `zipf:EXP`),
    /// or `locality` (optionally `locality:SET x BURST`, e.g.
    /// `locality:8x64`). Returns `None` for anything else.
    pub fn parse(tag: &str) -> Option<TrafficSkew> {
        let tag = tag.trim();
        if tag == "uniform" {
            return Some(TrafficSkew::Uniform);
        }
        if tag == "zipf" {
            return Some(TrafficSkew::ZIPF);
        }
        if let Some(exp) = tag.strip_prefix("zipf:") {
            let exponent: f64 = exp.parse().ok()?;
            return (exponent > 0.0).then_some(TrafficSkew::Zipf { exponent });
        }
        if tag == "locality" {
            return Some(TrafficSkew::LOCALITY);
        }
        if let Some(spec) = tag.strip_prefix("locality:") {
            let (set, burst) = spec.split_once('x')?;
            let working_set: usize = set.parse().ok()?;
            let burst: usize = burst.parse().ok()?;
            return (working_set >= 1 && burst >= 1)
                .then_some(TrafficSkew::LocalityBurst { working_set, burst });
        }
        None
    }

    /// The bare tag naming this skew family (`uniform` / `zipf` /
    /// `locality`), as the sweep JSON records it.
    pub fn tag(&self) -> &'static str {
        match self {
            TrafficSkew::Uniform => "uniform",
            TrafficSkew::Zipf { .. } => "zipf",
            TrafficSkew::LocalityBurst { .. } => "locality",
        }
    }
}

/// Configuration for [`generate_skewed_trace`].
#[derive(Debug, Clone)]
pub struct SkewedTraceConfig {
    /// Number of packets to produce.
    pub length: usize,
    /// RNG seed; traces are a pure function of (rules, config).
    pub seed: u64,
    /// The skew model.
    pub skew: TrafficSkew,
    /// Fraction of headers drawn uniformly from the whole space
    /// (default-rule traffic), like [`TraceConfig::uniform_fraction`].
    pub uniform_fraction: f64,
}

impl SkewedTraceConfig {
    /// A trace of `length` packets under `skew`, seed 0, 5% full-space
    /// headers.
    pub fn new(length: usize, skew: TrafficSkew) -> Self {
        SkewedTraceConfig { length, seed: 0, skew, uniform_fraction: 0.05 }
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn uniform_packet(rng: &mut impl Rng) -> Packet {
    Packet::new(
        rng.gen_range(0..1u64 << 32),
        rng.gen_range(0..1u64 << 32),
        rng.gen_range(0..1u64 << 16),
        rng.gen_range(0..1u64 << 16),
        rng.gen_range(0..256),
    )
}

/// Generate a packet trace under an explicit [`TrafficSkew`] model
/// (see the enum docs). Seeded and deterministic: the result is a pure
/// function of `(rules, cfg)` — pinned by golden-hash tests.
///
/// # Panics
/// Panics if `rules` is empty or `cfg.length` rules cannot be sampled
/// (degenerate skew parameters are clamped instead: working sets and
/// bursts are at least 1, and working sets never exceed the rule
/// count).
pub fn generate_skewed_trace(rules: &RuleSet, cfg: &SkewedTraceConfig) -> Vec<Packet> {
    assert!(!rules.is_empty(), "cannot build a trace for an empty rule set");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x736b_6577); // "skew"
    let n = rules.len();
    match cfg.skew {
        TrafficSkew::Uniform => (0..cfg.length)
            .map(|_| {
                if rng.gen::<f64>() < cfg.uniform_fraction {
                    uniform_packet(&mut rng)
                } else {
                    let idx = rng.gen_range(0..n);
                    sample_packet_in_rule(&mut rng, rules.rule(idx))
                }
            })
            .collect(),
        TrafficSkew::Zipf { exponent } => {
            // Cumulative Zipf weights over priority ranks; a uniform
            // draw binary-searches its rank. For the default
            // exponent 1.0 the weights are exact IEEE divisions, so
            // golden hashes are platform-stable.
            let mut cumulative = Vec::with_capacity(n);
            let mut total = 0.0f64;
            for k in 0..n {
                let w = if exponent == 1.0 {
                    1.0 / (k + 1) as f64
                } else {
                    ((k + 1) as f64).powf(-exponent)
                };
                total += w;
                cumulative.push(total);
            }
            (0..cfg.length)
                .map(|_| {
                    if rng.gen::<f64>() < cfg.uniform_fraction {
                        uniform_packet(&mut rng)
                    } else {
                        let u = rng.gen::<f64>() * total;
                        let idx = cumulative.partition_point(|&c| c < u).min(n - 1);
                        sample_packet_in_rule(&mut rng, rules.rule(idx))
                    }
                })
                .collect()
        }
        TrafficSkew::LocalityBurst { working_set, burst } => {
            let ws_len = working_set.clamp(1, n);
            let burst = burst.max(1);
            let mut ws: Vec<usize> = (0..ws_len).map(|_| rng.gen_range(0..n)).collect();
            let mut out = Vec::with_capacity(cfg.length);
            while out.len() < cfg.length {
                // One burst: consecutive packets inside one rule of the
                // working set (distinct headers, same flow's rule).
                let rule_idx = ws[rng.gen_range(0..ws_len)];
                let run = burst.min(cfg.length - out.len());
                for _ in 0..run {
                    if rng.gen::<f64>() < cfg.uniform_fraction {
                        out.push(uniform_packet(&mut rng));
                    } else {
                        out.push(sample_packet_in_rule(&mut rng, rules.rule(rule_idx)));
                    }
                }
                // Rotate one working-set member occasionally so the hot
                // set drifts instead of being frozen for the whole trace.
                if rng.gen::<f64>() < 0.25 {
                    ws[rng.gen_range(0..ws_len)] = rng.gen_range(0..n);
                }
            }
            out
        }
    }
}

/// FNV-1a over the wire encoding of a trace — the golden-hash
/// fingerprint the determinism tests and the sweep emitter pin.
pub fn trace_hash(trace: &[Packet]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in trace {
        for b in p.to_wire() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Serialise a trace to the 13-bytes-per-packet wire layout.
pub fn trace_to_bytes(trace: &[Packet]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(trace.len() * 13);
    for p in trace {
        buf.extend_from_slice(&p.to_wire());
    }
    buf
}

/// Inverse of [`trace_to_bytes`]. Trailing partial records are ignored.
pub fn trace_from_bytes(data: &[u8]) -> Vec<Packet> {
    data.chunks_exact(13).map(|c| Packet::from_wire(c.try_into().unwrap())).collect()
}

/// Check that every value of every packet lies inside its dimension span.
pub fn trace_is_valid(trace: &[Packet]) -> bool {
    trace.iter().all(|p| DIMS.iter().all(|&d| p.value(d) < d.span()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_rules, GeneratorConfig};
    use crate::profiles::ClassifierFamily;

    fn rules() -> RuleSet {
        generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 100).with_seed(1))
    }

    #[test]
    fn trace_has_requested_length_and_is_valid() {
        let trace = generate_trace(&rules(), &TraceConfig::new(500));
        assert_eq!(trace.len(), 500);
        assert!(trace_is_valid(&trace));
    }

    #[test]
    fn trace_is_deterministic() {
        let rs = rules();
        let a = generate_trace(&rs, &TraceConfig::new(100).with_seed(3));
        let b = generate_trace(&rs, &TraceConfig::new(100).with_seed(3));
        assert_eq!(a, b);
        let c = generate_trace(&rs, &TraceConfig::new(100).with_seed(4));
        assert_ne!(a, c);
    }

    #[test]
    fn rule_directed_packets_match_nondefault_rules() {
        let rs = rules();
        let mut cfg = TraceConfig::new(400).with_seed(7);
        cfg.uniform_fraction = 0.0;
        let trace = generate_trace(&rs, &cfg);
        // With zero uniform fraction every packet was sampled inside some
        // rule, so every packet matches (priority may differ from the
        // sampled rule due to overlap, which is fine).
        for p in &trace {
            assert!(rs.classify(p).is_some(), "{p}");
        }
        // Skew means a decent fraction hits the top half of the rule list.
        let top_half_hits = trace.iter().filter(|p| rs.classify(p).unwrap() < rs.len() / 2).count();
        assert!(top_half_hits > trace.len() / 2);
    }

    #[test]
    fn wire_roundtrip() {
        let rs = rules();
        let trace = generate_trace(&rs, &TraceConfig::new(64));
        let bytes = trace_to_bytes(&trace);
        assert_eq!(bytes.len(), 64 * 13);
        assert_eq!(trace_from_bytes(&bytes), trace);
    }

    #[test]
    fn sample_in_rule_always_matches_that_rule() {
        let rs = rules();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for (_, rule) in rs.iter() {
            for _ in 0..5 {
                let p = sample_packet_in_rule(&mut rng, rule);
                assert!(rule.matches(&p), "{p} should match {rule}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_rule_set_panics() {
        let _ = generate_trace(&RuleSet::default(), &TraceConfig::new(1));
    }

    #[test]
    fn skew_tags_parse_and_roundtrip() {
        assert_eq!(TrafficSkew::parse("uniform"), Some(TrafficSkew::Uniform));
        assert_eq!(TrafficSkew::parse("zipf"), Some(TrafficSkew::ZIPF));
        assert_eq!(TrafficSkew::parse("zipf:1.5"), Some(TrafficSkew::Zipf { exponent: 1.5 }));
        assert_eq!(
            TrafficSkew::parse("locality:8x64"),
            Some(TrafficSkew::LocalityBurst { working_set: 8, burst: 64 })
        );
        assert_eq!(TrafficSkew::parse("locality"), Some(TrafficSkew::LOCALITY));
        assert_eq!(TrafficSkew::parse("pareto"), None);
        assert_eq!(TrafficSkew::parse("zipf:-1"), None);
        assert_eq!(TrafficSkew::parse("locality:0x4"), None);
        for skew in [TrafficSkew::Uniform, TrafficSkew::ZIPF, TrafficSkew::LOCALITY] {
            assert_eq!(TrafficSkew::parse(skew.tag()), Some(skew));
        }
    }

    #[test]
    fn skewed_traces_are_seed_deterministic_and_valid() {
        let rs = rules();
        for skew in [TrafficSkew::Uniform, TrafficSkew::ZIPF, TrafficSkew::LOCALITY] {
            let cfg = SkewedTraceConfig::new(600, skew).with_seed(13);
            let a = generate_skewed_trace(&rs, &cfg);
            let b = generate_skewed_trace(&rs, &cfg);
            assert_eq!(a, b, "{skew:?} not deterministic");
            assert_eq!(a.len(), 600);
            assert!(trace_is_valid(&a), "{skew:?} produced out-of-span values");
            let c = generate_skewed_trace(&rs, &SkewedTraceConfig::new(600, skew).with_seed(14));
            assert_ne!(a, c, "{skew:?} ignores the seed");
        }
    }

    #[test]
    fn zipf_concentrates_on_high_priority_rules() {
        let rs = rules();
        let mut cfg = SkewedTraceConfig::new(2000, TrafficSkew::ZIPF).with_seed(5);
        cfg.uniform_fraction = 0.0;
        let trace = generate_skewed_trace(&rs, &cfg);
        // Harmonic mass of the first 10 ranks out of 100 is
        // H(10)/H(100) ≈ 0.56 — far above the uniform 10%.
        let top10 = trace.iter().filter(|p| rs.classify(p).unwrap() < 10).count();
        assert!(top10 > trace.len() / 3, "only {top10}/{} packets hit the top 10", trace.len());
        // And every packet matches some rule (sampled inside one).
        assert!(trace.iter().all(|p| rs.classify(p).is_some()));
    }

    #[test]
    fn locality_bursts_repeat_matched_rules() {
        let rs = rules();
        let mut cfg =
            SkewedTraceConfig::new(1024, TrafficSkew::LocalityBurst { working_set: 4, burst: 32 })
                .with_seed(6);
        cfg.uniform_fraction = 0.0;
        let trace = generate_skewed_trace(&rs, &cfg);
        // Consecutive packets match the same rule far more often than
        // an unordered trace would: count adjacent matched-rule repeats.
        let matches: Vec<usize> = trace.iter().map(|p| rs.classify(p).unwrap()).collect();
        let repeats = matches.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            repeats * 2 > trace.len(),
            "only {repeats} adjacent repeats in {} packets",
            trace.len()
        );
    }

    #[test]
    fn trace_hash_discriminates() {
        let rs = rules();
        let a = generate_skewed_trace(&rs, &SkewedTraceConfig::new(64, TrafficSkew::ZIPF));
        let b =
            generate_skewed_trace(&rs, &SkewedTraceConfig::new(64, TrafficSkew::ZIPF).with_seed(1));
        assert_eq!(trace_hash(&a), trace_hash(&a));
        assert_ne!(trace_hash(&a), trace_hash(&b));
        assert_ne!(trace_hash(&a), trace_hash(&a[..63]));
    }

    #[test]
    fn working_set_larger_than_rules_is_clamped() {
        let rs = rules();
        let cfg = SkewedTraceConfig::new(
            50,
            TrafficSkew::LocalityBurst { working_set: 10_000, burst: 7 },
        );
        let trace = generate_skewed_trace(&rs, &cfg);
        assert_eq!(trace.len(), 50);
        assert!(trace_is_valid(&trace));
    }
}
