//! Synthetic ClassBench-style rule-set generation.
//!
//! The generator reproduces the *structural* properties of ClassBench
//! output (see [`crate::profiles`]) rather than bit-identical rule sets:
//! shared base prefixes give locality/overlap, family profiles control
//! wildcard fractions and port classes, and a default rule guarantees
//! total coverage. Generation is fully deterministic in the seed.

use crate::dim::Dim;
use crate::profiles::{
    ClassifierFamily, FamilyProfile, PortClass, PortClassDist, PrefixLenDist, ProtoDist,
    WELL_KNOWN_PORTS,
};
use crate::range::DimRange;
use crate::rule::Rule;
use crate::ruleset::RuleSet;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`generate_rules`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Family whose statistics to imitate.
    pub family: ClassifierFamily,
    /// Total number of rules, including the trailing default rule.
    pub size: usize,
    /// RNG seed; also select different "seed variants" (acl1 vs acl2)
    /// by varying this.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A config for `size` rules of the given family, seed 0.
    pub fn new(family: ClassifierFamily, size: usize) -> Self {
        GeneratorConfig { family, size, seed: 0 }
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Label in the paper's naming scheme, e.g. `acl3_10k` for variant 3
    /// (derived from the seed) at size 10_000.
    pub fn label(&self) -> String {
        let variant = (self.seed % self.family.num_variants() as u64) + 1;
        let size = if self.size >= 1000 {
            format!("{}k", self.size / 1000)
        } else {
            self.size.to_string()
        };
        format!("{}{}_{}", self.family.tag(), variant, size)
    }
}

fn sample_weighted<'a, T>(rng: &mut impl Rng, points: &'a [(T, f64)]) -> &'a T {
    let total: f64 = points.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for (v, w) in points {
        x -= w;
        if x <= 0.0 {
            return v;
        }
    }
    &points[points.len() - 1].0
}

fn sample_prefix_len(rng: &mut impl Rng, dist: &PrefixLenDist) -> u32 {
    *sample_weighted(rng, dist.points)
}

fn sample_port(rng: &mut impl Rng, dist: &PortClassDist) -> DimRange {
    match sample_weighted(rng, dist.points) {
        PortClass::Wildcard => DimRange::full(Dim::SrcPort),
        PortClass::ExactWellKnown => {
            DimRange::exact(u64::from(*WELL_KNOWN_PORTS.choose(rng).unwrap()))
        }
        PortClass::ExactHigh => DimRange::exact(rng.gen_range(1024..65536)),
        PortClass::LowRange => DimRange::new(0, 1024),
        PortClass::HighRange => DimRange::new(1024, 65536),
        PortClass::ArbitraryRange => {
            let lo = rng.gen_range(0..65000u64);
            let hi = rng.gen_range(lo + 1..65536u64.min(lo + 4096) + 1);
            DimRange::new(lo, hi.min(65536))
        }
    }
}

fn sample_proto(rng: &mut impl Rng, dist: &ProtoDist) -> DimRange {
    match sample_weighted(rng, dist.points) {
        Some(p) => DimRange::exact(u64::from(*p)),
        None => DimRange::full(Dim::Proto),
    }
}

/// Sample an IP range: pick a base prefix from the pool (locality), then
/// refine it to the target prefix length with random low bits.
fn sample_ip(rng: &mut impl Rng, pool: &[u64], base_len: u32, dist: &PrefixLenDist) -> DimRange {
    let len = sample_prefix_len(rng, dist);
    if len == 0 {
        return DimRange::full(Dim::SrcIp);
    }
    let base = *pool.choose(rng).unwrap();
    let value = if len <= base_len {
        base
    } else {
        // Refine the base prefix with random bits below the base length.
        let extra_bits = 32 - base_len;
        base | (rng.gen::<u64>() & ((1u64 << extra_bits) - 1))
    };
    DimRange::from_prefix(value, len, 32)
}

/// Generate a synthetic classifier per the family profile in `cfg`.
///
/// The result always ends with a default rule, so every packet matches
/// at least one rule (as in Figure 1 of the paper). Duplicate hypercubes
/// are avoided; rules are returned highest-priority first.
pub fn generate_rules(cfg: &GeneratorConfig) -> RuleSet {
    assert!(cfg.size >= 1, "need at least the default rule");
    let profile: FamilyProfile = cfg.family.profile();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x6e63_7574); // "ncut"

    // Shared base-prefix pools give the rule set locality: many rules
    // nest under a few address blocks, like real classifiers.
    let pool_size = ((cfg.size.max(64) / 256).max(1) * profile.base_prefix_pool_per_256).max(4);
    let make_pool = |rng: &mut ChaCha8Rng| -> Vec<u64> {
        (0..pool_size)
            .map(|_| {
                let raw: u64 = rng.gen::<u32>().into();
                let shift = 32 - profile.base_prefix_len;
                (raw >> shift) << shift
            })
            .collect()
    };
    let src_pool = make_pool(&mut rng);
    let dst_pool = make_pool(&mut rng);

    let mut rules: Vec<Rule> = Vec::with_capacity(cfg.size);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while rules.len() < cfg.size - 1 && attempts < cfg.size * 64 {
        attempts += 1;
        let rule = Rule::from_fields(
            sample_ip(&mut rng, &src_pool, profile.base_prefix_len, &profile.src_prefix),
            sample_ip(&mut rng, &dst_pool, profile.base_prefix_len, &profile.dst_prefix),
            sample_port(&mut rng, &profile.src_port),
            sample_port(&mut rng, &profile.dst_port),
            sample_proto(&mut rng, &profile.proto),
            0,
        );
        if rule.is_default() {
            continue; // only the trailing rule may be the default
        }
        if seen.insert(rule.ranges) {
            rules.push(rule);
        }
    }
    rules.push(Rule::default_rule(0));
    RuleSet::from_ordered(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use proptest::prelude::*;
    // Explicit import outranks the two glob-imported `Rng` traits
    // (rand's and proptest's re-export), resolving method ambiguity.
    use rand::Rng;

    #[test]
    fn generates_requested_size() {
        for fam in ClassifierFamily::ALL {
            let rs = generate_rules(&GeneratorConfig::new(fam, 256));
            assert_eq!(rs.len(), 256, "{fam}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = GeneratorConfig::new(ClassifierFamily::Acl, 128).with_seed(42);
        let a = generate_rules(&cfg);
        let b = generate_rules(&cfg);
        assert_eq!(a, b);
        let c = generate_rules(&cfg.clone().with_seed(43));
        assert_ne!(a, c);
    }

    #[test]
    fn ends_with_default_rule() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 64));
        assert!(rs.rules().last().unwrap().is_default());
        assert!(rs.has_default());
        // Only the last rule is the default.
        let defaults = rs.rules().iter().filter(|r| r.is_default()).count();
        assert_eq!(defaults, 1);
    }

    #[test]
    fn no_duplicate_hypercubes() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 512));
        let mut seen = std::collections::HashSet::new();
        for r in rs.rules() {
            assert!(seen.insert(r.ranges), "duplicate rule {r}");
        }
    }

    #[test]
    fn every_packet_matches_something() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 100));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..200 {
            let p = Packet::new(
                rng.gen_range(0..1u64 << 32),
                rng.gen_range(0..1u64 << 32),
                rng.gen_range(0..1u64 << 16),
                rng.gen_range(0..1u64 << 16),
                rng.gen_range(0..256),
            );
            assert!(rs.classify(&p).is_some());
        }
    }

    #[test]
    fn acl_source_ports_mostly_wildcard() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 1000));
        let wild = rs.rules().iter().filter(|r| r.is_wildcard(Dim::SrcPort)).count() as f64
            / rs.len() as f64;
        assert!(wild > 0.7, "ACL src-port wildcard fraction {wild}");
    }

    #[test]
    fn fw_has_more_ip_wildcards_than_acl() {
        let frac_wild = |fam| {
            let rs = generate_rules(&GeneratorConfig::new(fam, 1000));
            rs.rules().iter().filter(|r| r.is_wildcard(Dim::SrcIp)).count() as f64 / rs.len() as f64
        };
        assert!(frac_wild(ClassifierFamily::Fw) > frac_wild(ClassifierFamily::Acl));
    }

    #[test]
    fn labels_follow_paper_naming() {
        let cfg = GeneratorConfig::new(ClassifierFamily::Acl, 1000).with_seed(2);
        assert_eq!(cfg.label(), "acl3_1k");
        let cfg = GeneratorConfig::new(ClassifierFamily::Ipc, 10_000).with_seed(0);
        assert_eq!(cfg.label(), "ipc1_10k");
        let cfg = GeneratorConfig::new(ClassifierFamily::Fw, 500).with_seed(0);
        assert_eq!(cfg.label(), "fw1_500");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_all_ranges_within_dim_spans(seed in 0u64..100) {
            let rs = generate_rules(
                &GeneratorConfig::new(ClassifierFamily::Fw, 64).with_seed(seed));
            for r in rs.rules() {
                for (i, range) in r.ranges.iter().enumerate() {
                    let dim = Dim::from_index(i);
                    prop_assert!(range.hi <= dim.span());
                    prop_assert!(range.lo < range.hi);
                }
            }
        }
    }
}
