//! The five classification dimensions and their bit widths.

use serde::{Deserialize, Serialize};

/// Number of classification dimensions (the standard 5-tuple).
pub const NUM_DIMS: usize = 5;

/// Bit width of each dimension, indexed by [`Dim`] discriminant:
/// source IP (32), destination IP (32), source port (16), destination
/// port (16), protocol (8).
pub const DIM_BITS: [u32; NUM_DIMS] = [32, 32, 16, 16, 8];

/// All dimensions in canonical order.
pub const DIMS: [Dim; NUM_DIMS] = [Dim::SrcIp, Dim::DstIp, Dim::SrcPort, Dim::DstPort, Dim::Proto];

/// One of the five packet-header fields a classifier matches on.
///
/// The discriminant doubles as the index into per-dimension arrays
/// throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum Dim {
    /// Source IPv4 address, 32 bits.
    SrcIp = 0,
    /// Destination IPv4 address, 32 bits.
    DstIp = 1,
    /// Source transport port, 16 bits.
    SrcPort = 2,
    /// Destination transport port, 16 bits.
    DstPort = 3,
    /// IP protocol number, 8 bits.
    Proto = 4,
}

impl Dim {
    /// Index into per-dimension arrays (same as the enum discriminant).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Construct from an index in `0..NUM_DIMS`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_DIMS`.
    #[inline]
    pub const fn from_index(idx: usize) -> Dim {
        DIMS[idx]
    }

    /// Bit width of this dimension's value space.
    #[inline]
    pub const fn bits(self) -> u32 {
        DIM_BITS[self as usize]
    }

    /// Exclusive upper bound of the dimension's value space
    /// (`2^bits`, e.g. `2^32` for IPs).
    #[inline]
    pub const fn span(self) -> u64 {
        1u64 << self.bits()
    }

    /// Short human-readable name used in visualisations.
    pub const fn name(self) -> &'static str {
        match self {
            Dim::SrcIp => "SrcIP",
            Dim::DstIp => "DstIP",
            Dim::SrcPort => "SrcPort",
            Dim::DstPort => "DstPort",
            Dim::Proto => "Proto",
        }
    }
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, d) in DIMS.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), *d);
        }
    }

    #[test]
    fn spans_match_bit_widths() {
        assert_eq!(Dim::SrcIp.span(), 1 << 32);
        assert_eq!(Dim::DstIp.span(), 1 << 32);
        assert_eq!(Dim::SrcPort.span(), 1 << 16);
        assert_eq!(Dim::DstPort.span(), 1 << 16);
        assert_eq!(Dim::Proto.span(), 256);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = DIMS.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_DIMS);
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = Dim::from_index(5);
    }
}
