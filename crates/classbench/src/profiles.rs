//! Family profiles for the synthetic rule-set generator.
//!
//! ClassBench (Taylor & Turner, INFOCOM 2005) synthesises classifiers
//! from seed statistics harvested from real filter sets in three
//! families: access-control lists (ACL), firewalls (FW), and IP chains
//! (IPC). The original seed files are not redistributable, so this
//! module encodes the structural statistics the downstream algorithms
//! are actually sensitive to:
//!
//! * **prefix-length distributions** for source/destination IPs (how
//!   specific the rules are, and therefore how effective IP cuts are),
//! * **port-class mixes** (wildcard / well-known exact / ephemeral
//!   range / low range / arbitrary range — drives rule replication when
//!   cutting port dimensions),
//! * **protocol mixes** (TCP/UDP/ICMP/wildcard), and
//! * **locality**: rules share a pool of base prefixes, giving the
//!   skewed, overlapping geometry of real classifiers.
//!
//! The numbers follow the qualitative characterisation in the ClassBench
//! and EffiCuts papers: ACL rules are mostly specific with exact
//! destination ports; FW rules contain many wildcards (the sets that
//! stress rule-replication); IPC sits in between.

use serde::{Deserialize, Serialize};

/// Which ClassBench family a synthetic classifier imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierFamily {
    /// Access-control lists: specific prefixes, exact destination ports.
    Acl,
    /// Firewalls: many wildcards, port ranges; worst case for replication.
    Fw,
    /// IP chains: intermediate mix.
    Ipc,
}

impl ClassifierFamily {
    /// All families, in the order the paper's figures enumerate them.
    pub const ALL: [ClassifierFamily; 3] =
        [ClassifierFamily::Acl, ClassifierFamily::Fw, ClassifierFamily::Ipc];

    /// Short lowercase tag used in benchmark labels (`acl1_1k` style).
    pub const fn tag(self) -> &'static str {
        match self {
            ClassifierFamily::Acl => "acl",
            ClassifierFamily::Fw => "fw",
            ClassifierFamily::Ipc => "ipc",
        }
    }

    /// Number of seed variants the paper's figures use per family
    /// (acl1–5, fw1–5, ipc1–2).
    pub const fn num_variants(self) -> usize {
        match self {
            ClassifierFamily::Acl => 5,
            ClassifierFamily::Fw => 5,
            ClassifierFamily::Ipc => 2,
        }
    }

    /// The structural statistics for this family.
    pub fn profile(self) -> FamilyProfile {
        match self {
            ClassifierFamily::Acl => ACL_PROFILE,
            ClassifierFamily::Fw => FW_PROFILE,
            ClassifierFamily::Ipc => IPC_PROFILE,
        }
    }
}

impl std::fmt::Display for ClassifierFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// A discrete distribution over prefix lengths, as `(length, weight)`
/// pairs. Weights need not sum to 1.
#[derive(Debug, Clone, Copy)]
pub struct PrefixLenDist {
    /// `(prefix_len, weight)` support points.
    pub points: &'static [(u32, f64)],
}

/// The shape of a port field in a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortClass {
    /// Full wildcard `[0, 65536)`.
    Wildcard,
    /// A single well-known port (`< 1024`), e.g. 80/443/53.
    ExactWellKnown,
    /// A single ephemeral/registered port (`>= 1024`).
    ExactHigh,
    /// The low range `[0, 1024)`.
    LowRange,
    /// The ephemeral range `[1024, 65536)`.
    HighRange,
    /// An arbitrary contiguous range.
    ArbitraryRange,
}

/// A weighted mix of [`PortClass`]es.
#[derive(Debug, Clone, Copy)]
pub struct PortClassDist {
    /// `(class, weight)` support points.
    pub points: &'static [(PortClass, f64)],
}

/// A weighted mix over protocol values; `None` is the wildcard.
#[derive(Debug, Clone, Copy)]
pub struct ProtoDist {
    /// `(protocol or wildcard, weight)` support points.
    pub points: &'static [(Option<u8>, f64)],
}

/// Full structural statistics for one classifier family.
#[derive(Debug, Clone, Copy)]
pub struct FamilyProfile {
    /// Source-address prefix lengths.
    pub src_prefix: PrefixLenDist,
    /// Destination-address prefix lengths.
    pub dst_prefix: PrefixLenDist,
    /// Source-port field classes.
    pub src_port: PortClassDist,
    /// Destination-port field classes.
    pub dst_port: PortClassDist,
    /// Protocol mix.
    pub proto: ProtoDist,
    /// Number of shared base prefixes per 256 rules; smaller pools give
    /// more overlap/locality.
    pub base_prefix_pool_per_256: usize,
    /// Length of the shared base prefixes from which specific rules are
    /// derived.
    pub base_prefix_len: u32,
}

/// Well-known ports sampled for [`PortClass::ExactWellKnown`].
pub const WELL_KNOWN_PORTS: [u16; 12] = [20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 443, 993];

/// Protocol numbers: ICMP, TCP, UDP, GRE, ESP.
pub const PROTO_ICMP: u8 = 1;
/// TCP protocol number.
pub const PROTO_TCP: u8 = 6;
/// UDP protocol number.
pub const PROTO_UDP: u8 = 17;
/// GRE protocol number.
pub const PROTO_GRE: u8 = 47;
/// ESP protocol number.
pub const PROTO_ESP: u8 = 50;

const ACL_PROFILE: FamilyProfile = FamilyProfile {
    // ACLs: dominated by specific prefixes; almost no IP wildcards.
    src_prefix: PrefixLenDist {
        points: &[(0, 0.02), (8, 0.02), (16, 0.08), (21, 0.08), (24, 0.30), (28, 0.15), (32, 0.35)],
    },
    dst_prefix: PrefixLenDist {
        points: &[(0, 0.01), (16, 0.05), (21, 0.09), (24, 0.35), (28, 0.15), (32, 0.35)],
    },
    // ACL source ports are nearly always wildcarded...
    src_port: PortClassDist {
        points: &[
            (PortClass::Wildcard, 0.90),
            (PortClass::HighRange, 0.07),
            (PortClass::ExactHigh, 0.03),
        ],
    },
    // ...while destination ports name the service.
    dst_port: PortClassDist {
        points: &[
            (PortClass::ExactWellKnown, 0.55),
            (PortClass::ExactHigh, 0.15),
            (PortClass::Wildcard, 0.15),
            (PortClass::ArbitraryRange, 0.10),
            (PortClass::LowRange, 0.05),
        ],
    },
    proto: ProtoDist {
        points: &[
            (Some(PROTO_TCP), 0.60),
            (Some(PROTO_UDP), 0.25),
            (Some(PROTO_ICMP), 0.05),
            (None, 0.10),
        ],
    },
    base_prefix_pool_per_256: 24,
    base_prefix_len: 16,
};

const FW_PROFILE: FamilyProfile = FamilyProfile {
    // Firewalls: many wildcards and short prefixes -> large rules that
    // replicate badly under cutting (EffiCuts' motivating case).
    src_prefix: PrefixLenDist {
        points: &[(0, 0.25), (8, 0.08), (16, 0.15), (24, 0.22), (32, 0.30)],
    },
    dst_prefix: PrefixLenDist {
        points: &[(0, 0.20), (8, 0.05), (16, 0.15), (24, 0.25), (32, 0.35)],
    },
    src_port: PortClassDist {
        points: &[
            (PortClass::Wildcard, 0.75),
            (PortClass::HighRange, 0.15),
            (PortClass::ArbitraryRange, 0.10),
        ],
    },
    dst_port: PortClassDist {
        points: &[
            (PortClass::Wildcard, 0.35),
            (PortClass::ExactWellKnown, 0.30),
            (PortClass::HighRange, 0.15),
            (PortClass::ArbitraryRange, 0.12),
            (PortClass::LowRange, 0.08),
        ],
    },
    proto: ProtoDist {
        points: &[
            (Some(PROTO_TCP), 0.45),
            (Some(PROTO_UDP), 0.20),
            (None, 0.20),
            (Some(PROTO_ICMP), 0.08),
            (Some(PROTO_GRE), 0.04),
            (Some(PROTO_ESP), 0.03),
        ],
    },
    base_prefix_pool_per_256: 12,
    base_prefix_len: 12,
};

const IPC_PROFILE: FamilyProfile = FamilyProfile {
    src_prefix: PrefixLenDist {
        points: &[(0, 0.10), (8, 0.05), (16, 0.15), (24, 0.30), (28, 0.10), (32, 0.30)],
    },
    dst_prefix: PrefixLenDist {
        points: &[(0, 0.08), (16, 0.12), (24, 0.30), (28, 0.15), (32, 0.35)],
    },
    src_port: PortClassDist {
        points: &[
            (PortClass::Wildcard, 0.82),
            (PortClass::HighRange, 0.10),
            (PortClass::ExactHigh, 0.08),
        ],
    },
    dst_port: PortClassDist {
        points: &[
            (PortClass::ExactWellKnown, 0.40),
            (PortClass::Wildcard, 0.25),
            (PortClass::ExactHigh, 0.15),
            (PortClass::ArbitraryRange, 0.12),
            (PortClass::LowRange, 0.08),
        ],
    },
    proto: ProtoDist {
        points: &[
            (Some(PROTO_TCP), 0.50),
            (Some(PROTO_UDP), 0.28),
            (None, 0.14),
            (Some(PROTO_ICMP), 0.08),
        ],
    },
    base_prefix_pool_per_256: 18,
    base_prefix_len: 14,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_positive(points: &[(u32, f64)]) -> bool {
        points.iter().all(|&(_, w)| w > 0.0)
    }

    #[test]
    fn profiles_have_positive_weights() {
        for fam in ClassifierFamily::ALL {
            let p = fam.profile();
            assert!(weights_positive(p.src_prefix.points), "{fam}");
            assert!(weights_positive(p.dst_prefix.points), "{fam}");
            assert!(p.src_port.points.iter().all(|&(_, w)| w > 0.0));
            assert!(p.dst_port.points.iter().all(|&(_, w)| w > 0.0));
            assert!(p.proto.points.iter().all(|&(_, w)| w > 0.0));
            assert!(p.base_prefix_pool_per_256 > 0);
            assert!(p.base_prefix_len <= 32);
        }
    }

    #[test]
    fn prefix_lengths_in_range() {
        for fam in ClassifierFamily::ALL {
            let p = fam.profile();
            for dist in [p.src_prefix, p.dst_prefix] {
                assert!(dist.points.iter().all(|&(l, _)| l <= 32));
            }
        }
    }

    #[test]
    fn fw_is_more_wildcarded_than_acl() {
        // Sanity check the family ordering the figures depend on: FW has
        // more weight on /0 source prefixes than ACL.
        let weight0 = |d: PrefixLenDist| {
            d.points.iter().filter(|&&(l, _)| l == 0).map(|&(_, w)| w).sum::<f64>()
        };
        assert!(
            weight0(ClassifierFamily::Fw.profile().src_prefix)
                > weight0(ClassifierFamily::Acl.profile().src_prefix)
        );
    }

    #[test]
    fn tags_and_variants() {
        assert_eq!(ClassifierFamily::Acl.tag(), "acl");
        assert_eq!(ClassifierFamily::Fw.num_variants(), 5);
        assert_eq!(ClassifierFamily::Ipc.num_variants(), 2);
        // 5 + 5 + 2 variants x 3 sizes = the paper's 36 classifiers.
        let total: usize = ClassifierFamily::ALL.iter().map(|f| f.num_variants()).sum();
        assert_eq!(total * 3, 36);
    }
}
