//! Packet headers as points in the 5-dimensional classification space.

use crate::dim::{Dim, NUM_DIMS};
use serde::{Deserialize, Serialize};

/// A packet header projected onto the five classification dimensions.
///
/// Values are stored as `u64` for uniformity with [`crate::DimRange`];
/// each value must lie inside its dimension's span (`< 2^32` for IPs,
/// `< 2^16` for ports, `< 2^8` for protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Per-dimension header values, indexed by [`Dim`].
    pub values: [u64; NUM_DIMS],
}

impl Packet {
    /// Construct from the five header fields in canonical order.
    pub fn new(src_ip: u64, dst_ip: u64, src_port: u64, dst_port: u64, proto: u64) -> Self {
        Packet { values: [src_ip, dst_ip, src_port, dst_port, proto] }
    }

    /// The packet's value in dimension `dim`.
    #[inline]
    pub fn value(&self, dim: Dim) -> u64 {
        self.values[dim.index()]
    }

    /// True when every field lies inside its dimension's value space.
    pub fn is_valid(&self) -> bool {
        self.values.iter().zip(crate::dim::DIMS.iter()).all(|(&v, &d)| v < d.span())
    }

    /// Serialise to a fixed 13-byte wire layout
    /// (4 + 4 + 2 + 2 + 1 bytes, big-endian), e.g. for trace files.
    pub fn to_wire(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&(self.values[0] as u32).to_be_bytes());
        out[4..8].copy_from_slice(&(self.values[1] as u32).to_be_bytes());
        out[8..10].copy_from_slice(&(self.values[2] as u16).to_be_bytes());
        out[10..12].copy_from_slice(&(self.values[3] as u16).to_be_bytes());
        out[12] = self.values[4] as u8;
        out
    }

    /// Inverse of [`Packet::to_wire`].
    pub fn from_wire(bytes: &[u8; 13]) -> Self {
        Packet::new(
            u64::from(u32::from_be_bytes(bytes[0..4].try_into().unwrap())),
            u64::from(u32::from_be_bytes(bytes[4..8].try_into().unwrap())),
            u64::from(u16::from_be_bytes(bytes[8..10].try_into().unwrap())),
            u64::from(u16::from_be_bytes(bytes[10..12].try_into().unwrap())),
            u64::from(bytes[12]),
        )
    }
}

impl std::fmt::Display for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ip = |v: u64| {
            let b = (v as u32).to_be_bytes();
            format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
        };
        write!(
            f,
            "{} -> {} sport={} dport={} proto={}",
            ip(self.values[0]),
            ip(self.values[1]),
            self.values[2],
            self.values[3],
            self.values[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validity_bounds() {
        assert!(Packet::new(0, 0, 0, 0, 0).is_valid());
        assert!(Packet::new((1 << 32) - 1, 0, 65535, 0, 255).is_valid());
        assert!(!Packet::new(1 << 32, 0, 0, 0, 0).is_valid());
        assert!(!Packet::new(0, 0, 1 << 16, 0, 0).is_valid());
        assert!(!Packet::new(0, 0, 0, 0, 256).is_valid());
    }

    #[test]
    fn display_formats_ip() {
        let p = Packet::new(
            u64::from(u32::from_be_bytes([10, 0, 0, 1])),
            u64::from(u32::from_be_bytes([192, 168, 1, 2])),
            80,
            443,
            6,
        );
        let s = p.to_string();
        assert!(s.contains("10.0.0.1"));
        assert!(s.contains("192.168.1.2"));
        assert!(s.contains("proto=6"));
    }

    proptest! {
        #[test]
        fn prop_wire_roundtrip(sip in 0u64..(1u64<<32), dip in 0u64..(1u64<<32),
                               sp in 0u64..65536, dp in 0u64..65536, proto in 0u64..256) {
            let p = Packet::new(sip, dip, sp, dp, proto);
            prop_assert_eq!(Packet::from_wire(&p.to_wire()), p);
        }
    }
}
