//! Half-open integer ranges, the geometric primitive for rules and
//! decision-tree node spaces.

use crate::dim::Dim;
use serde::{Deserialize, Serialize};

/// A half-open range `[lo, hi)` over one dimension's value space.
///
/// Half-open bounds avoid overflow at the top of the 32-bit IP space:
/// the full source-IP range is `[0, 2^32)`, which fits comfortably in
/// `u64`. An empty range has `lo >= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
}

impl DimRange {
    /// Create a range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics in debug builds if `lo > hi` (an inverted range is always a
    /// bug; an empty range `lo == hi` is permitted as a degenerate case).
    #[inline]
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi, "inverted range [{lo}, {hi})");
        DimRange { lo, hi }
    }

    /// The full value space of dimension `dim` (e.g. `[0, 2^32)` for IPs).
    #[inline]
    pub fn full(dim: Dim) -> Self {
        DimRange { lo: 0, hi: dim.span() }
    }

    /// A range derived from an IP-style prefix: `value/prefix_len` over a
    /// `bits`-wide space. `prefix_len == 0` yields the full space.
    ///
    /// # Panics
    /// Panics if `prefix_len > bits`.
    pub fn from_prefix(value: u64, prefix_len: u32, bits: u32) -> Self {
        assert!(prefix_len <= bits, "prefix {prefix_len} longer than {bits} bits");
        let shift = bits - prefix_len;
        // `shift` can be up to 64 in theory but bits <= 32 here; mask the
        // value down to the prefix then widen to the covered block.
        let lo = if shift >= 64 { 0 } else { (value >> shift) << shift };
        let hi = if shift >= 64 { u64::MAX } else { lo + (1u64 << shift) };
        DimRange { lo, hi }
    }

    /// An exact-match range covering a single value.
    #[inline]
    pub fn exact(value: u64) -> Self {
        DimRange { lo: value, hi: value + 1 }
    }

    /// Number of values covered (`hi - lo`); zero for empty ranges.
    #[inline]
    pub fn len(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// True when no value is covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// True when `value` lies inside `[lo, hi)`.
    #[inline]
    pub fn contains(&self, value: u64) -> bool {
        self.lo <= value && value < self.hi
    }

    /// True when `other` lies fully inside this range.
    #[inline]
    pub fn contains_range(&self, other: &DimRange) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// True when the two ranges share at least one value.
    #[inline]
    pub fn overlaps(&self, other: &DimRange) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// The overlapping part of the two ranges, or an empty range anchored
    /// at `max(lo)` when they are disjoint.
    #[inline]
    pub fn intersect(&self, other: &DimRange) -> DimRange {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        DimRange { lo, hi: hi.max(lo) }
    }

    /// Fraction of `space` covered by this range, in `[0, 1]`.
    ///
    /// Used by the partition heuristics ("largeness" of a rule in a
    /// dimension, EffiCuts §3) and by the observation encoding.
    pub fn coverage_of(&self, space: &DimRange) -> f64 {
        if space.is_empty() {
            return 0.0;
        }
        self.intersect(space).len() as f64 / space.len() as f64
    }

    /// Split the range into `n` equal-size sub-ranges (the last absorbs
    /// any remainder). Requires `n >= 1`.
    ///
    /// This is HiCuts-style equal-size cutting; degenerate ranges shorter
    /// than `n` produce fewer, possibly empty, children clamped to `hi`.
    pub fn split_equal(&self, n: usize) -> Vec<DimRange> {
        assert!(n >= 1, "cannot split into zero pieces");
        let n64 = n as u64;
        let step = (self.len() / n64).max(1);
        let mut out = Vec::with_capacity(n);
        let mut lo = self.lo;
        for i in 0..n64 {
            let hi = if i == n64 - 1 { self.hi } else { (lo + step).min(self.hi) };
            out.push(DimRange { lo, hi: hi.max(lo) });
            lo = hi.max(lo);
        }
        out
    }

    /// Split at `point` into `[lo, point)` and `[point, hi)`.
    ///
    /// `point` is clamped into the range, so an out-of-range threshold
    /// produces one empty side rather than inverted ranges.
    pub fn split_at(&self, point: u64) -> (DimRange, DimRange) {
        let p = point.clamp(self.lo, self.hi);
        (DimRange { lo: self.lo, hi: p }, DimRange { lo: p, hi: self.hi })
    }
}

impl std::fmt::Display for DimRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_range_covers_everything() {
        let r = DimRange::full(Dim::Proto);
        assert_eq!(r.len(), 256);
        assert!(r.contains(0));
        assert!(r.contains(255));
        assert!(!r.contains(256));
    }

    #[test]
    fn prefix_ranges() {
        // 10.0.0.0/8 == [10 << 24, 11 << 24)
        let r = DimRange::from_prefix(10 << 24, 8, 32);
        assert_eq!(r.lo, 10 << 24);
        assert_eq!(r.hi, 11 << 24);
        // /0 is the whole space.
        let r = DimRange::from_prefix(12345, 0, 32);
        assert_eq!(r, DimRange::full(Dim::SrcIp));
        // /32 is an exact match.
        let r = DimRange::from_prefix(42, 32, 32);
        assert_eq!(r, DimRange::exact(42));
    }

    #[test]
    fn prefix_masks_low_bits() {
        // A value with low bits set still yields the aligned block.
        let r = DimRange::from_prefix(0x0a0000ff, 24, 32);
        assert_eq!(r.lo, 0x0a000000);
        assert_eq!(r.hi, 0x0a000100);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = DimRange::new(0, 10);
        let b = DimRange::new(20, 30);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn intersect_overlap() {
        let a = DimRange::new(0, 10);
        let b = DimRange::new(5, 30);
        assert_eq!(a.intersect(&b), DimRange::new(5, 10));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn adjacent_ranges_do_not_overlap() {
        let a = DimRange::new(0, 10);
        let b = DimRange::new(10, 20);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn split_equal_covers_whole_range() {
        let r = DimRange::new(0, 100);
        let parts = r.split_equal(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], DimRange::new(0, 25));
        assert_eq!(parts[3].hi, 100);
        let total: u64 = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn split_equal_with_remainder() {
        let r = DimRange::new(0, 10);
        let parts = r.split_equal(4);
        // step = 2, last child absorbs remainder [6, 10).
        assert_eq!(parts[0], DimRange::new(0, 2));
        assert_eq!(parts[3], DimRange::new(6, 10));
    }

    #[test]
    fn split_equal_degenerate_tiny_range() {
        let r = DimRange::new(5, 7);
        let parts = r.split_equal(8);
        assert_eq!(parts.len(), 8);
        let total: u64 = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 2);
        // No inverted ranges.
        assert!(parts.iter().all(|p| p.lo <= p.hi));
    }

    #[test]
    fn split_at_clamps() {
        let r = DimRange::new(10, 20);
        let (a, b) = r.split_at(15);
        assert_eq!(a, DimRange::new(10, 15));
        assert_eq!(b, DimRange::new(15, 20));
        let (a, b) = r.split_at(5);
        assert!(a.is_empty());
        assert_eq!(b, r);
        let (a, b) = r.split_at(25);
        assert_eq!(a, r);
        assert!(b.is_empty());
    }

    #[test]
    fn coverage_fraction() {
        let space = DimRange::new(0, 100);
        assert_eq!(DimRange::new(0, 50).coverage_of(&space), 0.5);
        assert_eq!(DimRange::new(0, 100).coverage_of(&space), 1.0);
        assert_eq!(DimRange::new(200, 300).coverage_of(&space), 0.0);
    }

    proptest! {
        #[test]
        fn prop_split_equal_partitions(lo in 0u64..1000, len in 0u64..10_000, n in 1usize..33) {
            let r = DimRange::new(lo, lo + len);
            let parts = r.split_equal(n);
            prop_assert_eq!(parts.len(), n);
            // Children tile the parent: contiguous, in order, total length preserved.
            let mut cursor = r.lo;
            for p in &parts {
                prop_assert_eq!(p.lo, cursor);
                prop_assert!(p.hi >= p.lo);
                cursor = p.hi;
            }
            prop_assert_eq!(cursor, r.hi);
        }

        #[test]
        fn prop_intersect_commutative(a_lo in 0u64..1000, a_len in 0u64..1000,
                                      b_lo in 0u64..1000, b_len in 0u64..1000) {
            let a = DimRange::new(a_lo, a_lo + a_len);
            let b = DimRange::new(b_lo, b_lo + b_len);
            let ab = a.intersect(&b);
            let ba = b.intersect(&a);
            prop_assert_eq!(ab.is_empty(), ba.is_empty());
            if !ab.is_empty() {
                prop_assert_eq!(ab, ba);
            }
        }

        #[test]
        fn prop_prefix_contains_value(value in 0u64..(1u64 << 32), len in 0u32..33) {
            let r = DimRange::from_prefix(value, len, 32);
            prop_assert!(r.contains(value));
            // Block size is 2^(32-len).
            prop_assert_eq!(r.len(), 1u64 << (32 - len));
        }
    }
}
