//! Structural statistics of a rule set — the quantities ClassBench
//! characterises real filter sets by, used to validate that the
//! synthetic generator produces family-appropriate workloads and to
//! summarise imported rule files.

use crate::dim::{Dim, DIMS, NUM_DIMS};
use crate::ruleset::RuleSet;
use serde::{Deserialize, Serialize};

/// Summary statistics of one rule set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSetStats {
    /// Number of rules.
    pub rules: usize,
    /// Fraction of rules fully wildcarded per dimension.
    pub wildcard_fraction: [f64; NUM_DIMS],
    /// Mean coverage fraction (largeness) per dimension.
    pub mean_largeness: [f64; NUM_DIMS],
    /// Histogram of source-IP prefix lengths (index = length 0..=32);
    /// non-prefix ranges are counted under their covering prefix.
    pub src_prefix_hist: Vec<usize>,
    /// Histogram of destination-IP prefix lengths.
    pub dst_prefix_hist: Vec<usize>,
    /// Distinct exact protocol values used (wildcards excluded).
    pub distinct_protocols: usize,
    /// Fraction of rules with an exact-match destination port.
    pub exact_dst_port_fraction: f64,
}

fn covering_prefix_len(len: u64, bits: u32) -> usize {
    // Smallest power-of-two block covering `len` values.
    if len <= 1 {
        return bits as usize;
    }
    let block_bits = 64 - (len - 1).leading_zeros();
    (bits as usize).saturating_sub(block_bits as usize)
}

impl RuleSetStats {
    /// Compute statistics for `rules`.
    pub fn compute(rules: &RuleSet) -> RuleSetStats {
        let n = rules.len().max(1) as f64;
        let mut wildcard = [0usize; NUM_DIMS];
        let mut largeness = [0f64; NUM_DIMS];
        let mut src_hist = vec![0usize; 33];
        let mut dst_hist = vec![0usize; 33];
        let mut protocols = std::collections::BTreeSet::new();
        let mut exact_dst = 0usize;
        for r in rules.rules() {
            for (i, &d) in DIMS.iter().enumerate() {
                if r.is_wildcard(d) {
                    wildcard[i] += 1;
                }
                largeness[i] += r.largeness(d);
            }
            src_hist[covering_prefix_len(r.range(Dim::SrcIp).len(), 32).min(32)] += 1;
            dst_hist[covering_prefix_len(r.range(Dim::DstIp).len(), 32).min(32)] += 1;
            let proto = r.range(Dim::Proto);
            if proto.len() == 1 {
                protocols.insert(proto.lo);
            }
            if r.range(Dim::DstPort).len() == 1 {
                exact_dst += 1;
            }
        }
        RuleSetStats {
            rules: rules.len(),
            wildcard_fraction: std::array::from_fn(|i| wildcard[i] as f64 / n),
            mean_largeness: std::array::from_fn(|i| largeness[i] / n),
            src_prefix_hist: src_hist,
            dst_prefix_hist: dst_hist,
            distinct_protocols: protocols.len(),
            exact_dst_port_fraction: exact_dst as f64 / n,
        }
    }

    /// Render a compact human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("{} rules\n", self.rules);
        out.push_str("dim        wildcard%  mean-coverage\n");
        for (i, d) in DIMS.iter().enumerate() {
            out.push_str(&format!(
                "{:<10} {:>8.1}%  {:>12.4}\n",
                d.name(),
                self.wildcard_fraction[i] * 100.0,
                self.mean_largeness[i]
            ));
        }
        out.push_str(&format!(
            "distinct protocols: {}; exact dst ports: {:.1}%\n",
            self.distinct_protocols,
            self.exact_dst_port_fraction * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_rules, GeneratorConfig};
    use crate::profiles::ClassifierFamily;
    use crate::rule::Rule;

    #[test]
    fn default_rule_is_all_wildcards() {
        let rs = RuleSet::from_ordered(vec![Rule::default_rule(0)]);
        let s = RuleSetStats::compute(&rs);
        assert_eq!(s.rules, 1);
        assert!(s.wildcard_fraction.iter().all(|&f| f == 1.0));
        assert!(s.mean_largeness.iter().all(|&l| (l - 1.0).abs() < 1e-12));
        assert_eq!(s.src_prefix_hist[0], 1);
        assert_eq!(s.distinct_protocols, 0);
    }

    #[test]
    fn covering_prefix_lengths() {
        assert_eq!(covering_prefix_len(1, 32), 32); // exact host
        assert_eq!(covering_prefix_len(256, 32), 24); // /24 block
        assert_eq!(covering_prefix_len(1 << 32, 32), 0); // wildcard
        assert_eq!(covering_prefix_len(255, 32), 24); // covered by /24
    }

    #[test]
    fn family_statistics_match_profiles() {
        let acl = RuleSetStats::compute(&generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Acl, 1500).with_seed(1),
        ));
        let fw = RuleSetStats::compute(&generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Fw, 1500).with_seed(1),
        ));
        // FW sets are more wildcarded in source IP and less exact in
        // destination port than ACL sets — the properties the paper's
        // figures hinge on.
        let src = Dim::SrcIp.index();
        assert!(fw.wildcard_fraction[src] > acl.wildcard_fraction[src]);
        assert!(acl.exact_dst_port_fraction > fw.exact_dst_port_fraction);
        // ACLs concentrate on specific prefixes (>= /24).
        let specific: usize = acl.src_prefix_hist[24..].iter().sum();
        assert!(specific as f64 / acl.rules as f64 > 0.4);
    }

    #[test]
    fn render_contains_dimensions() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 100));
        let report = RuleSetStats::compute(&rs).render();
        for d in DIMS {
            assert!(report.contains(d.name()));
        }
        assert!(report.contains("100 rules"));
    }
}
