//! Rule-set and packet substrate for packet classification.
//!
//! This crate provides everything the decision-tree algorithms consume:
//!
//! * the 5-dimensional [`Rule`]/[`Packet`] model (source/destination IP,
//!   source/destination port, protocol) with prefix, range, and exact
//!   matching semantics,
//! * a [`RuleSet`] container with priority-ordered linear-scan matching
//!   (the ground truth every decision tree is validated against),
//! * a parser and writer for the standard ClassBench text format
//!   ([`parser`]),
//! * a synthetic generator ([`generator`]) with ACL / FW / IPC family
//!   profiles ([`profiles`]) that mirror the structural statistics of the
//!   published ClassBench seeds, and
//! * a packet-trace generator ([`trace`]) that samples headers biased
//!   towards the rules, like ClassBench's `trace_generator`.
//!
//! # Example
//!
//! ```
//! use classbench::{ClassifierFamily, GeneratorConfig, generate_rules};
//!
//! let cfg = GeneratorConfig::new(ClassifierFamily::Acl, 100).with_seed(7);
//! let rules = generate_rules(&cfg);
//! assert_eq!(rules.len(), 100);
//! // The last rule is always the default (match-everything) rule.
//! assert!(rules.rules().last().unwrap().is_default());
//! ```

#![warn(missing_docs)]

pub mod dim;
pub mod generator;
pub mod packet;
pub mod parser;
pub mod profiles;
pub mod range;
pub mod rule;
pub mod ruleset;
pub mod stats;
pub mod trace;

pub use dim::{Dim, DIMS, DIM_BITS, NUM_DIMS};
pub use generator::{generate_rules, GeneratorConfig};
pub use packet::Packet;
pub use parser::{parse_rules, write_rules, ParseError};
pub use profiles::ClassifierFamily;
pub use range::DimRange;
pub use rule::Rule;
pub use ruleset::RuleSet;
pub use stats::RuleSetStats;
pub use trace::{
    generate_skewed_trace, generate_trace, trace_hash, SkewedTraceConfig, TraceConfig, TrafficSkew,
};
