//! Golden decision-stream / tree-hash differential suite.
//!
//! The tree builder's determinism contract (PR 4, extended by the
//! arena-backed rule store): for a fixed `(rules, net, seed)` the
//! episode's decision stream, the resulting tree structure, and every
//! node's rule list are **bit-identical** regardless of how the builder
//! is implemented internally — child assignment is a pure filter of the
//! parent's precedence-ordered rule list.
//!
//! Three layers of enforcement:
//!
//! 1. **Golden hashes**: greedy (argmax) episodes for four ClassBench
//!    rule sets × all three partition modes are hashed (actions + node
//!    kinds + children + rule lists + spaces — integers only, so the
//!    constants are platform-stable) and pinned. Any change to the
//!    builder that alters a decision stream or an assigned rule set
//!    trips these.
//! 2. **Reference re-derivation**: every expanded node's child rule
//!    lists are recomputed with the *old scalar reference path* — the
//!    per-child `space.intersects_rule` filter over the parent's list —
//!    and compared to what the builder actually stored.
//! 3. **Scalar/vecenv agreement** on sampled episodes across all
//!    families and partition modes (extends the PR 4 bit-identity pins,
//!    which cover one family).

use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
use dtree::{DecisionTree, NodeKind};
use neurocuts::{NeuroCutsConfig, NeuroCutsEnv, PartitionMode, VecEnv};
use nn::{NetConfig, PolicyValueNet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rl::{RolloutBatch, RolloutEnv};

/// FNV-1a over u64 words: stable, dependency-free, platform-independent.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        let mut h = self.0;
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// The four pinned rule sets: one per ClassBench family plus a second
/// ACL variant (different seed and size), so both specific-prefix and
/// wildcard-heavy geometries are covered.
fn rule_sets() -> Vec<(&'static str, classbench::RuleSet)> {
    vec![
        ("acl", generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 40).with_seed(11))),
        ("fw", generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 36).with_seed(12))),
        ("ipc", generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 40).with_seed(13))),
        ("acl2", generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 64).with_seed(14))),
    ]
}

const MODES: [(&str, PartitionMode); 3] = [
    ("none", PartitionMode::None),
    ("simple", PartitionMode::Simple),
    ("efficuts", PartitionMode::EffiCuts),
];

fn env_and_net(rules: &classbench::RuleSet, mode: PartitionMode) -> (NeuroCutsEnv, PolicyValueNet) {
    let mut cfg = NeuroCutsConfig::smoke_test().with_partition_mode(mode);
    // An untrained argmax policy happily builds 100-deep trees; a tight
    // depth cap keeps greedy episodes small without losing coverage of
    // any expansion kind.
    cfg.max_tree_depth = 6;
    let env = NeuroCutsEnv::new(rules.clone(), cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(0xD00D);
    let net = PolicyValueNet::new(
        NetConfig {
            obs_dim: env.encoder.obs_dim(),
            dim_actions: env.action_space.dim_actions(),
            num_actions: env.action_space.num_actions(),
            hidden: [32, 32],
        },
        &mut rng,
    );
    (env, net)
}

/// Hash everything the determinism contract promises: the decision
/// stream (actions in order) and the full tree (kinds, children,
/// spaces, depths, rule lists). Integers only — no floats — so the
/// golden constants do not depend on libm.
fn episode_fingerprint(tree: &DecisionTree, actions: &[(usize, usize)]) -> u64 {
    let mut h = Fnv::new();
    h.push(actions.len() as u64);
    for &(d, a) in actions {
        h.push(d as u64);
        h.push(a as u64);
    }
    h.push(tree.num_nodes() as u64);
    for id in 0..tree.num_nodes() {
        let node = tree.node(id);
        let kind_tag = match &node.kind {
            NodeKind::Leaf => 0u64,
            NodeKind::Cut { dim, ncuts, .. } => 1 + 8 * (dim.index() as u64 * 64 + *ncuts as u64),
            NodeKind::MultiCut { dims, .. } => 2 + 8 * dims.len() as u64,
            NodeKind::DenseCut { dim, bounds, .. } => {
                3 + 8 * (dim.index() as u64 * 64 + bounds.len() as u64)
            }
            NodeKind::Split { dim, threshold, .. } => 4 + 8 * (dim.index() as u64 + 5 * *threshold),
            NodeKind::Partition { .. } => 5,
        };
        h.push(kind_tag);
        h.push(node.kind.children().len() as u64);
        for &c in node.kind.children() {
            h.push(c as u64);
        }
        h.push(node.depth as u64);
        for r in &node.space.ranges {
            h.push(r.lo);
            h.push(r.hi);
        }
        let rules = tree.rules_at(id);
        h.push(rules.len() as u64);
        for &r in rules {
            h.push(r as u64);
        }
    }
    h.0
}

/// Build one greedy episode and fingerprint it.
fn greedy_fingerprint(env: &NeuroCutsEnv, net: &PolicyValueNet) -> u64 {
    let ep = env.build_tree(net, 0, true);
    let actions: Vec<(usize, usize)> =
        ep.samples.iter().map(|s| (s.dim_action, s.act_action)).collect();
    episode_fingerprint(&ep.tree, &actions)
}

/// The old scalar reference path: re-derive every expanded node's child
/// rule lists with the per-child intersection filter and compare with
/// what the builder stored. Partition children are instead checked to
/// be a disjoint cover in precedence order.
fn assert_children_match_reference(tree: &DecisionTree) {
    for id in 0..tree.num_nodes() {
        let node = tree.node(id);
        let parent_rules = tree.rules_at(id);
        match &node.kind {
            NodeKind::Leaf => {}
            NodeKind::Partition { children } => {
                let mut all: Vec<usize> =
                    children.iter().flat_map(|&c| tree.rules_at(c).to_vec()).collect();
                all.sort_unstable();
                let mut expected = parent_rules.to_vec();
                expected.sort_unstable();
                assert_eq!(all, expected, "partition node {id} children don't cover the parent");
                for &c in children {
                    let rules = tree.rules_at(c);
                    for w in rules.windows(2) {
                        assert!(
                            tree.precedes(w[0], w[1]),
                            "partition child {c} not in precedence order"
                        );
                    }
                }
            }
            other => {
                // Reconstruct each child's space from the stored child
                // nodes (spaces are part of the golden fingerprint, so
                // they are themselves pinned) and re-filter.
                for &c in other.children() {
                    let child = tree.node(c);
                    let reference: Vec<usize> = parent_rules
                        .iter()
                        .copied()
                        .filter(|&r| tree.is_active(r) && child.space.intersects_rule(tree.rule(r)))
                        .collect();
                    let stored = tree.rules_at(c);
                    // `truncate_covered` may have dropped a suffix of the
                    // reference list; the stored list must be a prefix.
                    assert!(
                        stored.len() <= reference.len() && stored == &reference[..stored.len()],
                        "node {c}: stored rules {stored:?} are not a prefix of the reference \
                         filter {reference:?}"
                    );
                }
            }
        }
    }
}

fn batch_fingerprint(batch: &RolloutBatch) -> u64 {
    let mut h = Fnv::new();
    h.push(batch.samples.len() as u64);
    for s in &batch.samples {
        h.push(s.dim_action as u64);
        h.push(s.act_action as u64);
        h.push(s.log_prob.to_bits() as u64);
        h.push(s.reward.to_bits() as u64);
        for &o in &s.obs {
            h.push(o.to_bits() as u64);
        }
    }
    h.0
}

/// Golden constants captured from the pre-arena scalar builder; the
/// arena-backed builder must reproduce every one bit-for-bit.
/// Ordered as `rule_sets()` × `MODES`.
const GOLDEN_GREEDY: [(&str, &str, u64); 12] = [
    ("acl", "none", 0xf33b59e21f992a71),
    ("acl", "simple", 0xf33b59e21f992a71),
    ("acl", "efficuts", 0x3a9b76f85f095149),
    ("fw", "none", 0x0da7671c0d8076f7),
    ("fw", "simple", 0x0da7671c0d8076f7),
    ("fw", "efficuts", 0x7d0112f75fc102e7),
    ("ipc", "none", 0x7e23a518fcdd2ae2),
    ("ipc", "simple", 0x7e23a518fcdd2ae2),
    ("ipc", "efficuts", 0xf6df11957ded7985),
    ("acl2", "none", 0x188eb39c97ca1942),
    ("acl2", "simple", 0x188eb39c97ca1942),
    ("acl2", "efficuts", 0x70a19640519b14f9),
];

#[test]
fn greedy_streams_match_golden_hashes() {
    let sets = rule_sets();
    let mut idx = 0;
    let mut failures = Vec::new();
    for (fam, rules) in &sets {
        for (mode_name, mode) in MODES {
            let (env, net) = env_and_net(rules, mode);
            let got = greedy_fingerprint(&env, &net);
            let (gf, gm, want) = GOLDEN_GREEDY[idx];
            assert_eq!((gf, gm), (*fam, mode_name), "golden table out of order");
            if got != want {
                failures.push(format!("    (\"{fam}\", \"{mode_name}\", {got:#018x}),"));
            }
            idx += 1;
        }
    }
    assert!(
        failures.is_empty(),
        "golden decision-stream hashes changed; if the change is intended, update the table:\n{}",
        failures.join("\n")
    );
}

#[test]
fn builder_children_match_scalar_reference_filter() {
    for (fam, rules) in &rule_sets() {
        for (mode_name, mode) in MODES {
            let (env, net) = env_and_net(rules, mode);
            // One greedy and two sampled episodes per configuration.
            for (seed, greedy) in [(0, true), (7, false), (8, false)] {
                let ep = env.build_tree(&net, seed, greedy);
                assert_children_match_reference(&ep.tree);
                dtree::validate::assert_tree_valid(&ep.tree, 30, 9);
                let _ = (fam, mode_name);
            }
        }
    }
}

#[test]
fn scalar_and_vecenv_streams_agree_for_all_families_and_modes() {
    for (_fam, rules) in &rule_sets() {
        for (_mode_name, mode) in MODES {
            let (env, net) = env_and_net(rules, mode);
            let batch = VecEnv::new(env.clone(), 1, 4242).collect(&net, 30, 1);
            let mut scalar = RolloutBatch::default();
            let mut k = 0u64;
            while scalar.len() < 30 {
                let mut e = env.clone();
                let (samples, ep_return) = e.episode(&net, 4242 + k);
                scalar.push_episode(0, samples, ep_return);
                k += 1;
            }
            assert_eq!(batch_fingerprint(&batch), batch_fingerprint(&scalar));
        }
    }
}
