//! Crash-injection soak: `kill -9` at every seeded kill point, then
//! prove recovery is **bit-identical** to the durable logical op
//! stream.
//!
//! The harness is two tests sharing one binary:
//!
//! * [`crash_child`] — inert under `cargo test`; when `NC_CRASH_DIR`
//!   is set it becomes the victim process: build a deterministic
//!   classifier, attach persistence with exactly one crash point armed
//!   (`wal-append` / `checkpoint-write` / `adopt-persist` at a chosen
//!   occurrence), run a scripted churn + checkpoint workload, and die
//!   mid-write via `std::process::abort()` when the point fires.
//! * [`kill_points_recover_bit_identical`] — the parent: spawns the
//!   victim once per kill point (21 points, 7 occurrences across each
//!   of the three crash classes), asserts it died, builds an
//!   **independent reference** straight from the on-disk checkpoint +
//!   WAL chain through the plain public admission API, then runs
//!   [`neurocuts::recover`] and asserts the recovered handle matches
//!   the reference bit-for-bit: `TreeStats`, epoch, and every packet
//!   of a 256-packet trace — plus the recovery's own linear-scan proof.
//!
//! Seeding mirrors the chaos soak: `NC_CRASH_SEED` (CI passes the run
//! number) shapes the rule set and workload and is printed so any
//! failure replays exactly.

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, DimRange, GeneratorConfig, Rule,
    TraceConfig,
};
use dtree::wal::{self, WalRecord};
use dtree::{ClassifierHandle, DecisionTree, FaultSchedule, RebuildPolicy, TreeStats};
use neurocuts::persist::{checkpoint_path, list_checkpoint_generations, read_checkpoint, wal_path};
use neurocuts::{recover, PersistConfig, Persistence, RecoverError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const OPS: usize = 60;
const CHECKPOINT_EVERY: usize = 8;
const DEFAULT_SEED: u64 = 0xC4A0_5EED;

fn soak_seed() -> u64 {
    std::env::var("NC_CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED)
}

/// The victim's starting classifier: generator rules + a hand-cut tree,
/// fully determined by the seed (no training on the crash path).
fn seeded_tree(seed: u64) -> DecisionTree {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(seed));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
        if !tree.is_terminal(k, 8) {
            tree.cut_node(k, Dim::DstIp, 4);
        }
    }
    tree
}

/// The op-`i` insert: distinct ranges per step so no insert is ever a
/// duplicate, valid in every dimension.
fn scripted_rule(seed: u64, i: usize) -> Rule {
    let mut rule = Rule::default_rule(1_000 + i as i32);
    let base = 1_000 + (seed % 1_000) + i as u64 * 16;
    rule.ranges[0] = DimRange { lo: base, hi: base + 7 };
    rule
}

/// The child: runs the scripted workload with one crash point armed and
/// must never return from the op the fault lands on.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("NC_CRASH_DIR") else {
        return; // inert unless spawned by the parent
    };
    let point = std::env::var("NC_CRASH_POINT").expect("NC_CRASH_POINT");
    let occ: u64 = std::env::var("NC_CRASH_OCC").expect("NC_CRASH_OCC").parse().unwrap();
    let seed = soak_seed();

    let schedule = FaultSchedule::parse(&format!("{point}@{occ}")).expect("crash point spec");
    let faults = Arc::new(schedule.injector());
    let persistence = Persistence::with_config(
        &dir,
        PersistConfig { sync_every: 4, faults: Some(faults.clone()), ..PersistConfig::default() },
    );

    let handle = ClassifierHandle::new(seeded_tree(seed), RebuildPolicy::default_policy());
    // Attach (checkpoint generation 0). The crash points at occurrence
    // 0 of the checkpoint classes land here.
    persistence.checkpoint(&handle, seed).expect("attach checkpoint");

    let mut inserted: Vec<usize> = Vec::new();
    for i in 0..OPS {
        match i % 8 {
            3 => {
                if let Some(id) = inserted.first().copied() {
                    inserted.remove(0);
                    handle.delete(id).expect("scripted delete");
                }
            }
            6 => handle.force_rebuild(),
            _ => {
                let id = handle.insert(scripted_rule(seed, i)).expect("scripted insert");
                inserted.push(id);
            }
        }
        if (i + 1) % CHECKPOINT_EVERY == 0 {
            persistence.checkpoint(&handle, seed).expect("periodic checkpoint");
        }
    }
    // Reaching here means the armed occurrence never fired — the parent
    // treats a clean exit as a harness bug.
}

/// Build the ground-truth handle straight from the durable bytes, using
/// only the raw read APIs and the plain public admission path — fully
/// independent of `neurocuts::recover`'s internals.
fn independent_reference(dir: &Path) -> ClassifierHandle {
    let gens = list_checkpoint_generations(dir).expect("list checkpoints");
    let base = gens
        .iter()
        .rev()
        .find_map(|&g| read_checkpoint(&checkpoint_path(dir, g)).ok())
        .expect("at least one durable checkpoint");
    let handle = ClassifierHandle::new_at_epoch(
        base.tree.clone(),
        RebuildPolicy::default_policy(),
        base.epoch,
    );
    let mut gen = base.generation;
    loop {
        let path = wal_path(dir, gen);
        if !path.exists() {
            break;
        }
        let outcome = wal::read_wal(&path).expect("chain file reads");
        for record in outcome.records {
            match record {
                WalRecord::Insert { id, rule } => {
                    let got = handle.insert(rule).expect("reference insert");
                    assert_eq!(got, id, "arena id determinism broke on reference replay");
                }
                WalRecord::Delete { id } => handle.delete(id).expect("reference delete"),
                WalRecord::Rebuild | WalRecord::Adopt => handle.force_rebuild(),
            }
        }
        if outcome.tail.is_some() {
            break; // torn tail on the chain's last file: the durable
                   // stream ends at the verified prefix
        }
        gen += 1;
    }
    handle
}

fn spawn_victim(dir: &Path, point: &str, occ: u64, seed: u64) -> std::process::ExitStatus {
    std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args(["crash_child", "--exact", "--nocapture"])
        .env("NC_CRASH_DIR", dir)
        .env("NC_CRASH_POINT", point)
        .env("NC_CRASH_OCC", occ.to_string())
        .env("NC_CRASH_SEED", seed.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn crash child")
}

fn soak_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nc-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The soak proper: 21 kill points across the three crash classes.
#[test]
fn kill_points_recover_bit_identical() {
    if std::env::var("NC_CRASH_DIR").is_ok() {
        return; // we *are* a victim process; only crash_child runs
    }
    let seed = soak_seed();
    println!("crash soak: NC_CRASH_SEED={seed}");

    // wal-append occurrences 0..7 crash mid-append from the first op
    // onward. The checkpoint classes start at occurrence 1: their
    // occurrence 0 is the initial attach, where no durable state can
    // exist yet (that edge is pinned separately below).
    let kill_points: Vec<(&str, u64)> = (0..7)
        .map(|occ| ("wal-append", occ))
        .chain((1..8).map(|occ| ("checkpoint-write", occ)))
        .chain((1..8).map(|occ| ("adopt-persist", occ)))
        .collect();
    assert!(kill_points.len() >= 20, "the soak must cover at least 20 kill points");

    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 80).with_seed(seed));
    let trace = generate_trace(&rules, &TraceConfig::new(256).with_seed(seed ^ 0x7ACE));

    let mut torn_tails = 0usize;
    for (point, occ) in &kill_points {
        let dir = soak_dir(&format!("{point}-{occ}"));
        let status = spawn_victim(&dir, point, *occ, seed);
        assert!(
            !status.success(),
            "seed {seed}: {point}@{occ} victim exited cleanly — the kill point never fired"
        );

        // Ground truth first: recover() rewrites the directory.
        let reference = independent_reference(&dir);

        let (recovered, report) =
            recover(&dir, RebuildPolicy::default_policy(), &trace, &PersistConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {point}@{occ} recovery failed: {e}"));
        torn_tails += report.truncated_tail.is_some() as usize;

        // Bit-identical: epoch, tree statistics, and every packet.
        assert_eq!(
            recovered.epoch(),
            reference.epoch(),
            "seed {seed}: {point}@{occ} epoch diverged"
        );
        assert_eq!(
            report.epoch,
            recovered.epoch(),
            "seed {seed}: {point}@{occ} report epoch must match the recovered handle"
        );
        assert_eq!(
            recovered.with_tree(TreeStats::compute),
            reference.with_tree(TreeStats::compute),
            "seed {seed}: {point}@{occ} tree stats diverged"
        );
        let mut got = vec![None; trace.len()];
        let mut want = vec![None; trace.len()];
        recovered.snapshot().classify_batch(&trace, &mut got);
        reference.snapshot().classify_batch(&trace, &mut want);
        assert_eq!(got, want, "seed {seed}: {point}@{occ} trace classification diverged");
        assert_eq!(
            dtree::find_rebuild_divergence(&recovered, &trace),
            None,
            "seed {seed}: {point}@{occ} recovered snapshot diverged from a recompile"
        );

        println!(
            "crash soak: {point}@{occ} recovered gen {} -> {} ({} replayed{})",
            report.base_generation,
            report.new_generation,
            report.replayed,
            if report.truncated_tail.is_some() { ", torn tail truncated" } else { "" }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Every wal-append kill leaves a half-written record; all of them
    // must have been detected and truncated (never replayed).
    assert!(torn_tails >= 7, "every wal-append crash must surface as a truncated torn tail");
}

/// The one kill point with nothing durable behind it: a crash during
/// the *initial* attach (before the first checkpoint ever lands) must
/// surface as the typed `NoCheckpoint` error — not a panic, and not a
/// silently empty classifier.
#[test]
fn crash_during_first_attach_is_a_typed_no_checkpoint() {
    if std::env::var("NC_CRASH_DIR").is_ok() {
        return;
    }
    let seed = soak_seed();
    let dir = soak_dir("first-attach");
    let status = spawn_victim(&dir, "checkpoint-write", 0, seed);
    assert!(!status.success(), "the attach-time kill point must fire");

    match recover(&dir, RebuildPolicy::default_policy(), &[], &PersistConfig::default()) {
        Err(RecoverError::NoCheckpoint { .. }) => {}
        Ok(_) => panic!("recovered from a directory with no durable checkpoint"),
        Err(other) => panic!("expected NoCheckpoint, got: {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
