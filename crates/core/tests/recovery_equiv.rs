//! Recovery equivalence: a classifier recovered from its durable state
//! must be **bit-identical** to the live handle it was persisted from —
//! even when the WAL was written under concurrent serving load — and
//! the on-disk layout itself is pinned by a golden hash so any format
//! drift is a deliberate, reviewed change.

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
};
use dtree::{
    serve_during, ChurnSchedule, ClassifierHandle, DecisionTree, RebuildPolicy, TreeStats,
};
use neurocuts::persist::{encode_checkpoint, fnv1a, Checkpoint};
use neurocuts::{recover, PersistConfig, Persistence};
use std::path::PathBuf;

const SEED: u64 = 0x0EC0_7E57;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nc-equiv-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded_tree(seed: u64, size: usize) -> DecisionTree {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(seed));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
        if !tree.is_terminal(k, 8) {
            tree.cut_node(k, Dim::DstIp, 4);
        }
    }
    tree
}

/// Churn the live handle under concurrent readers with persistence
/// attached (including a mid-run checkpoint, so recovery crosses a
/// checkpoint + WAL-chain boundary), then recover from the still-warm
/// directory and require the recovered handle to match the live one on
/// epoch, tree statistics, and every packet of the trace.
#[test]
fn recovered_state_matches_the_live_handle_bit_for_bit() {
    let dir = tmp_dir("churn");
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 120).with_seed(SEED));
    let trace = generate_trace(&rules, &TraceConfig::new(512).with_seed(SEED ^ 0x7ACE));
    let donors: Vec<_> = rules.rules().to_vec();

    let live = ClassifierHandle::new(seeded_tree(SEED, 120), RebuildPolicy::default_policy());
    let persistence = Persistence::new(&dir);
    persistence.checkpoint(&live, SEED).expect("attach checkpoint");

    let mut churn = ChurnSchedule::new(donors, Vec::new(), SEED);
    let ((), served) = serve_during(&live, &trace, 2, || {
        for step in 0..200 {
            churn.step(&live);
            if step == 99 {
                persistence.checkpoint(&live, SEED).expect("mid-run checkpoint");
            }
        }
    });
    assert!(served > 0, "readers must have classified packets during the churn");

    let (recovered, report) =
        recover(&dir, RebuildPolicy::default_policy(), &trace, &PersistConfig::default())
            .expect("recovery from a cleanly shut-down directory");

    assert!(report.truncated_tail.is_none(), "a clean shutdown leaves no torn tail");
    assert!(report.replayed > 0, "the post-checkpoint churn must replay from the WAL");
    assert_eq!(recovered.epoch(), live.epoch(), "recovered epoch diverged from live");
    assert_eq!(
        recovered.with_tree(TreeStats::compute),
        live.with_tree(TreeStats::compute),
        "recovered tree statistics diverged from live"
    );
    let mut got = vec![None; trace.len()];
    let mut want = vec![None; trace.len()];
    recovered.snapshot().classify_batch(&trace, &mut got);
    live.snapshot().classify_batch(&trace, &mut want);
    assert_eq!(got, want, "recovered classification diverged from live");
    assert_eq!(dtree::find_rebuild_divergence(&recovered, &trace), None);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden on-disk layout pin: the encoded bytes of a fully
/// deterministic checkpoint hash to a fixed FNV-1a value. If this test
/// fails you changed the checkpoint format — bump `CHECKPOINT_VERSION`,
/// update this pin, and say so in the changelog; silent drift would
/// strand every durable directory in the field.
#[test]
fn golden_checkpoint_layout_hash_is_pinned() {
    let ck = Checkpoint { generation: 7, epoch: 42, train_seed: 9, tree: seeded_tree(3, 40) };
    let bytes = encode_checkpoint(&ck);
    assert_eq!(
        fnv1a(&bytes),
        0x51b6_4f6e_69b9_44b5,
        "checkpoint on-disk layout changed — see this test's doc comment before repinning"
    );
}
