//! Chaos soak: the self-healing claims under injected faults.
//!
//! The fault-injection facility (`dtree::faults`) arms every fault
//! class at least twice and the tests here pin the recovery contract:
//!
//! 1. **Isolation** — an injected retrain panic, deadline overrun, or
//!    corrupted template never unwinds past the worker and never
//!    publishes: the served epoch (and the exact snapshot `Arc`) is
//!    byte-identical across every failed non-fallback attempt.
//! 2. **Bounded retry** — consecutive transient failures back off and,
//!    at the retry bound, degrade to the deterministic fold-overlay
//!    rebuild so the served shape stays fresh even while training is
//!    broken; the next successful retrain clears the degraded flag.
//! 3. **Admission under storms** — injected update bursts hit the
//!    overlay bound and force fold-rebuild backpressure instead of
//!    unbounded overlay growth.
//! 4. **Certified serving throughout** — at every checkpoint, faulted
//!    or not, the published snapshot classifies bit-identically to a
//!    from-scratch recompile (`find_rebuild_divergence`).
//!
//! The deterministic test drives `poll` synchronously so each fault
//! lands on a known attempt. The free-running test races churn, two
//! readers and a background worker under a **seeded** schedule; the
//! seed comes from `NC_CHAOS_SEED` (CI passes the run number) and is
//! printed so any failure replays exactly.

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, RuleSet, TraceConfig,
};
use dtree::{
    find_rebuild_divergence, serve_during, ChurnSchedule, ClassifierHandle, DecisionTree,
    FaultInjector, FaultPoint, FaultSchedule, RebuildPolicy, FAULT_POINTS,
};
use neurocuts::{LifecycleConfig, LifecycleWorker, NeuroCutsConfig, RetrainTrigger, RetryPolicy};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn served_handle(seed: u64, policy: RebuildPolicy) -> (ClassifierHandle, RuleSet) {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(seed));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
        if !tree.is_terminal(k, 8) {
            tree.cut_node(k, Dim::DstIp, 4);
        }
    }
    (ClassifierHandle::new(tree, policy), rules)
}

fn churn_past_trigger(handle: &ClassifierHandle, rules: &RuleSet, seed: u64, steps: usize) {
    let mut schedule = ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), seed);
    for _ in 0..steps {
        schedule.step(handle);
    }
}

fn lifecycle_config(faults: &Arc<FaultInjector>, retry: RetryPolicy) -> LifecycleConfig {
    let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
    cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
    cfg.retry = retry;
    cfg.faults = Some(faults.clone());
    cfg
}

/// Poll until the pending backoff expires and an attempt actually runs.
fn poll_past_backoff(
    worker: &mut LifecycleWorker,
    handle: &ClassifierHandle,
    trace: &[classbench::Packet],
) -> neurocuts::LifecycleEvent {
    for _ in 0..1_000 {
        if worker.in_backoff() {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        if let Some(event) = worker.poll(handle, trace) {
            return event.clone();
        }
        panic!("trigger went cold while a retry was still owed");
    }
    panic!("backoff never expired");
}

/// One shared injector walks every fault class at least twice, each on
/// a known attempt, while `poll` is driven synchronously.
#[test]
fn every_fault_class_fires_twice_and_the_worker_heals() {
    // Attempt map (per-point occurrence counters are independent):
    //   worker A: a1 panic@0, a2 panic@1,           -> isolated failures
    //             a3 corrupt@0, a4 corrupt@1,       -> spot check refuses
    //             (a4 = 4th failure = bound -> fallback rebuild, degraded)
    //             a5 clean                          -> adopts, clears
    //   worker B: b1 slow@3, b2 slow@4              -> timeouts; 2nd hits
    //             (slow evals 0..3 happened in a3..a5)   the bound again
    //   churn  C: update-burst@10,25                -> overlay backpressure
    let schedule = FaultSchedule::empty()
        .arm(FaultPoint::RetrainPanic, 0)
        .arm(FaultPoint::RetrainPanic, 1)
        .arm(FaultPoint::AdoptCorruption, 0)
        .arm(FaultPoint::AdoptCorruption, 1)
        .arm(FaultPoint::RetrainSlow, 3)
        .arm(FaultPoint::RetrainSlow, 4)
        .arm(FaultPoint::UpdateBurst, 10)
        .arm(FaultPoint::UpdateBurst, 25);
    let faults = Arc::new(schedule.injector());

    // --- Worker A: panics and corrupted templates, then recovery. ---
    let (handle, rules) = served_handle(90, RebuildPolicy::default_policy());
    let trace = generate_trace(&rules, &TraceConfig::new(128).with_seed(91));
    let retry = RetryPolicy {
        max_failures: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        attempt_deadline: Duration::from_secs(120),
    };
    let mut worker = LifecycleWorker::new(lifecycle_config(&faults, retry), &handle);
    churn_past_trigger(&handle, &rules, 92, 60);

    // a1..a3: three failures (two panics, one refused adoption), none
    // of which may touch the published state.
    for (attempt, expect) in
        [(1u64, "injected retrain panic"), (2, "injected retrain panic"), (3, "adopt:")]
    {
        let epoch_before = handle.epoch();
        let snap_before = handle.snapshot();
        let event = poll_past_backoff(&mut worker, &handle, &trace);
        assert!(!event.adopted, "attempt {attempt} must fail");
        assert!(
            event.skipped.as_deref().unwrap_or("").contains(expect),
            "attempt {attempt}: skipped = {:?}, wanted {expect:?}",
            event.skipped
        );
        assert_eq!(event.failures_after, attempt);
        assert!(!event.fallback_rebuild, "attempt {attempt} is below the retry bound");
        assert_eq!(handle.epoch(), epoch_before, "failed attempt {attempt} published an epoch");
        assert!(
            Arc::ptr_eq(&snap_before, &handle.snapshot()),
            "failed attempt {attempt} replaced the served snapshot"
        );
        assert_eq!(handle.health().consecutive_failures, attempt, "health mirror");
        assert_eq!(find_rebuild_divergence(&handle, &trace), None);
    }

    // a4: the 4th consecutive failure crosses the bound — the worker
    // degrades and force-publishes the deterministic fold-rebuild.
    let epoch_before = handle.epoch();
    let event = poll_past_backoff(&mut worker, &handle, &trace);
    assert!(!event.adopted);
    assert!(event.fallback_rebuild, "4th failure must trigger the heuristic fallback");
    assert!(event.degraded);
    assert!(handle.epoch() > epoch_before, "the fallback rebuild publishes");
    assert_eq!(handle.stats().overlay_len, 0, "the fallback folds the overlay");
    let health = handle.health();
    assert!(health.degraded, "degradation is mirrored into the handle");
    assert_eq!(health.epoch_lag, 0, "the fallback resets the update log");
    assert_eq!(find_rebuild_divergence(&handle, &trace), None);

    // a5: faults exhausted — the retry succeeds and clears everything.
    let event = poll_past_backoff(&mut worker, &handle, &trace);
    assert!(event.adopted, "clean retry must adopt: {:?}", event.skipped);
    assert!(!event.degraded, "success clears the degraded flag");
    assert_eq!(event.failures_after, 0);
    let health = handle.health();
    assert_eq!(health.consecutive_failures, 0);
    assert!(!health.degraded);
    assert_eq!(find_rebuild_divergence(&handle, &trace), None);
    assert_eq!(faults.fired(FaultPoint::RetrainPanic), 2);
    assert_eq!(faults.fired(FaultPoint::AdoptCorruption), 2);

    // --- Worker B: deadline overruns on a fresh handle. The tight
    // deadline makes both armed slow occurrences deterministic
    // timeouts; the 2nd hits the (smaller) bound and falls back.
    let (handle, rules) = served_handle(93, RebuildPolicy::default_policy());
    let trace = generate_trace(&rules, &TraceConfig::new(128).with_seed(94));
    let retry = RetryPolicy {
        max_failures: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        attempt_deadline: Duration::from_millis(250),
    };
    let mut worker = LifecycleWorker::new(lifecycle_config(&faults, retry), &handle);
    churn_past_trigger(&handle, &rules, 95, 60);

    let epoch_before = handle.epoch();
    let snap_before = handle.snapshot();
    let event = poll_past_backoff(&mut worker, &handle, &trace);
    assert!(!event.adopted);
    assert!(
        event.skipped.as_deref().unwrap_or("").contains("overran its deadline"),
        "skipped = {:?}",
        event.skipped
    );
    assert_eq!(handle.epoch(), epoch_before, "a timed-out attempt publishes nothing");
    assert!(Arc::ptr_eq(&snap_before, &handle.snapshot()));

    let event = poll_past_backoff(&mut worker, &handle, &trace);
    assert!(event.fallback_rebuild, "2nd timeout crosses max_failures=2");
    assert!(worker.health().degraded);
    assert_eq!(handle.stats().overlay_len, 0, "degraded mode still folds the overlay");
    assert_eq!(find_rebuild_divergence(&handle, &trace), None);
    assert_eq!(faults.fired(FaultPoint::RetrainSlow), 2);

    // --- Churn C: injected update bursts against a tiny overlay bound
    // force fold-rebuild backpressure instead of unbounded growth.
    let policy =
        RebuildPolicy { max_churn: f64::INFINITY, min_updates: usize::MAX, max_overlay: 8 };
    let (handle, rules) = served_handle(96, policy);
    let trace = generate_trace(&rules, &TraceConfig::new(128).with_seed(97));
    let mut churn = ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 98)
        .with_faults(faults.clone());
    for step in 0..60 {
        churn.step(&handle);
        let health = handle.health();
        assert!(
            health.overlay_len <= 8,
            "overlay {} outgrew its bound at step {step}",
            health.overlay_len
        );
    }
    let health = handle.health();
    assert!(
        health.backpressure_rebuilds >= 1,
        "bursts against an 8-slot overlay must force backpressure folds: {health}"
    );
    assert_eq!(find_rebuild_divergence(&handle, &trace), None);
    assert_eq!(faults.fired(FaultPoint::UpdateBurst), 2);

    // The whole schedule ran: every fault class fired exactly its two
    // armed occurrences.
    assert!(faults.exhausted(), "every armed occurrence must have fired");
    for point in FAULT_POINTS {
        assert_eq!(
            faults.fired(point),
            faults.schedule().armed(point).len() as u64,
            "{point} must fire exactly its armed occurrences"
        );
    }
}

/// Free-running chaos: churn + two readers + a background worker while
/// a *seeded* schedule fires faults at unplanned moments. Serving must
/// stay certified at every checkpoint no matter what lands when.
///
/// Replay any failure with `NC_CHAOS_SEED=<printed seed>`.
#[test]
fn seeded_free_running_soak_never_serves_a_divergent_packet() {
    const STEPS: usize = 3_000;
    const CHECK_EVERY: usize = 500;

    let seed: u64 =
        std::env::var("NC_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4A0_5EED);
    let schedule = FaultSchedule::seeded(seed, 2, 4, (STEPS / 4) as u64);
    println!("chaos soak: NC_CHAOS_SEED={seed} schedule [{schedule}]");
    let faults = Arc::new(schedule.injector());

    let (handle, rules) = served_handle(seed ^ 0xA, RebuildPolicy::default_policy());
    let trace = generate_trace(&rules, &TraceConfig::new(256).with_seed(seed ^ 0xB));

    let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
    cfg.trigger = RetrainTrigger { min_churn: 0.3, min_updates: 400, max_drift: 100.0 };
    // A deadline this tight can time out even an honest retrain on a
    // loaded machine — which is fine: the soak asserts *serving* and
    // *recovery accounting*, not adoption, and a spurious timeout just
    // exercises the same failure path as the injected one.
    cfg.retry = RetryPolicy {
        max_failures: 3,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        attempt_deadline: Duration::from_secs(2),
    };
    cfg.faults = Some(faults.clone());
    let worker = LifecycleWorker::new(cfg, &handle);

    let stop = AtomicBool::new(false);
    let (report, checkpoints, served) = std::thread::scope(|scope| {
        let worker_thread = {
            let (handle, trace, stop) = (&handle, &trace, &stop);
            scope.spawn(move || worker.run(handle, trace, stop, Duration::from_millis(5)))
        };
        let mut churn =
            ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), seed)
                .with_faults(faults.clone());
        let (checkpoints, served) = serve_during(&handle, &trace, 2, || {
            let mut checkpoints = Vec::new();
            for i in 0..STEPS {
                churn.step(&handle);
                if (i + 1) % CHECK_EVERY == 0 {
                    checkpoints.push((i + 1, find_rebuild_divergence(&handle, &trace)));
                }
            }
            checkpoints
        });
        stop.store(true, Ordering::Relaxed);
        (worker_thread.join().expect("worker thread survives every fault"), checkpoints, served)
    });

    for point in FAULT_POINTS {
        println!(
            "chaos soak: {point} fired {}/{} (evaluated {})",
            faults.fired(point),
            faults.schedule().armed(point).len(),
            faults.evaluated(point)
        );
    }

    // Serving never diverged, at any checkpoint, faults or not.
    assert_eq!(checkpoints.len(), STEPS / CHECK_EVERY);
    for (applied, divergence) in &checkpoints {
        assert!(
            divergence.is_none(),
            "seed {seed}: published snapshot diverged from a recompile at update {applied}"
        );
    }
    assert!(served > 0, "readers must have classified packets throughout");
    assert!(report.polls > 0, "worker never polled");

    // The update-side fault class is deterministic: the churn thread
    // evaluates every step, and the seeded window sits inside STEPS.
    assert_eq!(
        faults.fired(FaultPoint::UpdateBurst),
        2,
        "seed {seed}: both seeded update bursts sit inside the churn window"
    );

    // Recovery accounting stays coherent: the handle's health report
    // mirrors the worker's last attempt, and a degraded worker must
    // have actually published its fallback rebuild.
    let health = handle.health();
    if let Some(last) = report.events.last() {
        assert_eq!(health.consecutive_failures, last.failures_after, "seed {seed}: health mirror");
        assert_eq!(health.degraded, last.degraded, "seed {seed}: degraded mirror");
    } else {
        assert_eq!(health.consecutive_failures, 0);
    }
    if health.degraded {
        assert!(
            report.fallback_rebuilds() > 0,
            "seed {seed}: degraded without a fallback rebuild on record"
        );
    }
    for event in report.events.iter().filter(|e| e.fallback_rebuild) {
        assert!(event.failures_after > 0, "seed {seed}: fallback without a failure streak");
    }

    // Still live after the storm: updates admit (or correctly refuse a
    // duplicate) and the final snapshot is certified.
    match handle.insert(rules.rules()[0].clone()) {
        Ok(_) | Err(dtree::UpdateError::DuplicateRule(_)) => {}
        Err(err) => panic!("seed {seed}: unexpected admission error: {err}"),
    }
    assert_eq!(find_rebuild_divergence(&handle, &trace), None);
}
