//! Long-churn soak: the lifecycle loop under sustained load.
//!
//! One classifier, ≥5 000 interleaved inserts/deletes applied while
//! concurrent readers serve a trace and a free-running
//! [`LifecycleWorker`] retrains and hot-swaps in the background. The
//! claims pinned here:
//!
//! 1. **Bounded serving state** — at every checkpoint the overlay stays
//!    below the rebuild policy's working bound and the served
//!    worst-case depth stays within a fixed cap, i.e. neither churn nor
//!    background swaps let the data path degrade without limit.
//! 2. **Certified epochs** — every checkpoint's published snapshot is
//!    bit-identical to a from-scratch `FlatTree::compile` of the live
//!    tree (including probes inside every overlay-served insert), via
//!    [`find_rebuild_divergence`].
//! 3. **Reproducible swaps** — every adopted retrain is re-derived
//!    from scratch out of nothing but the event's frozen
//!    `snapshot_rules` and `train_seed`, and must reproduce the
//!    recorded template stats exactly (depth, bytes, node counts):
//!    the trainer is deterministic, so a published epoch is fully
//!    explained by (rules, seed) even though the worker raced freely
//!    against updates and readers.

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
};
use dtree::{
    find_rebuild_divergence, serve_during, ChurnSchedule, ClassifierHandle, DecisionTree,
    RebuildPolicy, TreeStats,
};
use neurocuts::{
    retrain_snapshot, LifecycleConfig, LifecycleWorker, NeuroCutsConfig, RetrainTrigger,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const UPDATES: usize = 5_000;
const CHECK_EVERY: usize = 500;
const DEPTH_CAP: usize = 64;

fn smoke_train_config() -> NeuroCutsConfig {
    let mut cfg = NeuroCutsConfig::smoke_test();
    // Keep each background retrain around a second so several fit in
    // the soak window without starving the update loop of CPU.
    cfg.max_timesteps = 800;
    cfg
}

#[test]
fn five_thousand_updates_with_background_retrains_stay_bounded_and_certified() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(81));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
        if !tree.is_terminal(k, 8) {
            tree.cut_node(k, Dim::DstIp, 4);
        }
    }
    let policy = RebuildPolicy::default_policy();
    let handle = ClassifierHandle::new(tree, policy);
    let trace = generate_trace(&rules, &TraceConfig::new(256).with_seed(82));

    let mut cfg = LifecycleConfig::new(smoke_train_config());
    cfg.trigger = RetrainTrigger { min_churn: 0.5, min_updates: 600, max_drift: 100.0 };
    cfg.max_retrains = 4;
    let worker = LifecycleWorker::new(cfg.clone(), &handle);

    let stop = AtomicBool::new(false);
    let (report, checkpoints, rejected) = std::thread::scope(|scope| {
        let worker_thread = {
            let (handle, trace, stop) = (&handle, &trace, &stop);
            scope.spawn(move || worker.run(handle, trace, stop, Duration::from_millis(20)))
        };
        // The update loop races two dedicated readers *and* the worker.
        let mut schedule =
            ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 83);
        let (checkpoints, _) = serve_during(&handle, &trace, 2, || {
            let mut checkpoints = Vec::new();
            for i in 0..UPDATES {
                schedule.step(&handle);
                if (i + 1) % CHECK_EVERY == 0 {
                    let stats = handle.stats();
                    let depth = handle.with_tree(TreeStats::compute).time;
                    let divergence = find_rebuild_divergence(&handle, &trace);
                    checkpoints.push((i + 1, stats, depth, divergence));
                }
            }
            checkpoints
        });
        stop.store(true, Ordering::Relaxed);
        (worker_thread.join().expect("worker thread"), checkpoints, schedule.rejected() as usize)
    });

    // Claim 1+2: bounded state and a certified snapshot at every
    // checkpoint, even while swaps were landing underneath.
    assert_eq!(checkpoints.len(), UPDATES / CHECK_EVERY);
    for (applied, stats, depth, divergence) in &checkpoints {
        assert_eq!(
            *divergence, None,
            "published snapshot diverged from a from-scratch recompile at update {applied}"
        );
        assert!(*depth <= DEPTH_CAP, "served depth {depth} exceeded the cap at update {applied}");
        // The policy rebuilds well before the overlay reaches the
        // active-rule count; swaps reset it to zero.
        assert!(
            stats.overlay_len < stats.active_rules,
            "overlay ({}) outgrew the active rules ({}) at update {applied}",
            stats.overlay_len,
            stats.active_rules
        );
    }
    let last = &checkpoints[checkpoints.len() - 1].1;
    assert_eq!(
        last.total_inserted + last.total_deleted,
        UPDATES - rejected,
        "lifetime counters must see every admitted update ({rejected} rejected as duplicates)"
    );

    // The worker really ran and really swapped.
    assert!(report.polls > 0, "worker never polled");
    let adopted: Vec<_> = report.events.iter().filter(|e| e.adopted).collect();
    assert!(
        !adopted.is_empty(),
        "no retrain was adopted over {UPDATES} updates (events: {:?})",
        report.events.iter().map(|e| (&e.skipped, e.churn)).collect::<Vec<_>>()
    );
    assert_eq!(handle.stats().retrains, adopted.len() as u64);
    for event in &adopted {
        assert!(event.spot_checked > 0, "every swap must run the linear-scan spot check");
        assert!(event.depth_after <= DEPTH_CAP);
    }

    // Claim 3: each adopted epoch is reproducible from scratch. The
    // worker trained while racing updates, but the snapshot froze the
    // rules and the event pinned the seed, so re-deriving the template
    // must give bit-identical stats.
    for event in &adopted {
        let (_, scratch_stats, scratch_timesteps) =
            retrain_snapshot(&event.snapshot_rules, &cfg.train, event.train_seed)
                .expect("adopted snapshot retrains from scratch");
        assert_eq!(
            Some(scratch_stats),
            event.template_stats,
            "from-scratch retrain of the frozen snapshot (seed {}) must reproduce \
             the published template exactly",
            event.train_seed
        );
        assert_eq!(scratch_timesteps, event.timesteps);
    }

    // And the final state is still live: updates and lookups work
    // (the donor may still be active, in which case admission control
    // correctly reports the duplicate instead of silently accepting).
    match handle.insert(rules.rules()[0].clone()) {
        Ok(_) | Err(dtree::UpdateError::DuplicateRule(_)) => {}
        Err(err) => panic!("unexpected admission error: {err}"),
    }
    assert_eq!(find_rebuild_divergence(&handle, &trace), None);
}
