//! The fixed-width NeuroCuts node encoding (Appendix A.2/A.3).
//!
//! The key design point of §4: the agent never sees the tree, only a
//! compact encoding of the *current node*, because the optimal action at
//! a node depends only on the node. Our layout, mirroring A.3:
//!
//! ```text
//! for dim in {SrcIP, DstIP, SrcPort, DstPort, Proto}:
//!     BinaryString(range_min)     32/32/16/16/8 bits   (208 total)
//!     BinaryString(range_max-1)   (inclusive max)
//! for dim in ...:
//!     OneHot(partition_lo_level)  8 bits each          (80 total)
//!     OneHot(partition_hi_level)
//! OneHot(EffiCutsPartitionID)     8 bits (all-zero = none)
//! ActionMask                      5 (dim head) + 14 (action head)
//! ```
//!
//! Total **315** bits. The paper reports 278 without publishing the
//! exact layout; the difference is bookkeeping width (our action head
//! is mode-independent at 14 entries and both masks are embedded), not
//! information content. The rule set itself is *not* encoded — the
//! policy learns it implicitly through rewards (A.3).

use crate::actions::{ActionSpace, NUM_LEVELS};
use crate::env::NodeMeta;
use classbench::{DIMS, DIM_BITS, NUM_DIMS};
use dtree::NodeSpace;

/// Encodes tree nodes into fixed-width observation vectors.
#[derive(Debug, Clone, Copy)]
pub struct ObsEncoder {
    space: ActionSpace,
}

impl ObsEncoder {
    /// An encoder for the given action space (the mask section depends
    /// on it).
    pub fn new(space: ActionSpace) -> Self {
        ObsEncoder { space }
    }

    /// Observation width in f32 entries.
    pub fn obs_dim(&self) -> usize {
        let range_bits: usize = DIM_BITS.iter().map(|&b| 2 * b as usize).sum();
        let partition_bits = NUM_DIMS * 2 * NUM_LEVELS;
        let efficuts_bits = 8;
        range_bits
            + partition_bits
            + efficuts_bits
            + self.space.dim_actions()
            + self.space.num_actions()
    }

    /// Encode a node: its space, partition bookkeeping, and the two
    /// action masks (which the caller also uses for sampling).
    pub fn encode(
        &self,
        space: &NodeSpace,
        meta: &NodeMeta,
        dim_mask: &[bool],
        act_mask: &[bool],
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.encode_into(space, meta, dim_mask, act_mask, &mut out);
        out
    }

    /// [`Self::encode`] into a caller-owned buffer: clears `out` and
    /// fills it in place with no intermediate allocations, reserving
    /// exact capacity on first use so a reused buffer never
    /// reallocates. Callers that don't retain the observation (probes,
    /// benchmark harnesses) thread one buffer through every call; the
    /// episode loop hands the buffer off to the recorded `Sample`, so
    /// it allocates exactly one right-sized `Vec` per decision.
    pub fn encode_into(
        &self,
        space: &NodeSpace,
        meta: &NodeMeta,
        dim_mask: &[bool],
        act_mask: &[bool],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.reserve_exact(self.obs_dim());
        // Binary range strings, most-significant bit first.
        for (i, &dim) in DIMS.iter().enumerate() {
            let bits = DIM_BITS[i];
            let r = space.range(dim);
            push_bits(out, r.lo, bits);
            push_bits(out, r.hi.saturating_sub(1), bits);
        }
        // Partition coverage windows.
        for d in 0..NUM_DIMS {
            let (lo, hi) = meta.coverage_window[d];
            push_one_hot(out, lo as usize, NUM_LEVELS);
            push_one_hot(out, hi as usize, NUM_LEVELS);
        }
        // EffiCuts partition id (all-zero when not under one).
        match meta.efficuts_id {
            Some(id) => push_one_hot(out, (id as usize).min(7), 8),
            None => out.extend(std::iter::repeat_n(0.0, 8)),
        }
        // Action masks.
        out.extend(dim_mask.iter().map(|&m| if m { 1.0 } else { 0.0 }));
        out.extend(act_mask.iter().map(|&m| if m { 1.0 } else { 0.0 }));
        debug_assert_eq!(out.len(), self.obs_dim());
    }
}

fn push_bits(out: &mut Vec<f32>, value: u64, bits: u32) {
    for b in (0..bits).rev() {
        out.push(((value >> b) & 1) as f32);
    }
}

fn push_one_hot(out: &mut Vec<f32>, index: usize, width: usize) {
    debug_assert!(index < width, "one-hot index {index} out of width {width}");
    for i in 0..width {
        out.push(if i == index { 1.0 } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionMode;
    use classbench::{Dim, DimRange};

    fn encoder() -> ObsEncoder {
        ObsEncoder::new(ActionSpace::new(PartitionMode::Simple))
    }

    #[test]
    fn obs_dim_is_315() {
        // 208 range bits + 80 partition bits + 8 efficuts + 5 + 14 masks.
        assert_eq!(encoder().obs_dim(), 315);
    }

    #[test]
    fn encoding_is_binary_valued_and_fixed_width() {
        let enc = encoder();
        let space = ActionSpace::new(PartitionMode::Simple);
        let meta = NodeMeta::root();
        let ns = NodeSpace::full();
        let obs = enc.encode(&ns, &meta, &space.dim_mask(&ns), &space.act_mask(true));
        assert_eq!(obs.len(), enc.obs_dim());
        assert!(obs.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn range_bits_reflect_bounds() {
        let enc = encoder();
        let space = ActionSpace::new(PartitionMode::Simple);
        let meta = NodeMeta::root();
        let mut ns = NodeSpace::full();
        // SrcIp = [0, 2^32): lo bits all 0, hi-1 bits all 1.
        let obs = enc.encode(&ns, &meta, &space.dim_mask(&ns), &space.act_mask(true));
        assert!(obs[0..32].iter().all(|&b| b == 0.0));
        assert!(obs[32..64].iter().all(|&b| b == 1.0));
        // Narrow SrcIp to [1, 2): lo = ...0001, hi-1 = ...0001.
        ns.ranges[Dim::SrcIp.index()] = DimRange::new(1, 2);
        let obs = enc.encode(&ns, &meta, &space.dim_mask(&ns), &space.act_mask(true));
        assert_eq!(obs[31], 1.0);
        assert!(obs[0..31].iter().all(|&b| b == 0.0));
        assert_eq!(obs[63], 1.0);
    }

    #[test]
    fn distinct_nodes_encode_distinctly() {
        let enc = encoder();
        let space = ActionSpace::new(PartitionMode::Simple);
        let meta = NodeMeta::root();
        let a = NodeSpace::full();
        let mut b = NodeSpace::full();
        b.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        let oa = enc.encode(&a, &meta, &space.dim_mask(&a), &space.act_mask(true));
        let ob = enc.encode(&b, &meta, &space.dim_mask(&b), &space.act_mask(true));
        assert_ne!(oa, ob);
    }

    #[test]
    fn partition_window_changes_encoding() {
        let enc = encoder();
        let space = ActionSpace::new(PartitionMode::Simple);
        let ns = NodeSpace::full();
        let root = NodeMeta::root();
        let mut narrowed = NodeMeta::root();
        narrowed.coverage_window[0] = (0, 3);
        let oa = enc.encode(&ns, &root, &space.dim_mask(&ns), &space.act_mask(true));
        let ob = enc.encode(&ns, &narrowed, &space.dim_mask(&ns), &space.act_mask(true));
        assert_ne!(oa, ob);
    }

    #[test]
    fn efficuts_id_changes_encoding() {
        let enc = encoder();
        let space = ActionSpace::new(PartitionMode::Simple);
        let ns = NodeSpace::full();
        let none = NodeMeta::root();
        let mut tagged = NodeMeta::root();
        tagged.efficuts_id = Some(3);
        let oa = enc.encode(&ns, &none, &space.dim_mask(&ns), &space.act_mask(true));
        let ob = enc.encode(&ns, &tagged, &space.dim_mask(&ns), &space.act_mask(true));
        assert_ne!(oa, ob);
        // Id section: all-zero vs one-hot.
        let base = 208 + 80;
        assert!(oa[base..base + 8].iter().all(|&v| v == 0.0));
        assert_eq!(ob[base + 3], 1.0);
    }

    #[test]
    fn mask_section_mirrors_masks() {
        let enc = encoder();
        let space = ActionSpace::new(PartitionMode::Simple);
        let ns = NodeSpace::full();
        let meta = NodeMeta::root();
        let dm = space.dim_mask(&ns);
        let am = space.act_mask(false);
        let obs = enc.encode(&ns, &meta, &dm, &am);
        let base = 208 + 80 + 8;
        for (i, &m) in dm.iter().enumerate() {
            assert_eq!(obs[base + i] == 1.0, m);
        }
        for (i, &m) in am.iter().enumerate() {
            assert_eq!(obs[base + 5 + i] == 1.0, m);
        }
    }
}
