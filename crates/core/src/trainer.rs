//! The NeuroCuts training loop (Algorithm 1 + Figure 7).
//!
//! Each iteration: the vectorised collector ([`crate::VecEnv`]) steps
//! `num_envs` lockstep tree-building environments against the frozen
//! policy — one batched forward per step, `workers` threads — the
//! completed episodes are concatenated into a multi-env batch, and PPO
//! updates the shared policy/value network. The best completed tree
//! across all rollouts is tracked continuously; training stops at the
//! timestep budget or after `patience` iterations without improvement.
//! Degenerate inputs surface as [`TrainError`]s instead of panics.

use crate::config::NeuroCutsConfig;
pub use crate::env::BestTree;
use crate::env::NeuroCutsEnv;
use crate::vecenv::VecEnv;
use classbench::RuleSet;
use dtree::{DecisionTree, TreeStats};
use nn::{NetConfig, PolicyValueNet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rl::{Ppo, QConfig, QLearner, UpdateStats};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Why a [`Trainer`] could not be built or make progress. Surfaced as
/// a `Result` instead of a panic so callers (the CLI, long-running
/// harnesses) can report the degenerate input and move on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The rule set has no rules: there is no classifier to learn.
    EmptyRuleSet,
    /// Every episode ends before the policy gets a single decision —
    /// the root is already terminal (≤ `binth` rules, inseparable
    /// rules, zero rollout budget, ...), so there are no actions to
    /// optimise.
    NothingToLearn {
        /// Rules in the set.
        rules: usize,
        /// The leaf threshold that makes the root terminal.
        binth: usize,
    },
    /// A collection round produced zero experiences (every episode
    /// truncated before its first decision).
    EmptyBatch,
    /// A policy checkpoint could not be restored: unparseable JSON or
    /// a network shape that doesn't match this trainer's configuration.
    BadCheckpoint(
        /// What was wrong with the checkpoint.
        String,
    ),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyRuleSet => write!(f, "cannot train on an empty rule set"),
            TrainError::NothingToLearn { rules, binth } => write!(
                f,
                "nothing to learn: every episode ends before the first decision \
                 ({rules} rules, binth {binth})"
            ),
            TrainError::EmptyBatch => write!(f, "rollout collection produced an empty batch"),
            TrainError::BadCheckpoint(why) => write!(f, "cannot restore checkpoint: {why}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// The policy-optimisation algorithm behind a [`Trainer`]: PPO (the
/// paper's choice) or the Q-learning baseline it rejected (§4).
enum Learner {
    Ppo(Ppo),
    Q(QLearner),
}

/// Diagnostics for one training iteration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Total environment timesteps consumed so far.
    pub timesteps: usize,
    /// Episodes (trees) completed this iteration.
    pub episodes: usize,
    /// Mean episode return this iteration (−objective; higher better).
    pub mean_return: f64,
    /// Best objective seen so far (lower better).
    pub best_objective: f64,
    /// PPO update diagnostics.
    pub ppo: UpdateStats,
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-iteration history.
    pub history: Vec<IterationStats>,
    /// The best tree found (None only if every rollout truncated).
    pub best: Option<BestTree>,
    /// Total timesteps consumed.
    pub timesteps: usize,
}

/// Trains a NeuroCuts policy for one rule set.
pub struct Trainer {
    env: NeuroCutsEnv,
    vec_env: VecEnv,
    net: PolicyValueNet,
    learner: Learner,
    config: NeuroCutsConfig,
    timesteps: usize,
    iterations: usize,
}

impl Trainer {
    /// Set up policy, PPO learner, and the vectorised environment for
    /// `rules`. Rejects inputs the training loop could do nothing
    /// with: an empty rule set, or one whose root node is already
    /// terminal (the policy would never get a decision, so every batch
    /// would be empty).
    pub fn new(rules: RuleSet, config: NeuroCutsConfig) -> Result<Self, TrainError> {
        if rules.is_empty() {
            return Err(TrainError::EmptyRuleSet);
        }
        let env = NeuroCutsEnv::new(rules, config.clone());
        // Probe one episode up to its first decision: if none exists
        // (root terminal under `binth`, inseparable rules, zero rollout
        // budget), no amount of training can produce experiences.
        let mut probe = env.start_episode(config.seed, false);
        if !env.next_decision(&mut probe) {
            return Err(TrainError::NothingToLearn {
                rules: env.rules().len(),
                binth: config.binth,
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x006e_6574); // "net"
        let net = PolicyValueNet::new(
            NetConfig {
                obs_dim: env.encoder.obs_dim(),
                dim_actions: env.action_space.dim_actions(),
                num_actions: env.action_space.num_actions(),
                hidden: config.hidden,
            },
            &mut rng,
        );
        let learner = if config.use_qlearning {
            Learner::Q(QLearner::new(
                QConfig {
                    sgd_iters: config.ppo.sgd_iters,
                    minibatch: config.ppo.minibatch,
                    adam: config.ppo.adam,
                    ..Default::default()
                },
                config.seed,
            ))
        } else {
            Learner::Ppo(Ppo::new(config.ppo, config.seed))
        };
        let vec_env = Self::make_collector(&env, &config);
        Ok(Trainer { env, vec_env, net, learner, config, timesteps: 0, iterations: 0 })
    }

    /// The vectorised collector every trainer uses: one construction
    /// site, so plain and traffic-aware trainers can never drift onto
    /// different episode-seed schedules.
    fn make_collector(env: &NeuroCutsEnv, config: &NeuroCutsConfig) -> VecEnv {
        VecEnv::new(env.clone(), config.num_envs.max(1), config.seed.wrapping_add(1))
    }

    /// The environment (e.g. to inspect the rule set or best tree).
    pub fn env(&self) -> &NeuroCutsEnv {
        &self.env
    }

    /// Optimise for the *expected* classification time under `trace`
    /// instead of the worst case — the traffic-aware objective the
    /// paper's conclusion proposes (§8). Call before training.
    ///
    /// # Panics
    /// Panics if training has already started: the collector is
    /// rebuilt around the traffic-aware environment with its episode
    /// seed schedule restarted from zero, so a mid-training switch
    /// would silently replay already-consumed episode seeds.
    pub fn set_traffic(mut self, trace: Vec<classbench::Packet>) -> Self {
        assert_eq!(self.iterations, 0, "set_traffic must be called before training starts");
        self.env = self.env.with_traffic(trace);
        // The collector steps clones of the environment, so it must be
        // rebuilt around the traffic-aware one.
        self.vec_env = Self::make_collector(&self.env, &self.config);
        self
    }

    /// The current policy network.
    pub fn net(&self) -> &PolicyValueNet {
        &self.net
    }

    /// Run one training iteration: collect one multi-env batch through
    /// the vectorised collector (lockstep episodes, batched policy
    /// inference, `config.workers` threads) and apply one PPO update.
    /// Returns the iteration's diagnostics.
    pub fn step(&mut self) -> Result<IterationStats, TrainError> {
        let batch =
            self.vec_env.collect(&self.net, self.config.timesteps_per_batch, self.config.workers);
        if batch.is_empty() {
            return Err(TrainError::EmptyBatch);
        }
        self.timesteps += batch.len();
        let ppo_stats = match &mut self.learner {
            Learner::Ppo(ppo) => ppo.update(&mut self.net, &batch),
            Learner::Q(q) => {
                let qs = q.update(&mut self.net, &batch);
                UpdateStats { value_loss: qs.td_error, epochs: qs.epochs, ..Default::default() }
            }
        };
        let stats = IterationStats {
            iteration: self.iterations,
            timesteps: self.timesteps,
            episodes: batch.episodes,
            mean_return: batch.mean_episode_return,
            best_objective: self.env.best().map_or(f64::INFINITY, |b| b.objective),
            ppo: ppo_stats,
        };
        self.iterations += 1;
        Ok(stats)
    }

    /// Train until the timestep budget is spent or `patience`
    /// iterations pass without improving the best objective.
    pub fn train(&mut self) -> Result<TrainReport, TrainError> {
        let mut history = Vec::new();
        let mut stale = 0usize;
        let mut best_seen = f64::INFINITY;
        while self.timesteps < self.config.max_timesteps {
            let stats = self.step()?;
            if stats.best_objective + 1e-12 < best_seen {
                best_seen = stats.best_objective;
                stale = 0;
            } else if best_seen.is_finite() {
                // Patience only counts once *some* tree has completed;
                // early truncated-rollout iterations are the learning
                // phase, not stagnation.
                stale += 1;
            }
            history.push(stats);
            if self.config.patience > 0 && stale >= self.config.patience {
                break;
            }
        }
        Ok(TrainReport { history, best: self.env.best(), timesteps: self.timesteps })
    }

    /// Train to completion and hand back the tree to deploy: the best
    /// completed rollout when one exists, otherwise the greedy argmax
    /// tree — the train→compile→serve glue the lifecycle worker and
    /// the CLI share. Returns the tree, its stats, and the timesteps
    /// consumed. Deterministic for a fixed (rules, config).
    pub fn train_to_tree(&mut self) -> Result<(Arc<DecisionTree>, TreeStats, usize), TrainError> {
        let report = self.train()?;
        let timesteps = report.timesteps;
        match report.best {
            Some(best) => Ok((best.tree, best.stats, timesteps)),
            None => {
                let (tree, stats) = self.greedy_tree();
                Ok((tree, stats, timesteps))
            }
        }
    }

    /// Build one tree greedily (argmax actions) with the current
    /// policy — the deterministic "final" tree.
    pub fn greedy_tree(&self) -> (Arc<DecisionTree>, TreeStats) {
        let ep = self.env.build_tree(&self.net, 0, true);
        let stats = TreeStats::compute(&ep.tree);
        (ep.tree, stats)
    }

    /// Sample `n` stochastic tree variations from the current policy
    /// (Figure 6).
    pub fn sample_trees(&self, n: usize, seed: u64) -> Vec<(Arc<DecisionTree>, TreeStats)> {
        (0..n)
            .map(|i| {
                let ep = self.env.build_tree(&self.net, seed.wrapping_add(i as u64), false);
                let stats = TreeStats::compute(&ep.tree);
                (ep.tree, stats)
            })
            .collect()
    }

    /// Serialise the policy (checkpoint).
    pub fn save_policy(&self) -> String {
        self.net.to_json()
    }

    /// Restore a policy saved by [`Trainer::save_policy`].
    ///
    /// Fails with [`TrainError::BadCheckpoint`] when the JSON doesn't
    /// parse or the checkpoint's network shape doesn't match this
    /// trainer's configuration; the current policy is untouched on
    /// every error path.
    pub fn load_policy(&mut self, json: &str) -> Result<(), TrainError> {
        let net = PolicyValueNet::from_json(json)
            .map_err(|e| TrainError::BadCheckpoint(format!("unparseable JSON: {e}")))?;
        if net.config != self.net.config {
            return Err(TrainError::BadCheckpoint(format!(
                "network shape {:?} does not match trainer config {:?}",
                net.config, self.net.config
            )));
        }
        self.net = net;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionMode;
    use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
    use dtree::validate::assert_tree_valid;

    fn rules(size: usize) -> RuleSet {
        generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(81))
    }

    #[test]
    fn smoke_training_improves_or_matches_initial_policy() {
        let mut trainer = Trainer::new(rules(64), NeuroCutsConfig::smoke_test()).unwrap();
        let report = trainer.train().unwrap();
        assert!(!report.history.is_empty());
        assert!(report.timesteps > 0);
        let best = report.best.expect("at least one completed tree");
        assert!(best.objective.is_finite());
        assert_tree_valid(&best.tree, 200, 82);
        // History is monotone in best objective.
        let mut prev = f64::INFINITY;
        for h in &report.history {
            assert!(h.best_objective <= prev + 1e-9);
            prev = h.best_objective;
        }
    }

    #[test]
    fn training_beats_the_random_policy_on_time() {
        // The core learning claim at smoke scale: after training, the
        // best tree is no worse than the first iteration's mean.
        let mut cfg = NeuroCutsConfig::smoke_test();
        cfg.max_timesteps = 3_000;
        cfg.timesteps_per_batch = 600;
        let mut trainer = Trainer::new(rules(64), cfg).unwrap();
        let report = trainer.train().unwrap();
        let first_mean = -report.history[0].mean_return; // mean objective
        let best = report.best.unwrap().objective;
        assert!(
            best <= first_mean + 1e-9,
            "best {best} should beat the average random tree {first_mean}"
        );
    }

    #[test]
    fn greedy_tree_is_valid_and_deterministic() {
        let mut trainer = Trainer::new(rules(64), NeuroCutsConfig::smoke_test()).unwrap();
        let _ = trainer.step().unwrap();
        let (t1, s1) = trainer.greedy_tree();
        let (_t2, s2) = trainer.greedy_tree();
        assert_eq!(s1, s2);
        assert_tree_valid(&t1, 200, 83);
    }

    #[test]
    fn sampled_trees_vary() {
        let trainer = Trainer::new(rules(64), NeuroCutsConfig::smoke_test()).unwrap();
        let trees = trainer.sample_trees(4, 42);
        assert_eq!(trees.len(), 4);
        for (t, _) in &trees {
            assert_tree_valid(t, 100, 84);
        }
        // The stochastic policy explores: not all four identical (Fig 6).
        let times: Vec<usize> = trees.iter().map(|(_, s)| s.time).collect();
        let nodes: Vec<usize> = trees.iter().map(|(_, s)| s.nodes).collect();
        assert!(
            times.windows(2).any(|w| w[0] != w[1]) || nodes.windows(2).any(|w| w[0] != w[1]),
            "four identical trees from a stochastic policy: {times:?} {nodes:?}"
        );
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut trainer = Trainer::new(rules(64), NeuroCutsConfig::smoke_test()).unwrap();
        let _ = trainer.step().unwrap();
        let ckpt = trainer.save_policy();
        let (_, s1) = trainer.greedy_tree();
        let mut restored = Trainer::new(rules(64), NeuroCutsConfig::smoke_test()).unwrap();
        restored.load_policy(&ckpt).unwrap();
        let (_, s2) = restored.greedy_tree();
        assert_eq!(s1, s2);
    }

    #[test]
    fn partition_mode_efficuts_trains() {
        // IPC mixes wildcards and specific rules, so the EffiCuts
        // partition has real work to do while random-policy episodes
        // still complete (FW-heavy sets need the paper's full 15k-step
        // budget to get through the initial random phase).
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 80).with_seed(85));
        let mut cfg = NeuroCutsConfig::smoke_test()
            .with_partition_mode(PartitionMode::EffiCuts)
            .with_coeff(0.0);
        cfg.max_timesteps_per_rollout = 60_000;
        cfg.max_timesteps = 2_500;
        let mut trainer = Trainer::new(rules, cfg).unwrap();
        let report = trainer.train().unwrap();
        let best = report.best.expect("completed trees");
        assert_tree_valid(&best.tree, 200, 86);
    }

    #[test]
    fn empty_rule_set_is_an_error_not_a_panic() {
        let empty = classbench::parse_rules("").unwrap();
        match Trainer::new(empty, NeuroCutsConfig::smoke_test()) {
            Err(TrainError::EmptyRuleSet) => {}
            other => panic!("expected EmptyRuleSet, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn terminal_root_is_nothing_to_learn() {
        // Fewer rules than binth: the root is already a valid leaf, so
        // no episode ever reaches a decision.
        let mut cfg = NeuroCutsConfig::smoke_test();
        cfg.binth = 64;
        match Trainer::new(rules(8), cfg) {
            Err(TrainError::NothingToLearn { rules, binth }) => {
                assert_eq!(binth, 64);
                assert!(rules <= 64);
            }
            other => panic!("expected NothingToLearn, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn zero_rollout_budget_is_nothing_to_learn() {
        let mut cfg = NeuroCutsConfig::smoke_test();
        cfg.max_timesteps_per_rollout = 0;
        match Trainer::new(rules(64), cfg) {
            Err(TrainError::NothingToLearn { .. }) => {}
            other => panic!("expected NothingToLearn, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn train_error_messages_name_the_cause() {
        assert!(TrainError::EmptyRuleSet.to_string().contains("empty rule set"));
        let e = TrainError::NothingToLearn { rules: 8, binth: 64 }.to_string();
        assert!(e.contains("8 rules") && e.contains("binth 64"), "{e}");
    }

    #[test]
    fn patience_stops_early() {
        let mut cfg = NeuroCutsConfig::smoke_test();
        cfg.max_timesteps = usize::MAX / 2;
        cfg.patience = 2;
        let mut trainer = Trainer::new(rules(32), cfg).unwrap();
        let report = trainer.train().unwrap();
        // Must terminate (patience) well before the absurd budget.
        assert!(report.history.len() < 100);
    }
}
