//! The NeuroCuts reward (Eqs. 1–5 and Algorithm 1, line 17):
//!
//! ```text
//! R(node) = -( c · f(Time(subtree)) + (1 − c) · f(Space(subtree)) )
//! ```
//!
//! where `Time`/`Space` aggregate recursively — `max` over children for
//! cut-like nodes and `sum` for partitions (time); `sum` for both
//! (space). The rewards are the *true* objective; the paper explicitly
//! avoids reward engineering (§4 footnote 2).

use crate::config::{NeuroCutsConfig, RewardScaling};
use dtree::{DecisionTree, MemoryModel, NodeKind};
use serde::{Deserialize, Serialize};

/// The scalarised objective `c·f(T) + (1−c)·f(S)`; rewards are its
/// negation. Lower objective = better tree.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Objective {
    /// Time-space coefficient `c`.
    pub c: f64,
    /// Reward scaling `f`.
    pub scaling: RewardScaling,
    /// Memory model used for `Space`.
    pub memory: MemoryModel,
}

impl Objective {
    /// Build from a NeuroCuts configuration.
    pub fn from_config(cfg: &NeuroCutsConfig) -> Self {
        Objective {
            c: cfg.time_space_coeff,
            scaling: cfg.reward_scaling,
            memory: MemoryModel::default(),
        }
    }

    /// Scalarise a `(time, bytes)` pair.
    pub fn value(&self, time: usize, bytes: usize) -> f64 {
        self.c * self.scaling.apply(time as f64) + (1.0 - self.c) * self.scaling.apply(bytes as f64)
    }

    /// Reward for a node whose subtree has the given metrics.
    pub fn reward(&self, time: usize, bytes: usize) -> f64 {
        -self.value(time, bytes)
    }
}

/// Per-node `(Time, Space)` of every subtree, computed in one reverse
/// pass over the arena (children are always appended after their
/// parent, so reverse id order is a valid post-order).
///
/// `Space` here is the structural bytes of the subtree (Algorithm 1's
/// `Space(s)`), excluding the rule table shared by the whole classifier.
pub fn subtree_metrics(tree: &DecisionTree, memory: &MemoryModel) -> (Vec<usize>, Vec<usize>) {
    let n = tree.num_nodes();
    let mut time = vec![0usize; n];
    let mut bytes = vec![0usize; n];
    for id in (0..n).rev() {
        let node = tree.node(id);
        let own_bytes = memory.node_bytes(&node.kind, node.num_rules());
        match &node.kind {
            NodeKind::Leaf => {
                time[id] = 1;
                bytes[id] = own_bytes;
            }
            NodeKind::Partition { children } => {
                time[id] = 1 + children.iter().map(|&c| time[c]).sum::<usize>();
                bytes[id] = own_bytes + children.iter().map(|&c| bytes[c]).sum::<usize>();
            }
            other => {
                let kids = other.children();
                time[id] = 1 + kids.iter().map(|&c| time[c]).max().unwrap_or(0);
                bytes[id] = own_bytes + kids.iter().map(|&c| bytes[c]).sum::<usize>();
            }
        }
    }
    (time, bytes)
}

/// Traffic-weighted expected lookup time per subtree (the paper's §8
/// extension: optimise for a *specific traffic pattern* rather than the
/// worst case). `counts[id]` is how many trace packets reach node `id`
/// ([`DecisionTree::node_visit_counts`]).
///
/// Recursion: a leaf costs 1; a cut-like node costs 1 plus the
/// visit-weighted mean of its children (falling back to the worst-case
/// `max` for subtrees the trace never reaches, so unexercised branches
/// are not free); a partition node costs 1 plus the sum of its children
/// (every partition is always consulted).
pub fn subtree_avg_time(tree: &DecisionTree, counts: &[usize]) -> Vec<f64> {
    let n = tree.num_nodes();
    assert_eq!(counts.len(), n, "counts must align with the node arena");
    let mut avg = vec![0.0f64; n];
    for id in (0..n).rev() {
        let node = tree.node(id);
        avg[id] = match &node.kind {
            NodeKind::Leaf => 1.0,
            NodeKind::Partition { children } => 1.0 + children.iter().map(|&c| avg[c]).sum::<f64>(),
            other => {
                let kids = other.children();
                let here = counts[id];
                if here == 0 {
                    1.0 + kids.iter().map(|&c| avg[c]).fold(0.0f64, f64::max)
                } else {
                    1.0 + kids.iter().map(|&c| avg[c] * counts[c] as f64 / here as f64).sum::<f64>()
                }
            }
        };
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionMode;
    use classbench::{Dim, DimRange, Rule, RuleSet};
    use dtree::stats::{subtree_bytes, subtree_time};

    fn rules() -> RuleSet {
        let mut a = Rule::default_rule(2);
        a.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let mut b = Rule::default_rule(1);
        b.ranges[Dim::DstPort.index()] = DimRange::new(0, 1024);
        RuleSet::new(vec![a, b, Rule::default_rule(0)])
    }

    #[test]
    fn metrics_match_recursive_reference() {
        let mut t = DecisionTree::new(&rules());
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        t.cut_node(kids[0], Dim::Proto, 2);
        let part_kids = t.partition_node(kids[1], vec![vec![0], vec![2]]);
        t.cut_node(part_kids[0], Dim::SrcIp, 2);
        let memory = MemoryModel::default();
        let (time, bytes) = subtree_metrics(&t, &memory);
        for id in 0..t.num_nodes() {
            assert_eq!(time[id], subtree_time(&t, id), "time at node {id}");
            assert_eq!(bytes[id], subtree_bytes(&t, id, &memory), "bytes at node {id}");
        }
    }

    #[test]
    fn pure_time_objective_is_depth() {
        let mut cfg = crate::NeuroCutsConfig::smoke_test();
        cfg.time_space_coeff = 1.0;
        cfg.reward_scaling = RewardScaling::Linear;
        let obj = Objective::from_config(&cfg);
        assert_eq!(obj.value(12, 999_999), 12.0);
        assert_eq!(obj.reward(12, 999_999), -12.0);
    }

    #[test]
    fn pure_space_objective_ignores_time() {
        let mut cfg = crate::NeuroCutsConfig::smoke_test();
        cfg.time_space_coeff = 0.0;
        cfg.reward_scaling = RewardScaling::Linear;
        let obj = Objective::from_config(&cfg);
        assert_eq!(obj.value(999, 1000), 1000.0);
    }

    #[test]
    fn mixed_objective_uses_log_scaling() {
        let cfg = crate::NeuroCutsConfig::smoke_test()
            .with_coeff(0.5)
            .with_partition_mode(PartitionMode::Simple);
        let obj = Objective::from_config(&cfg);
        let v = obj.value(16, 4096);
        let expect = 0.5 * (16f64).ln() + 0.5 * (4096f64).ln();
        assert!((v - expect).abs() < 1e-9);
    }

    #[test]
    fn avg_time_reduces_to_worst_case_without_traffic_reach() {
        // With zero counts everywhere, avg time falls back to the
        // worst-case max recursion and therefore equals subtree_time.
        let mut t = DecisionTree::new(&rules());
        let kids = t.cut_node(t.root(), Dim::DstPort, 4);
        t.cut_node(kids[0], Dim::Proto, 2);
        let counts = vec![0usize; t.num_nodes()];
        let avg = subtree_avg_time(&t, &counts);
        for (id, &a) in avg.iter().enumerate() {
            assert!((a - subtree_time(&t, id) as f64).abs() < 1e-9, "node {id}");
        }
    }

    #[test]
    fn avg_time_weights_by_visits() {
        let mut t = DecisionTree::new(&rules());
        let kids = t.cut_node(t.root(), Dim::DstPort, 2);
        // Expand only the low-port child so paths differ in length.
        t.cut_node(kids[0], Dim::Proto, 2);
        // All traffic to the high-port (shallow) side: avg = 2.
        let trace: Vec<classbench::Packet> =
            (0..10).map(|i| classbench::Packet::new(0, 0, 0, 60000 + i, 6)).collect();
        let counts = t.node_visit_counts(&trace);
        let avg = subtree_avg_time(&t, &counts);
        assert!((avg[t.root()] - 2.0).abs() < 1e-9, "got {}", avg[t.root()]);
        // Worst case is 3 (through the expanded child).
        assert_eq!(subtree_time(&t, t.root()), 3);
        // Mixed traffic lands strictly between.
        let mixed: Vec<classbench::Packet> = (0..10)
            .map(|i| classbench::Packet::new(0, 0, 0, if i < 5 { 100 } else { 60000 }, 6))
            .collect();
        let counts = t.node_visit_counts(&mixed);
        let avg = subtree_avg_time(&t, &counts);
        assert!(avg[t.root()] > 2.0 && avg[t.root()] < 3.0, "got {}", avg[t.root()]);
    }

    #[test]
    fn better_trees_get_higher_reward() {
        let cfg = crate::NeuroCutsConfig::smoke_test();
        let obj = Objective::from_config(&cfg);
        assert!(obj.reward(5, 100) > obj.reward(10, 100));
    }
}
