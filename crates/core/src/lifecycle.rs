//! The classifier lifecycle: close the churn → retrain → hot-swap loop.
//!
//! PR 3's live-update path keeps serving *correct* matches under churn,
//! but the served tree's **shape** was chosen by the RL optimiser for a
//! rule set that no longer exists: rebuilds re-flatten the mutated tree
//! without ever re-running the optimiser, so depth and Mpps silently
//! degrade the longer a classifier lives. This module is the missing
//! control loop (cf. Chameleon's runtime reconfiguration pattern:
//! reconfigure in the background, verify continuously, swap invisibly):
//!
//! 1. **Watch** — a [`LifecycleWorker`] polls the handle's lifetime
//!    update counters (churn since the last baseline) and a cheap tree-
//!    quality drift signal (worst-case depth × bytes/rule vs. the
//!    post-train baseline, [`drift_signal`]).
//! 2. **Trigger** — a [`RetrainTrigger`] decides when accumulated churn
//!    or quality drift warrants a retrain (with a `min_updates` gate so
//!    small classifiers don't thrash).
//! 3. **Retrain** — the worker freezes the current rule set
//!    ([`dtree::ClassifierHandle::rule_snapshot`]), trains a fresh
//!    policy on the side via [`Trainer`] + the vectorised collector,
//!    and extracts the best tree ([`Trainer::train_to_tree`]). Readers
//!    keep serving the old epoch throughout.
//! 4. **Verify + swap** — [`dtree::ClassifierHandle::adopt`] grafts the
//!    winner into the live id space, reconciles updates that landed
//!    mid-retrain, spot-checks the graft against the linear-scan ground
//!    truth, and publishes one new epoch — folding the overlay and
//!    resetting the churn log atomically. A failed spot check abandons
//!    the swap with the serving state untouched.
//!
//! The [`churn_retrain_timeline`] driver at the bottom is the shared
//! harness behind the CLI `lifecycle-bench` subcommand and the
//! `bench_lifecycle` JSON emitter, so the two entry points measure the
//! same loop instead of carrying diverging copies.

use crate::config::NeuroCutsConfig;
use crate::trainer::{TrainError, Trainer};
use classbench::{Packet, RuleSet};
use dtree::{
    find_rebuild_divergence, serve_during, ChurnSchedule, ClassifierHandle, DecisionTree,
    FaultInjector, FaultPoint, TreeStats,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When accumulated churn or quality drift warrants a background
/// retrain (the lifecycle analogue of `dtree`'s `RebuildPolicy`, one
/// level up: a rebuild re-flattens the mutated tree, a retrain re-runs
/// the optimiser that chose its shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainTrigger {
    /// Retrain when updates since the last baseline reach this
    /// fraction of the active rules.
    pub min_churn: f64,
    /// Never retrain before this many updates since the baseline, so
    /// small classifiers don't retrain on every handful of updates.
    pub min_updates: usize,
    /// Retrain regardless of churn when the quality signal
    /// ([`drift_signal`]) grows past this ratio of the baseline.
    pub max_drift: f64,
}

impl RetrainTrigger {
    /// Retrain at 25% churn (or 1.5× quality drift), not before 32
    /// updates.
    pub fn default_trigger() -> Self {
        RetrainTrigger { min_churn: 0.25, min_updates: 32, max_drift: 1.5 }
    }

    /// True when the accumulated signals warrant a retrain.
    pub fn fires(&self, updates_since: usize, churn: f64, drift: f64) -> bool {
        updates_since >= self.min_updates && (churn >= self.min_churn || drift >= self.max_drift)
    }
}

impl Default for RetrainTrigger {
    fn default() -> Self {
        Self::default_trigger()
    }
}

/// Bounded-retry exponential backoff for *transient* retrain failures
/// (panics, deadline overruns, failed adoptions). Deterministic trainer
/// refusals ([`TrainError`]) are not retried at all — the same snapshot
/// fails the same way every time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive transient failures before the worker degrades to a
    /// deterministic heuristic rebuild (fold-overlay recompile) so the
    /// served shape never stays stale just because training is broken.
    pub max_failures: u32,
    /// Backoff after the first failure; doubles per consecutive
    /// failure up to [`Self::max_backoff`].
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-attempt wall-clock deadline: a retrain running past it is a
    /// [`LifecycleError::Timeout`] and its tree is discarded.
    pub attempt_deadline: Duration,
}

impl RetryPolicy {
    /// Degrade after 3 consecutive failures, backing off 100ms → 5s,
    /// with a 60s per-attempt deadline.
    pub fn default_policy() -> Self {
        RetryPolicy {
            max_failures: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            attempt_deadline: Duration::from_secs(60),
        }
    }

    /// Backoff imposed after the `failures`-th consecutive failure
    /// (1-based): `base · 2^(failures-1)`, capped at
    /// [`Self::max_backoff`]. Zero failures back off nothing.
    pub fn backoff_after(&self, failures: u32) -> Duration {
        if failures == 0 {
            return Duration::ZERO;
        }
        let shift = (failures - 1).min(16);
        self.base_backoff.saturating_mul(1u32 << shift).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::default_policy()
    }
}

/// Why one retrain attempt failed — the worker-level taxonomy layered
/// over the trainer's [`TrainError`] and the handle's
/// [`dtree::AdoptError`].
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleError {
    /// The trainer refused the snapshot (degenerate rule set, nothing
    /// to learn). Deterministic: retrying the same snapshot cannot
    /// succeed, so the worker skips and re-baselines instead of
    /// burning retries.
    Train(TrainError),
    /// The retrain panicked; the payload message was captured by the
    /// `catch_unwind` isolation and the worker survives.
    Panicked(String),
    /// The retrain ran past [`RetryPolicy::attempt_deadline`]; its
    /// tree (if any) was discarded.
    Timeout {
        /// Wall-clock the attempt actually took (milliseconds).
        elapsed_ms: u64,
        /// The deadline it overran (milliseconds).
        deadline_ms: u64,
    },
    /// Training succeeded but [`dtree::ClassifierHandle::adopt`]
    /// refused the tree (spot-check divergence, stale snapshot, ...).
    Adopt(dtree::AdoptError),
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::Train(e) => write!(f, "train: {e}"),
            LifecycleError::Panicked(msg) => write!(f, "retrain panicked: {msg}"),
            LifecycleError::Timeout { elapsed_ms, deadline_ms } => {
                write!(f, "retrain overran its deadline: {elapsed_ms}ms > {deadline_ms}ms")
            }
            LifecycleError::Adopt(e) => write!(f, "adopt: {e}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

/// The worker's own health, mirrored into the handle's
/// [`dtree::HealthReport`] after every attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerHealth {
    /// Consecutive transient failures (0 when healthy).
    pub consecutive_failures: u64,
    /// True after [`RetryPolicy::max_failures`] consecutive failures
    /// forced a heuristic fallback rebuild; cleared by the next
    /// successful retrain.
    pub degraded: bool,
    /// True while a failure backoff is pending (polls return `None`
    /// without evaluating the trigger).
    pub in_backoff: bool,
}

/// The cheap tree-quality signal the worker watches: worst-case
/// classification depth (Eq. 1) × bytes per rule. Depth is fixed by the
/// structure while churn only mutates leaves, so the product moves with
/// the rule count and leaf occupancy — exactly the "shape chosen for a
/// rule set that no longer exists" drift a rebuild cannot fix.
pub fn drift_signal(stats: &TreeStats) -> f64 {
    stats.time as f64 * stats.bytes_per_rule.max(1.0)
}

/// Everything a [`LifecycleWorker`] needs to run.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// When to retrain.
    pub trigger: RetrainTrigger,
    /// Training budget and hyperparameters for each background retrain.
    /// Each retrain `k` uses `train.seed + k`, recorded per event, so
    /// every swap is reproducible from its snapshot alone.
    pub train: NeuroCutsConfig,
    /// Stop after this many retrain attempts (0 = unlimited).
    pub max_retrains: usize,
    /// Failure handling: per-attempt deadline, bounded-retry backoff,
    /// and the degradation threshold.
    pub retry: RetryPolicy,
    /// Optional fault injector (chaos harnesses): the worker evaluates
    /// the retrain-side fault points around every attempt. `None` in
    /// production.
    pub faults: Option<Arc<FaultInjector>>,
    /// Optional durability: when set, the worker checkpoints the handle
    /// after every successful adopt and whenever the WAL outgrows
    /// [`crate::persist::PersistConfig::checkpoint_wal_threshold`].
    /// Checkpoint failures degrade durability, never serving: they are
    /// recorded sticky in the health report and do not count against
    /// the retrain failure streak.
    pub persist: Option<crate::persist::Persistence>,
}

impl LifecycleConfig {
    /// A worker around the given training config with the default
    /// trigger, default retry policy, no retrain cap, and no faults.
    pub fn new(train: NeuroCutsConfig) -> Self {
        LifecycleConfig {
            trigger: RetrainTrigger::default_trigger(),
            train,
            max_retrains: 0,
            retry: RetryPolicy::default_policy(),
            faults: None,
            persist: None,
        }
    }
}

/// One retrain attempt, adopted or skipped. Carries the frozen snapshot
/// and seed so any published epoch can be re-derived from scratch
/// (retrain the snapshot with the same seed, graft, compare) — the
/// reproducibility claim the soak test pins.
#[derive(Debug, Clone)]
pub struct LifecycleEvent {
    /// Epoch after the swap (the pre-attempt epoch when skipped).
    pub epoch: u64,
    /// The rule set the retrain saw (frozen at trigger time).
    pub snapshot_rules: RuleSet,
    /// The exact seed this retrain trained with.
    pub train_seed: u64,
    /// Churn fraction since the baseline at trigger time.
    pub churn: f64,
    /// Quality-drift ratio vs. the baseline at trigger time.
    pub drift: f64,
    /// Environment timesteps the retrain consumed.
    pub timesteps: usize,
    /// Wall-clock seconds spent training (readers served throughout).
    pub train_secs: f64,
    /// Stats of the trained template *before* grafting — re-deriving
    /// them from `snapshot_rules` + `train_seed` must reproduce this
    /// exactly (the trainer is deterministic), which is how the soak
    /// test certifies every published epoch. `None` when training was
    /// skipped.
    pub template_stats: Option<TreeStats>,
    /// Served worst-case depth before the swap.
    pub depth_before: usize,
    /// Served worst-case depth after the swap (unchanged when skipped).
    pub depth_after: usize,
    /// Bytes per rule after the swap.
    pub bytes_per_rule_after: f64,
    /// Post-snapshot inserts the swap reconciled.
    pub reconciled_inserts: usize,
    /// Post-snapshot deletes the swap reconciled.
    pub reconciled_deletes: usize,
    /// Packets the pre-publish linear-scan spot check verified.
    pub spot_checked: usize,
    /// True when the retrained tree was published.
    pub adopted: bool,
    /// Why the attempt did not publish (degenerate rule set, failed
    /// spot check, ...). `None` when adopted.
    pub skipped: Option<String>,
    /// Consecutive transient failures after this attempt (0 on
    /// success and on deterministic skips).
    pub failures_after: u64,
    /// True when this attempt left the worker degraded (heuristic
    /// fallback in effect).
    pub degraded: bool,
    /// True when this attempt's failure crossed the degradation
    /// threshold and forced the deterministic fold-overlay rebuild.
    pub fallback_rebuild: bool,
    /// The durable generation this attempt's post-adopt checkpoint
    /// wrote (`None` without persistence, on failed attempts, and when
    /// the checkpoint itself failed).
    pub checkpoint_generation: Option<u64>,
    /// Backoff imposed after this attempt (milliseconds; 0 on success
    /// and deterministic skips).
    pub backoff_ms: u64,
}

/// Everything a worker did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct LifecycleReport {
    /// One entry per retrain attempt, in order.
    pub events: Vec<LifecycleEvent>,
    /// Trigger polls evaluated.
    pub polls: usize,
    /// Retrain attempts (adopted + skipped).
    pub retrains: usize,
}

impl LifecycleReport {
    /// Retrains that actually published a new tree.
    pub fn adopted(&self) -> usize {
        self.events.iter().filter(|e| e.adopted).count()
    }

    /// Attempts that failed transiently (panic, timeout, refused
    /// adoption) — deterministic trainer skips are not failures.
    pub fn failures(&self) -> usize {
        self.events.iter().filter(|e| !e.adopted && e.failures_after > 0).count()
    }

    /// Failures that crossed the degradation threshold and forced the
    /// deterministic fallback rebuild.
    pub fn fallback_rebuilds(&self) -> usize {
        self.events.iter().filter(|e| e.fallback_rebuild).count()
    }
}

/// The off-hot-path self-optimisation worker (module docs). Drive it
/// synchronously with [`Self::poll`] (deterministic harnesses) or hand
/// it a thread via [`Self::run`].
#[derive(Debug)]
pub struct LifecycleWorker {
    cfg: LifecycleConfig,
    baseline_updates: usize,
    baseline_signal: f64,
    polls: usize,
    retrains: usize,
    events: Vec<LifecycleEvent>,
    consecutive_failures: u32,
    degraded: bool,
    backoff_until: Option<Instant>,
    /// The seed that trained the currently served tree — pinned into
    /// every checkpoint so a recovered image keeps the PR 6
    /// reproducibility contract (snapshot rules + seed re-derive the
    /// adopted tree).
    last_train_seed: u64,
}

impl LifecycleWorker {
    /// Attach a worker to a handle: the current tree becomes the
    /// quality baseline and churn starts counting from now.
    pub fn new(cfg: LifecycleConfig, handle: &ClassifierHandle) -> Self {
        let stats = handle.with_tree(TreeStats::compute);
        let last_train_seed = cfg.train.seed;
        LifecycleWorker {
            cfg,
            baseline_updates: handle.stats().lifetime_updates(),
            baseline_signal: drift_signal(&stats),
            polls: 0,
            retrains: 0,
            events: Vec::new(),
            consecutive_failures: 0,
            degraded: false,
            backoff_until: None,
            last_train_seed,
        }
    }

    /// Retrain attempts so far (adopted + skipped).
    pub fn retrains(&self) -> usize {
        self.retrains
    }

    /// The attempts recorded so far.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// The worker's current health (failure streak, degraded flag,
    /// pending backoff).
    pub fn health(&self) -> WorkerHealth {
        WorkerHealth {
            consecutive_failures: self.consecutive_failures as u64,
            degraded: self.degraded,
            in_backoff: self.in_backoff(),
        }
    }

    /// True while a failure backoff is pending: polls return `None`
    /// without evaluating the trigger until it expires.
    pub fn in_backoff(&self) -> bool {
        self.backoff_until.is_some_and(|until| Instant::now() < until)
    }

    /// Evaluate the trigger once and, when it fires, run one full
    /// retrain → verify → swap cycle on the calling thread (readers
    /// keep serving the old epoch throughout; updates only pause for
    /// the final graft + compile). Returns the recorded event when an
    /// attempt ran, `None` when the trigger held (or a failure backoff
    /// is still pending).
    ///
    /// `spot_check` is the trace the pre-publish verification classifies
    /// through both the grafted tree and the linear-scan ground truth;
    /// the worker extends it with one low-corner probe per snapshot
    /// rule so a corrupted template cannot sneak past an unlucky trace.
    ///
    /// Failure handling (the self-healing contract):
    /// - the trainer call is panic-isolated (`catch_unwind`) and
    ///   deadline-checked ([`RetryPolicy::attempt_deadline`]);
    /// - deterministic [`TrainError`]s skip and re-baseline (retrying
    ///   the same degenerate snapshot every poll would spin);
    /// - transient failures (panic/timeout/refused adoption) keep the
    ///   baseline — the trigger re-fires after an exponential backoff —
    ///   and after [`RetryPolicy::max_failures`] in a row the worker
    ///   **degrades**: a deterministic fold-overlay recompile
    ///   ([`dtree::ClassifierHandle::force_rebuild`]) keeps the served
    ///   shape fresh, `degraded` stays set until a retrain succeeds;
    /// - every failed attempt leaves the published epoch untouched
    ///   (except the explicit fallback rebuild, which is its own
    ///   single epoch).
    pub fn poll(
        &mut self,
        handle: &ClassifierHandle,
        spot_check: &[Packet],
    ) -> Option<&LifecycleEvent> {
        self.polls += 1;
        // Durability first: the WAL-length checkpoint must run even
        // while the retrain trigger holds, a backoff is pending, or the
        // retrain budget is spent — a long quiet churn stream still
        // needs its recovery replay bounded.
        if self.cfg.persist.as_ref().is_some_and(|p| p.wants_checkpoint(handle)) {
            self.checkpoint_now(handle);
        }
        if self.cfg.max_retrains > 0 && self.retrains >= self.cfg.max_retrains {
            return None;
        }
        if self.in_backoff() {
            return None;
        }
        let stats = handle.stats();
        let updates_since = stats.lifetime_updates().saturating_sub(self.baseline_updates);
        let churn = updates_since as f64 / stats.active_rules.max(1) as f64;
        let tree_stats = handle.with_tree(TreeStats::compute);
        let drift = drift_signal(&tree_stats) / self.baseline_signal.max(f64::MIN_POSITIVE);
        if !self.cfg.trigger.fires(updates_since, churn, drift) {
            return None;
        }

        self.retrains += 1;
        let snap = handle.rule_snapshot();
        let seed = self.cfg.train.seed.wrapping_add(self.retrains as u64);
        let mut event = LifecycleEvent {
            epoch: stats.epoch,
            snapshot_rules: snap.rules().clone(),
            train_seed: seed,
            churn,
            drift,
            timesteps: 0,
            train_secs: 0.0,
            template_stats: None,
            depth_before: tree_stats.time,
            depth_after: tree_stats.time,
            bytes_per_rule_after: tree_stats.bytes_per_rule,
            reconciled_inserts: 0,
            reconciled_deletes: 0,
            spot_checked: 0,
            adopted: false,
            skipped: None,
            failures_after: 0,
            degraded: self.degraded,
            fallback_rebuild: false,
            checkpoint_generation: None,
            backoff_ms: 0,
        };
        let outcome = self.attempt(handle, &snap, spot_check, seed, &mut event);
        match outcome {
            Ok(()) => {
                // Success clears the whole failure state: streak,
                // backoff, and the degraded flag.
                self.consecutive_failures = 0;
                self.degraded = false;
                self.backoff_until = None;
                event.degraded = false;
                self.rebaseline(handle);
                handle.note_worker_health(0, false, None);
                // Fold the freshly adopted tree into a durable
                // generation: a crash from here replays nothing.
                self.last_train_seed = seed;
                event.checkpoint_generation = self.checkpoint_now(handle);
            }
            Err(LifecycleError::Train(err)) => {
                // Deterministic refusal: record the skip and
                // re-baseline (a retry of the same snapshot fails the
                // same way — this is not a transient failure).
                event.skipped = Some(LifecycleError::Train(err).to_string());
                event.failures_after = self.consecutive_failures as u64;
                self.rebaseline(handle);
                handle.note_worker_health(
                    self.consecutive_failures as u64,
                    self.degraded,
                    event.skipped.clone(),
                );
            }
            Err(err) => {
                // Transient failure: keep the baseline so the trigger
                // re-fires, back off exponentially, and degrade to the
                // heuristic rebuild once the streak crosses the bound.
                self.consecutive_failures += 1;
                let backoff = self.cfg.retry.backoff_after(self.consecutive_failures);
                self.backoff_until = Some(Instant::now() + backoff);
                event.skipped = Some(err.to_string());
                event.failures_after = self.consecutive_failures as u64;
                event.backoff_ms = backoff.as_millis() as u64;
                if self.consecutive_failures >= self.cfg.retry.max_failures {
                    handle.force_rebuild();
                    self.degraded = true;
                    event.fallback_rebuild = true;
                }
                event.degraded = self.degraded;
                handle.note_worker_health(
                    self.consecutive_failures as u64,
                    self.degraded,
                    event.skipped.clone(),
                );
            }
        }
        self.events.push(event);
        self.events.last()
    }

    /// Checkpoint the handle into a fresh durable generation, returning
    /// the generation written. A failure here loses durability, not
    /// serving: it is recorded sticky in the handle's health report and
    /// deliberately kept out of the retrain failure streak (backing off
    /// retrains would not make the disk writable).
    fn checkpoint_now(&self, handle: &ClassifierHandle) -> Option<u64> {
        let persist = self.cfg.persist.as_ref()?;
        match persist.checkpoint(handle, self.last_train_seed) {
            Ok(report) => Some(report.generation),
            Err(err) => {
                handle.note_worker_health(
                    self.consecutive_failures as u64,
                    self.degraded,
                    Some(format!("checkpoint failed: {err}")),
                );
                None
            }
        }
    }

    /// One retrain → verify → swap attempt, filling `event` on the way.
    fn attempt(
        &self,
        handle: &ClassifierHandle,
        snap: &dtree::RuleSnapshot,
        spot_check: &[Packet],
        seed: u64,
        event: &mut LifecycleEvent,
    ) -> Result<(), LifecycleError> {
        let deadline = self.cfg.retry.attempt_deadline;
        let faults = self.cfg.faults.clone();
        let train = self.cfg.train.clone();
        let snap_rules = snap.rules().clone();
        let started = Instant::now();
        // Panic isolation: a buggy (or fault-injected) trainer must
        // not take the worker thread down. AssertUnwindSafe is sound
        // here — everything the closure touches is owned by it, so an
        // unwind cannot leave shared state half-mutated.
        let trained = catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = &faults {
                if f.should_fire(FaultPoint::RetrainPanic) {
                    panic!("injected retrain panic (fault schedule)");
                }
                if f.should_fire(FaultPoint::RetrainSlow) {
                    // Sleep decisively past the deadline so the slow
                    // path deterministically classifies as a timeout.
                    std::thread::sleep(deadline + deadline / 2);
                }
            }
            retrain_snapshot(&snap_rules, &train, seed)
        }));
        let elapsed = started.elapsed();
        let (tree, template_stats, timesteps) = match trained {
            Err(payload) => return Err(LifecycleError::Panicked(panic_message(&*payload))),
            Ok(_) if elapsed > deadline => {
                return Err(LifecycleError::Timeout {
                    elapsed_ms: elapsed.as_millis() as u64,
                    deadline_ms: deadline.as_millis() as u64,
                });
            }
            Ok(Err(err)) => return Err(LifecycleError::Train(err)),
            Ok(Ok(result)) => result,
        };
        event.timesteps = timesteps;
        event.train_secs = elapsed.as_secs_f64();
        event.template_stats = Some(template_stats);
        // Fault point: corrupt the trained template *before* adoption —
        // the pre-publish spot check must catch it (the probes below
        // include every snapshot rule's low corner, so the sabotaged
        // rule cannot hide behind an unlucky trace).
        let template = match &faults {
            Some(f) if f.should_fire(FaultPoint::AdoptCorruption) => {
                let mut sabotaged = (*tree).clone();
                dtree::updates::delete_rule(&mut sabotaged, 0)
                    .expect("template rule 0 exists: the trainer refuses empty rule sets");
                Arc::new(sabotaged)
            }
            _ => tree,
        };
        let probes: Vec<Packet> = spot_check
            .iter()
            .copied()
            .chain(snap.rules().rules().iter().map(|r| r.low_corner()))
            .collect();
        match handle.adopt(&template, snap, &probes) {
            Err(err) => Err(LifecycleError::Adopt(err)),
            Ok(report) => {
                event.adopted = true;
                event.epoch = report.epoch;
                event.reconciled_inserts = report.reconciled_inserts;
                event.reconciled_deletes = report.reconciled_deletes;
                event.spot_checked = report.spot_checked;
                let after = handle.with_tree(TreeStats::compute);
                event.depth_after = after.time;
                event.bytes_per_rule_after = after.bytes_per_rule;
                Ok(())
            }
        }
    }

    fn rebaseline(&mut self, handle: &ClassifierHandle) {
        self.baseline_updates = handle.stats().lifetime_updates();
        self.baseline_signal = drift_signal(&handle.with_tree(TreeStats::compute));
    }

    /// Run as a background worker: poll every `interval` until `stop`
    /// is set, then return the full report. Spawn on its own thread
    /// (e.g. `std::thread::scope`) next to readers and updaters.
    pub fn run(
        mut self,
        handle: &ClassifierHandle,
        spot_check: &[Packet],
        stop: &AtomicBool,
        interval: Duration,
    ) -> LifecycleReport {
        while !stop.load(Ordering::Relaxed) {
            self.poll(handle, spot_check);
            // Sleep in small slices so a stop request isn't stuck
            // behind a long interval.
            let mut left = interval;
            while !left.is_zero() && !stop.load(Ordering::Relaxed) {
                let step = left.min(Duration::from_millis(5));
                std::thread::sleep(step);
                left = left.saturating_sub(step);
            }
        }
        // One drain poll, so churn that accumulated since the last
        // tick is not silently dropped at shutdown (a replay shorter
        // than one interval would otherwise never trigger).
        self.poll(handle, spot_check);
        self.into_report()
    }

    /// Consume the worker into its report.
    pub fn into_report(self) -> LifecycleReport {
        LifecycleReport { events: self.events, polls: self.polls, retrains: self.retrains }
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Retrain on a frozen rule-set snapshot: train with `cfg` reseeded to
/// `seed`, and return the tree to deploy plus its stats and the
/// timesteps consumed. Deterministic for a fixed (rules, cfg, seed) —
/// the soak test re-derives published epochs through this exact entry
/// point, from nothing but a [`LifecycleEvent`]'s `snapshot_rules` and
/// `train_seed`.
pub fn retrain_snapshot(
    rules: &RuleSet,
    cfg: &NeuroCutsConfig,
    seed: u64,
) -> Result<(Arc<DecisionTree>, TreeStats, usize), TrainError> {
    let mut cfg = cfg.clone();
    cfg.seed = seed;
    let mut trainer = Trainer::new(rules.clone(), cfg)?;
    trainer.train_to_tree()
}

/// One measured phase of a [`churn_retrain_timeline`] run.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name (`baseline`, `churn`, `retrain`, `steady`).
    pub phase: &'static str,
    /// Wall-clock seconds the phase ran.
    pub secs: f64,
    /// Sustained reader throughput during the phase (million packets
    /// per second, all readers combined).
    pub mpps: f64,
    /// Updates applied during the phase.
    pub updates: usize,
    /// Published epoch at phase end.
    pub epoch: u64,
    /// Cumulative rebuilds at phase end.
    pub rebuilds: u64,
    /// Cumulative adopted retrains at phase end.
    pub retrains: u64,
    /// Served worst-case depth (Eq. 1) at phase end.
    pub depth: usize,
    /// Bytes per rule at phase end.
    pub bytes_per_rule: f64,
    /// Overlay length at phase end.
    pub overlay: usize,
}

/// What a [`churn_retrain_timeline`] run produced.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// The measured phases, in order.
    pub phases: Vec<PhaseRow>,
    /// Differential checks that found a divergence (must be 0).
    pub divergences: usize,
    /// Differential checks run.
    pub checks: usize,
    /// Updates the handle's admission control refused during the churn
    /// phase (duplicate draws, overlay backpressure races) — normal
    /// operation, reported so harnesses can account for every step.
    pub rejected: u64,
}

/// Knobs for [`churn_retrain_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Updates to apply during the churn phase.
    pub updates: usize,
    /// Reader threads serving throughout.
    pub readers: usize,
    /// Mpps measurement window for the quiet phases (milliseconds).
    pub measure_ms: u64,
    /// Seed for the churn schedule.
    pub schedule_seed: u64,
    /// Run a differential check every this many updates (0 = only at
    /// phase boundaries).
    pub check_every: usize,
    /// Optional fault injector shared with the worker: the churn phase
    /// evaluates [`dtree::FaultPoint::UpdateBurst`] at every step so a
    /// CLI `--fault-schedule` reaches the update side too.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            updates: 200,
            readers: 2,
            measure_ms: 300,
            schedule_seed: 7,
            check_every: 64,
            faults: None,
        }
    }
}

/// The shared churn-then-retrain harness behind `lifecycle-bench` and
/// `bench_lifecycle`: measure a baseline, apply churn under concurrent
/// readers, let the worker retrain and hot-swap while readers keep
/// serving, then measure the steady state — with a differential
/// certification ([`find_rebuild_divergence`]) at every checkpoint and
/// phase boundary.
///
/// The worker is polled *synchronously* after the churn phase so runs
/// are deterministic given (rules, seeds, config); [`LifecycleWorker::run`]
/// is the free-running alternative exercised by the soak test.
pub fn churn_retrain_timeline(
    handle: &ClassifierHandle,
    donors: &RuleSet,
    trace: &[Packet],
    worker: &mut LifecycleWorker,
    cfg: &TimelineConfig,
) -> TimelineReport {
    let mut phases = Vec::new();
    let mut divergences = 0usize;
    let mut checks = 0usize;
    let check = |handle: &ClassifierHandle, divergences: &mut usize, checks: &mut usize| {
        *checks += 1;
        if find_rebuild_divergence(handle, trace).is_some() {
            *divergences += 1;
        }
    };
    let row = |phase: &'static str, secs: f64, served: u64, updates: usize| {
        let stats = handle.stats();
        let tree_stats = handle.with_tree(TreeStats::compute);
        PhaseRow {
            phase,
            secs,
            mpps: served as f64 / secs.max(1e-9) / 1e6,
            updates,
            epoch: stats.epoch,
            rebuilds: stats.rebuilds,
            retrains: stats.retrains,
            depth: tree_stats.time,
            bytes_per_rule: tree_stats.bytes_per_rule,
            overlay: stats.overlay_len,
        }
    };

    // Phase 1: the freshly trained baseline.
    let started = Instant::now();
    let ((), served) = serve_during(handle, trace, cfg.readers, || {
        std::thread::sleep(Duration::from_millis(cfg.measure_ms));
    });
    check(handle, &mut divergences, &mut checks);
    phases.push(row("baseline", started.elapsed().as_secs_f64(), served, 0));

    // Phase 2: churn under concurrent readers.
    let mut schedule = ChurnSchedule::new(
        donors.rules().to_vec(),
        (0..handle.stats().active_rules).collect(),
        cfg.schedule_seed,
    );
    if let Some(faults) = &cfg.faults {
        schedule = schedule.with_faults(faults.clone());
    }
    let started = Instant::now();
    let (_, served) = serve_during(handle, trace, cfg.readers, || {
        for i in 0..cfg.updates {
            schedule.step(handle);
            if cfg.check_every > 0 && (i + 1) % cfg.check_every == 0 {
                check(handle, &mut divergences, &mut checks);
            }
        }
    });
    check(handle, &mut divergences, &mut checks);
    phases.push(row("churn", started.elapsed().as_secs_f64(), served, cfg.updates));

    // Phase 3: the background retrain — readers serve the old epoch
    // while the worker trains, verifies, and swaps. Under fault
    // injection one poll is not enough: failed attempts back off and
    // retry, so poll until the worker either publishes (adopt or
    // fallback rebuild) or genuinely has nothing left to do.
    let started = Instant::now();
    let (_, served) = serve_during(handle, trace, cfg.readers, || loop {
        let published = worker.poll(handle, trace).map(|e| e.adopted || e.fallback_rebuild);
        match published {
            Some(true) => break, // adopted, or degraded via fallback rebuild
            Some(false) => {}    // failed or skipped attempt: pace set by backoff
            None if !worker.in_backoff() => break, // trigger quiet, nothing pending
            None => {}
        }
        std::thread::sleep(Duration::from_millis(1));
    });
    check(handle, &mut divergences, &mut checks);
    phases.push(row("retrain", started.elapsed().as_secs_f64(), served, 0));

    // Phase 4: steady state on the retrained tree.
    let started = Instant::now();
    let ((), served) = serve_during(handle, trace, cfg.readers, || {
        std::thread::sleep(Duration::from_millis(cfg.measure_ms));
    });
    check(handle, &mut divergences, &mut checks);
    phases.push(row("steady", started.elapsed().as_secs_f64(), served, 0));

    TimelineReport { phases, divergences, checks, rejected: schedule.rejected() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
    };
    use dtree::RebuildPolicy;

    fn served_handle(seed: u64) -> (ClassifierHandle, RuleSet) {
        let rules =
            generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(seed));
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstIp, 4);
            }
        }
        (ClassifierHandle::new(tree, RebuildPolicy::default_policy()), rules)
    }

    #[test]
    fn trigger_gates_on_updates_then_fires_on_churn_or_drift() {
        let t = RetrainTrigger { min_churn: 0.25, min_updates: 10, max_drift: 1.5 };
        assert!(!t.fires(9, 9.0, 9.0), "min_updates must gate everything");
        assert!(!t.fires(10, 0.1, 1.0), "neither signal past threshold");
        assert!(t.fires(10, 0.25, 1.0), "churn alone fires");
        assert!(t.fires(10, 0.0, 1.5), "drift alone fires");
    }

    #[test]
    fn worker_holds_until_enough_churn_accumulates() {
        let (handle, rules) = served_handle(60);
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.3, min_updates: 16, max_drift: 100.0 };
        let mut worker = LifecycleWorker::new(cfg, &handle);
        let trace = generate_trace(&rules, &TraceConfig::new(64).with_seed(61));
        assert!(worker.poll(&handle, &trace).is_none(), "no churn yet");
        for i in 0..8 {
            handle.insert(classbench::Rule::default_rule(200_000 + i)).unwrap();
        }
        assert!(worker.poll(&handle, &trace).is_none(), "below min_updates");
        assert_eq!(worker.retrains(), 0);
    }

    #[test]
    fn worker_retrains_verifies_and_swaps() {
        let (handle, rules) = served_handle(62);
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.max_retrains = 1;
        let mut worker = LifecycleWorker::new(cfg, &handle);
        let trace = generate_trace(&rules, &TraceConfig::new(256).with_seed(63));
        let mut schedule =
            ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 64);
        for _ in 0..60 {
            schedule.step(&handle);
        }
        let epoch_before = handle.epoch();
        let event = worker.poll(&handle, &trace).expect("trigger fires").clone();
        assert!(event.adopted, "retrained tree must be adopted: {:?}", event.skipped);
        assert!(event.timesteps > 0);
        assert!(event.churn >= 0.2);
        assert_eq!(event.train_seed, NeuroCutsConfig::smoke_test().seed.wrapping_add(1));
        let stats = handle.stats();
        assert_eq!(stats.retrains, 1);
        assert!(handle.epoch() > epoch_before);
        assert_eq!(stats.overlay_len, 0, "the swap folds the overlay");
        assert_eq!(stats.log.total(), 0, "the swap resets the churn log");
        // Published state is certified against a from-scratch recompile.
        assert_eq!(find_rebuild_divergence(&handle, &trace), None);
        // The cap holds: no further retrains even under more churn.
        for _ in 0..60 {
            schedule.step(&handle);
        }
        assert!(worker.poll(&handle, &trace).is_none(), "max_retrains reached");
    }

    #[test]
    fn worker_skips_degenerate_snapshots_without_spinning() {
        // 6 rules < smoke binth: NothingToLearn. The worker must record
        // the skip and re-baseline instead of retrying every poll.
        let rules =
            RuleSet::from_ordered((0..6).map(|_| classbench::Rule::default_rule(0)).collect());
        let tree = DecisionTree::new(&rules);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.5, min_updates: 4, max_drift: 100.0 };
        let mut worker = LifecycleWorker::new(cfg, &handle);
        for i in 0..6 {
            handle.insert(classbench::Rule::default_rule(10 + i)).unwrap();
        }
        let event = worker.poll(&handle, &[]).expect("trigger fires").clone();
        assert!(!event.adopted);
        assert!(event.skipped.is_some(), "degenerate snapshot surfaces as a skip");
        assert!(worker.poll(&handle, &[]).is_none(), "re-baselined: no hot loop");
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let retry = RetryPolicy {
            max_failures: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            attempt_deadline: Duration::from_secs(60),
        };
        assert_eq!(retry.backoff_after(0), Duration::ZERO);
        assert_eq!(retry.backoff_after(1), Duration::from_millis(100));
        assert_eq!(retry.backoff_after(2), Duration::from_millis(200));
        assert_eq!(retry.backoff_after(3), Duration::from_millis(400));
        assert_eq!(retry.backoff_after(4), Duration::from_millis(800));
        assert_eq!(retry.backoff_after(5), Duration::from_secs(1), "capped");
        assert_eq!(retry.backoff_after(60), Duration::from_secs(1), "shift is clamped");
    }

    /// Churn the handle past the worker's trigger threshold.
    fn churn_past_trigger(handle: &ClassifierHandle, rules: &RuleSet, seed: u64, steps: usize) {
        let mut schedule =
            ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), seed);
        for _ in 0..steps {
            schedule.step(handle);
        }
    }

    #[test]
    fn injected_panic_is_isolated_and_retried_with_backoff() {
        let (handle, rules) = served_handle(70);
        let schedule = dtree::FaultSchedule::empty().arm(dtree::FaultPoint::RetrainPanic, 0);
        let faults = Arc::new(schedule.injector());
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.retry = RetryPolicy {
            max_failures: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            attempt_deadline: Duration::from_secs(60),
        };
        cfg.faults = Some(faults.clone());
        let mut worker = LifecycleWorker::new(cfg, &handle);
        churn_past_trigger(&handle, &rules, 71, 60);
        let trace = generate_trace(&rules, &TraceConfig::new(64).with_seed(72));

        let epoch_before = handle.epoch();
        let event = worker.poll(&handle, &trace).expect("attempt runs").clone();
        assert!(!event.adopted);
        assert!(
            event.skipped.as_deref().unwrap_or("").contains("injected retrain panic"),
            "skipped = {:?}",
            event.skipped
        );
        assert_eq!(event.failures_after, 1);
        assert!(!event.degraded, "one failure is below the degradation bound");
        assert_eq!(handle.epoch(), epoch_before, "a failed attempt publishes nothing");
        assert_eq!(faults.fired(dtree::FaultPoint::RetrainPanic), 1);
        // The failure is mirrored into the handle's health report.
        let health = handle.health();
        assert_eq!(health.consecutive_failures, 1);
        assert!(health.last_error.as_deref().unwrap_or("").contains("panicked"));
        // Backoff gates the next poll...
        assert!(worker.in_backoff());
        assert!(worker.poll(&handle, &trace).is_none(), "backoff holds the trigger");
        std::thread::sleep(Duration::from_millis(15));
        // ...and once it expires the retry succeeds (occurrence 1 of
        // the panic point is not armed) and clears the failure state.
        let event = worker.poll(&handle, &trace).expect("retry runs").clone();
        assert!(event.adopted, "retry must succeed: {:?}", event.skipped);
        assert_eq!(event.failures_after, 0);
        assert!(!worker.health().degraded);
        assert_eq!(handle.health().consecutive_failures, 0);
        assert_eq!(find_rebuild_divergence(&handle, &trace), None);
    }

    #[test]
    fn repeated_failures_degrade_to_heuristic_rebuild_then_recover() {
        let (handle, rules) = served_handle(74);
        let mut schedule = dtree::FaultSchedule::empty();
        for occ in 0..3 {
            schedule = schedule.arm(dtree::FaultPoint::RetrainPanic, occ);
        }
        let faults = Arc::new(schedule.injector());
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.retry = RetryPolicy {
            max_failures: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            attempt_deadline: Duration::from_secs(60),
        };
        cfg.faults = Some(faults);
        let mut worker = LifecycleWorker::new(cfg, &handle);
        churn_past_trigger(&handle, &rules, 75, 60);
        let trace = generate_trace(&rules, &TraceConfig::new(64).with_seed(76));

        let mut fallback_seen = false;
        for want_failures in 1..=3u64 {
            while worker.in_backoff() {
                std::thread::sleep(Duration::from_millis(1));
            }
            let event = worker.poll(&handle, &trace).expect("attempt runs").clone();
            assert!(!event.adopted);
            assert_eq!(event.failures_after, want_failures);
            if want_failures == 3 {
                assert!(event.fallback_rebuild, "3rd failure crosses the bound");
                assert!(event.degraded);
                fallback_seen = true;
            }
        }
        assert!(fallback_seen);
        // Degradation kept serving fresh: the fallback folded the
        // overlay and reset the churn log deterministically.
        assert_eq!(handle.stats().overlay_len, 0);
        assert!(handle.health().degraded);
        assert_eq!(find_rebuild_divergence(&handle, &trace), None);
        // The baseline was kept, so the trigger re-fires after the
        // backoff; the 4th attempt (no fault armed) succeeds and
        // clears the degraded flag.
        while worker.in_backoff() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let event = worker.poll(&handle, &trace).expect("recovery attempt").clone();
        assert!(event.adopted, "recovery retrain must adopt: {:?}", event.skipped);
        assert!(!event.degraded, "success clears the degraded flag");
        assert!(!handle.health().degraded);
        assert_eq!(handle.health().consecutive_failures, 0);
    }

    #[test]
    fn slow_retrain_times_out_without_publishing() {
        let (handle, rules) = served_handle(78);
        let schedule = dtree::FaultSchedule::empty().arm(dtree::FaultPoint::RetrainSlow, 0);
        let faults = Arc::new(schedule.injector());
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.retry = RetryPolicy {
            max_failures: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            attempt_deadline: Duration::from_millis(20),
        };
        cfg.faults = Some(faults);
        let mut worker = LifecycleWorker::new(cfg, &handle);
        churn_past_trigger(&handle, &rules, 79, 60);
        let trace = generate_trace(&rules, &TraceConfig::new(64).with_seed(80));
        let epoch_before = handle.epoch();
        let event = worker.poll(&handle, &trace).expect("attempt runs").clone();
        assert!(!event.adopted);
        assert!(event.skipped.as_deref().unwrap_or("").contains("deadline"));
        assert_eq!(event.failures_after, 1);
        assert_eq!(handle.epoch(), epoch_before, "a timed-out attempt publishes nothing");
    }

    #[test]
    fn corrupted_template_is_caught_by_the_spot_check() {
        let (handle, rules) = served_handle(82);
        let schedule = dtree::FaultSchedule::empty().arm(dtree::FaultPoint::AdoptCorruption, 0);
        let faults = Arc::new(schedule.injector());
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.retry.base_backoff = Duration::from_millis(1);
        cfg.retry.max_backoff = Duration::from_millis(4);
        cfg.faults = Some(faults);
        let mut worker = LifecycleWorker::new(cfg, &handle);
        churn_past_trigger(&handle, &rules, 83, 60);
        // Even with an EMPTY caller trace the sabotage cannot slip
        // through: the worker's own low-corner probes cover every
        // snapshot rule, including the one the corruption dropped.
        let epoch_before = handle.epoch();
        let event = worker.poll(&handle, &[]).expect("attempt runs").clone();
        assert!(!event.adopted);
        assert!(event.skipped.as_deref().unwrap_or("").contains("adopt"), "{:?}", event.skipped);
        assert_eq!(handle.epoch(), epoch_before, "a refused adoption publishes nothing");
        assert_eq!(handle.stats().retrains, 0);
    }

    #[test]
    fn timeline_runs_all_phases_and_stays_certified() {
        let (handle, rules) = served_handle(65);
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.max_retrains = 1;
        let mut worker = LifecycleWorker::new(cfg, &handle);
        let trace = generate_trace(&rules, &TraceConfig::new(128).with_seed(66));
        let tl_cfg = TimelineConfig {
            updates: 60,
            readers: 1,
            measure_ms: 20,
            schedule_seed: 67,
            check_every: 20,
            faults: None,
        };
        let report = churn_retrain_timeline(&handle, &rules, &trace, &mut worker, &tl_cfg);
        assert_eq!(report.phases.len(), 4);
        assert_eq!(report.divergences, 0, "every checkpoint certified");
        assert!(report.checks >= 4);
        let retrain = &report.phases[2];
        assert_eq!(retrain.phase, "retrain");
        assert_eq!(retrain.retrains, 1, "the timeline's poll must adopt");
        assert_eq!(report.phases[3].overlay, 0);
    }
}
