//! The classifier lifecycle: close the churn → retrain → hot-swap loop.
//!
//! PR 3's live-update path keeps serving *correct* matches under churn,
//! but the served tree's **shape** was chosen by the RL optimiser for a
//! rule set that no longer exists: rebuilds re-flatten the mutated tree
//! without ever re-running the optimiser, so depth and Mpps silently
//! degrade the longer a classifier lives. This module is the missing
//! control loop (cf. Chameleon's runtime reconfiguration pattern:
//! reconfigure in the background, verify continuously, swap invisibly):
//!
//! 1. **Watch** — a [`LifecycleWorker`] polls the handle's lifetime
//!    update counters (churn since the last baseline) and a cheap tree-
//!    quality drift signal (worst-case depth × bytes/rule vs. the
//!    post-train baseline, [`drift_signal`]).
//! 2. **Trigger** — a [`RetrainTrigger`] decides when accumulated churn
//!    or quality drift warrants a retrain (with a `min_updates` gate so
//!    small classifiers don't thrash).
//! 3. **Retrain** — the worker freezes the current rule set
//!    ([`dtree::ClassifierHandle::rule_snapshot`]), trains a fresh
//!    policy on the side via [`Trainer`] + the vectorised collector,
//!    and extracts the best tree ([`Trainer::train_to_tree`]). Readers
//!    keep serving the old epoch throughout.
//! 4. **Verify + swap** — [`dtree::ClassifierHandle::adopt`] grafts the
//!    winner into the live id space, reconciles updates that landed
//!    mid-retrain, spot-checks the graft against the linear-scan ground
//!    truth, and publishes one new epoch — folding the overlay and
//!    resetting the churn log atomically. A failed spot check abandons
//!    the swap with the serving state untouched.
//!
//! The [`churn_retrain_timeline`] driver at the bottom is the shared
//! harness behind the CLI `lifecycle-bench` subcommand and the
//! `bench_lifecycle` JSON emitter, so the two entry points measure the
//! same loop instead of carrying diverging copies.

use crate::config::NeuroCutsConfig;
use crate::trainer::{TrainError, Trainer};
use classbench::{Packet, RuleSet};
use dtree::{
    find_rebuild_divergence, serve_during, ChurnSchedule, ClassifierHandle, DecisionTree, TreeStats,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When accumulated churn or quality drift warrants a background
/// retrain (the lifecycle analogue of `dtree`'s `RebuildPolicy`, one
/// level up: a rebuild re-flattens the mutated tree, a retrain re-runs
/// the optimiser that chose its shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainTrigger {
    /// Retrain when updates since the last baseline reach this
    /// fraction of the active rules.
    pub min_churn: f64,
    /// Never retrain before this many updates since the baseline, so
    /// small classifiers don't retrain on every handful of updates.
    pub min_updates: usize,
    /// Retrain regardless of churn when the quality signal
    /// ([`drift_signal`]) grows past this ratio of the baseline.
    pub max_drift: f64,
}

impl RetrainTrigger {
    /// Retrain at 25% churn (or 1.5× quality drift), not before 32
    /// updates.
    pub fn default_trigger() -> Self {
        RetrainTrigger { min_churn: 0.25, min_updates: 32, max_drift: 1.5 }
    }

    /// True when the accumulated signals warrant a retrain.
    pub fn fires(&self, updates_since: usize, churn: f64, drift: f64) -> bool {
        updates_since >= self.min_updates && (churn >= self.min_churn || drift >= self.max_drift)
    }
}

impl Default for RetrainTrigger {
    fn default() -> Self {
        Self::default_trigger()
    }
}

/// The cheap tree-quality signal the worker watches: worst-case
/// classification depth (Eq. 1) × bytes per rule. Depth is fixed by the
/// structure while churn only mutates leaves, so the product moves with
/// the rule count and leaf occupancy — exactly the "shape chosen for a
/// rule set that no longer exists" drift a rebuild cannot fix.
pub fn drift_signal(stats: &TreeStats) -> f64 {
    stats.time as f64 * stats.bytes_per_rule.max(1.0)
}

/// Everything a [`LifecycleWorker`] needs to run.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// When to retrain.
    pub trigger: RetrainTrigger,
    /// Training budget and hyperparameters for each background retrain.
    /// Each retrain `k` uses `train.seed + k`, recorded per event, so
    /// every swap is reproducible from its snapshot alone.
    pub train: NeuroCutsConfig,
    /// Stop after this many retrain attempts (0 = unlimited).
    pub max_retrains: usize,
}

impl LifecycleConfig {
    /// A worker around the given training config with the default
    /// trigger and no retrain cap.
    pub fn new(train: NeuroCutsConfig) -> Self {
        LifecycleConfig { trigger: RetrainTrigger::default_trigger(), train, max_retrains: 0 }
    }
}

/// One retrain attempt, adopted or skipped. Carries the frozen snapshot
/// and seed so any published epoch can be re-derived from scratch
/// (retrain the snapshot with the same seed, graft, compare) — the
/// reproducibility claim the soak test pins.
#[derive(Debug, Clone)]
pub struct LifecycleEvent {
    /// Epoch after the swap (the pre-attempt epoch when skipped).
    pub epoch: u64,
    /// The rule set the retrain saw (frozen at trigger time).
    pub snapshot_rules: RuleSet,
    /// The exact seed this retrain trained with.
    pub train_seed: u64,
    /// Churn fraction since the baseline at trigger time.
    pub churn: f64,
    /// Quality-drift ratio vs. the baseline at trigger time.
    pub drift: f64,
    /// Environment timesteps the retrain consumed.
    pub timesteps: usize,
    /// Wall-clock seconds spent training (readers served throughout).
    pub train_secs: f64,
    /// Stats of the trained template *before* grafting — re-deriving
    /// them from `snapshot_rules` + `train_seed` must reproduce this
    /// exactly (the trainer is deterministic), which is how the soak
    /// test certifies every published epoch. `None` when training was
    /// skipped.
    pub template_stats: Option<TreeStats>,
    /// Served worst-case depth before the swap.
    pub depth_before: usize,
    /// Served worst-case depth after the swap (unchanged when skipped).
    pub depth_after: usize,
    /// Bytes per rule after the swap.
    pub bytes_per_rule_after: f64,
    /// Post-snapshot inserts the swap reconciled.
    pub reconciled_inserts: usize,
    /// Post-snapshot deletes the swap reconciled.
    pub reconciled_deletes: usize,
    /// Packets the pre-publish linear-scan spot check verified.
    pub spot_checked: usize,
    /// True when the retrained tree was published.
    pub adopted: bool,
    /// Why the attempt did not publish (degenerate rule set, failed
    /// spot check, ...). `None` when adopted.
    pub skipped: Option<String>,
}

/// Everything a worker did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct LifecycleReport {
    /// One entry per retrain attempt, in order.
    pub events: Vec<LifecycleEvent>,
    /// Trigger polls evaluated.
    pub polls: usize,
    /// Retrain attempts (adopted + skipped).
    pub retrains: usize,
}

impl LifecycleReport {
    /// Retrains that actually published a new tree.
    pub fn adopted(&self) -> usize {
        self.events.iter().filter(|e| e.adopted).count()
    }
}

/// The off-hot-path self-optimisation worker (module docs). Drive it
/// synchronously with [`Self::poll`] (deterministic harnesses) or hand
/// it a thread via [`Self::run`].
#[derive(Debug)]
pub struct LifecycleWorker {
    cfg: LifecycleConfig,
    baseline_updates: usize,
    baseline_signal: f64,
    polls: usize,
    retrains: usize,
    events: Vec<LifecycleEvent>,
}

impl LifecycleWorker {
    /// Attach a worker to a handle: the current tree becomes the
    /// quality baseline and churn starts counting from now.
    pub fn new(cfg: LifecycleConfig, handle: &ClassifierHandle) -> Self {
        let stats = handle.with_tree(TreeStats::compute);
        LifecycleWorker {
            cfg,
            baseline_updates: handle.stats().lifetime_updates(),
            baseline_signal: drift_signal(&stats),
            polls: 0,
            retrains: 0,
            events: Vec::new(),
        }
    }

    /// Retrain attempts so far (adopted + skipped).
    pub fn retrains(&self) -> usize {
        self.retrains
    }

    /// The attempts recorded so far.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// Evaluate the trigger once and, when it fires, run one full
    /// retrain → verify → swap cycle on the calling thread (readers
    /// keep serving the old epoch throughout; updates only pause for
    /// the final graft + compile). Returns the recorded event when an
    /// attempt ran, `None` when the trigger held.
    ///
    /// `spot_check` is the trace the pre-publish verification classifies
    /// through both the grafted tree and the linear-scan ground truth.
    pub fn poll(
        &mut self,
        handle: &ClassifierHandle,
        spot_check: &[Packet],
    ) -> Option<&LifecycleEvent> {
        self.polls += 1;
        if self.cfg.max_retrains > 0 && self.retrains >= self.cfg.max_retrains {
            return None;
        }
        let stats = handle.stats();
        let updates_since = stats.lifetime_updates().saturating_sub(self.baseline_updates);
        let churn = updates_since as f64 / stats.active_rules.max(1) as f64;
        let tree_stats = handle.with_tree(TreeStats::compute);
        let drift = drift_signal(&tree_stats) / self.baseline_signal.max(f64::MIN_POSITIVE);
        if !self.cfg.trigger.fires(updates_since, churn, drift) {
            return None;
        }

        self.retrains += 1;
        let snap = handle.rule_snapshot();
        let seed = self.cfg.train.seed.wrapping_add(self.retrains as u64);
        let mut event = LifecycleEvent {
            epoch: stats.epoch,
            snapshot_rules: snap.rules().clone(),
            train_seed: seed,
            churn,
            drift,
            timesteps: 0,
            train_secs: 0.0,
            template_stats: None,
            depth_before: tree_stats.time,
            depth_after: tree_stats.time,
            bytes_per_rule_after: tree_stats.bytes_per_rule,
            reconciled_inserts: 0,
            reconciled_deletes: 0,
            spot_checked: 0,
            adopted: false,
            skipped: None,
        };
        let started = Instant::now();
        match retrain_snapshot(snap.rules(), &self.cfg.train, seed) {
            Err(err) => event.skipped = Some(err.to_string()),
            Ok((tree, template_stats, timesteps)) => {
                event.timesteps = timesteps;
                event.train_secs = started.elapsed().as_secs_f64();
                event.template_stats = Some(template_stats);
                match handle.adopt(&tree, &snap, spot_check) {
                    Err(err) => event.skipped = Some(err.to_string()),
                    Ok(report) => {
                        event.adopted = true;
                        event.epoch = report.epoch;
                        event.reconciled_inserts = report.reconciled_inserts;
                        event.reconciled_deletes = report.reconciled_deletes;
                        event.spot_checked = report.spot_checked;
                        let after = handle.with_tree(TreeStats::compute);
                        event.depth_after = after.time;
                        event.bytes_per_rule_after = after.bytes_per_rule;
                    }
                }
            }
        }
        // Re-baseline from the post-attempt state (also after a skip:
        // retrying the same degenerate snapshot every poll would spin).
        self.baseline_updates = handle.stats().lifetime_updates();
        self.baseline_signal = drift_signal(&handle.with_tree(TreeStats::compute));
        self.events.push(event);
        self.events.last()
    }

    /// Run as a background worker: poll every `interval` until `stop`
    /// is set, then return the full report. Spawn on its own thread
    /// (e.g. `std::thread::scope`) next to readers and updaters.
    pub fn run(
        mut self,
        handle: &ClassifierHandle,
        spot_check: &[Packet],
        stop: &AtomicBool,
        interval: Duration,
    ) -> LifecycleReport {
        while !stop.load(Ordering::Relaxed) {
            self.poll(handle, spot_check);
            // Sleep in small slices so a stop request isn't stuck
            // behind a long interval.
            let mut left = interval;
            while !left.is_zero() && !stop.load(Ordering::Relaxed) {
                let step = left.min(Duration::from_millis(5));
                std::thread::sleep(step);
                left = left.saturating_sub(step);
            }
        }
        // One drain poll, so churn that accumulated since the last
        // tick is not silently dropped at shutdown (a replay shorter
        // than one interval would otherwise never trigger).
        self.poll(handle, spot_check);
        self.into_report()
    }

    /// Consume the worker into its report.
    pub fn into_report(self) -> LifecycleReport {
        LifecycleReport { events: self.events, polls: self.polls, retrains: self.retrains }
    }
}

/// Retrain on a frozen rule-set snapshot: train with `cfg` reseeded to
/// `seed`, and return the tree to deploy plus its stats and the
/// timesteps consumed. Deterministic for a fixed (rules, cfg, seed) —
/// the soak test re-derives published epochs through this exact entry
/// point, from nothing but a [`LifecycleEvent`]'s `snapshot_rules` and
/// `train_seed`.
pub fn retrain_snapshot(
    rules: &RuleSet,
    cfg: &NeuroCutsConfig,
    seed: u64,
) -> Result<(Arc<DecisionTree>, TreeStats, usize), TrainError> {
    let mut cfg = cfg.clone();
    cfg.seed = seed;
    let mut trainer = Trainer::new(rules.clone(), cfg)?;
    trainer.train_to_tree()
}

/// One measured phase of a [`churn_retrain_timeline`] run.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name (`baseline`, `churn`, `retrain`, `steady`).
    pub phase: &'static str,
    /// Wall-clock seconds the phase ran.
    pub secs: f64,
    /// Sustained reader throughput during the phase (million packets
    /// per second, all readers combined).
    pub mpps: f64,
    /// Updates applied during the phase.
    pub updates: usize,
    /// Published epoch at phase end.
    pub epoch: u64,
    /// Cumulative rebuilds at phase end.
    pub rebuilds: u64,
    /// Cumulative adopted retrains at phase end.
    pub retrains: u64,
    /// Served worst-case depth (Eq. 1) at phase end.
    pub depth: usize,
    /// Bytes per rule at phase end.
    pub bytes_per_rule: f64,
    /// Overlay length at phase end.
    pub overlay: usize,
}

/// What a [`churn_retrain_timeline`] run produced.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// The measured phases, in order.
    pub phases: Vec<PhaseRow>,
    /// Differential checks that found a divergence (must be 0).
    pub divergences: usize,
    /// Differential checks run.
    pub checks: usize,
}

/// Knobs for [`churn_retrain_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Updates to apply during the churn phase.
    pub updates: usize,
    /// Reader threads serving throughout.
    pub readers: usize,
    /// Mpps measurement window for the quiet phases (milliseconds).
    pub measure_ms: u64,
    /// Seed for the churn schedule.
    pub schedule_seed: u64,
    /// Run a differential check every this many updates (0 = only at
    /// phase boundaries).
    pub check_every: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            updates: 200,
            readers: 2,
            measure_ms: 300,
            schedule_seed: 7,
            check_every: 64,
        }
    }
}

/// The shared churn-then-retrain harness behind `lifecycle-bench` and
/// `bench_lifecycle`: measure a baseline, apply churn under concurrent
/// readers, let the worker retrain and hot-swap while readers keep
/// serving, then measure the steady state — with a differential
/// certification ([`find_rebuild_divergence`]) at every checkpoint and
/// phase boundary.
///
/// The worker is polled *synchronously* after the churn phase so runs
/// are deterministic given (rules, seeds, config); [`LifecycleWorker::run`]
/// is the free-running alternative exercised by the soak test.
pub fn churn_retrain_timeline(
    handle: &ClassifierHandle,
    donors: &RuleSet,
    trace: &[Packet],
    worker: &mut LifecycleWorker,
    cfg: &TimelineConfig,
) -> TimelineReport {
    let mut phases = Vec::new();
    let mut divergences = 0usize;
    let mut checks = 0usize;
    let check = |handle: &ClassifierHandle, divergences: &mut usize, checks: &mut usize| {
        *checks += 1;
        if find_rebuild_divergence(handle, trace).is_some() {
            *divergences += 1;
        }
    };
    let row = |phase: &'static str, secs: f64, served: u64, updates: usize| {
        let stats = handle.stats();
        let tree_stats = handle.with_tree(TreeStats::compute);
        PhaseRow {
            phase,
            secs,
            mpps: served as f64 / secs.max(1e-9) / 1e6,
            updates,
            epoch: stats.epoch,
            rebuilds: stats.rebuilds,
            retrains: stats.retrains,
            depth: tree_stats.time,
            bytes_per_rule: tree_stats.bytes_per_rule,
            overlay: stats.overlay_len,
        }
    };

    // Phase 1: the freshly trained baseline.
    let started = Instant::now();
    let ((), served) = serve_during(handle, trace, cfg.readers, || {
        std::thread::sleep(Duration::from_millis(cfg.measure_ms));
    });
    check(handle, &mut divergences, &mut checks);
    phases.push(row("baseline", started.elapsed().as_secs_f64(), served, 0));

    // Phase 2: churn under concurrent readers.
    let mut schedule = ChurnSchedule::new(
        donors.rules().to_vec(),
        (0..handle.stats().active_rules).collect(),
        cfg.schedule_seed,
    );
    let started = Instant::now();
    let (_, served) = serve_during(handle, trace, cfg.readers, || {
        for i in 0..cfg.updates {
            schedule.step(handle);
            if cfg.check_every > 0 && (i + 1) % cfg.check_every == 0 {
                check(handle, &mut divergences, &mut checks);
            }
        }
    });
    check(handle, &mut divergences, &mut checks);
    phases.push(row("churn", started.elapsed().as_secs_f64(), served, cfg.updates));

    // Phase 3: the background retrain — readers serve the old epoch
    // while the worker trains, verifies, and swaps.
    let started = Instant::now();
    let (_, served) =
        serve_during(handle, trace, cfg.readers, || worker.poll(handle, trace).is_some());
    check(handle, &mut divergences, &mut checks);
    phases.push(row("retrain", started.elapsed().as_secs_f64(), served, 0));

    // Phase 4: steady state on the retrained tree.
    let started = Instant::now();
    let ((), served) = serve_during(handle, trace, cfg.readers, || {
        std::thread::sleep(Duration::from_millis(cfg.measure_ms));
    });
    check(handle, &mut divergences, &mut checks);
    phases.push(row("steady", started.elapsed().as_secs_f64(), served, 0));

    TimelineReport { phases, divergences, checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, GeneratorConfig, TraceConfig,
    };
    use dtree::RebuildPolicy;

    fn served_handle(seed: u64) -> (ClassifierHandle, RuleSet) {
        let rules =
            generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(seed));
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstIp, 4);
            }
        }
        (ClassifierHandle::new(tree, RebuildPolicy::default_policy()), rules)
    }

    #[test]
    fn trigger_gates_on_updates_then_fires_on_churn_or_drift() {
        let t = RetrainTrigger { min_churn: 0.25, min_updates: 10, max_drift: 1.5 };
        assert!(!t.fires(9, 9.0, 9.0), "min_updates must gate everything");
        assert!(!t.fires(10, 0.1, 1.0), "neither signal past threshold");
        assert!(t.fires(10, 0.25, 1.0), "churn alone fires");
        assert!(t.fires(10, 0.0, 1.5), "drift alone fires");
    }

    #[test]
    fn worker_holds_until_enough_churn_accumulates() {
        let (handle, rules) = served_handle(60);
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.3, min_updates: 16, max_drift: 100.0 };
        let mut worker = LifecycleWorker::new(cfg, &handle);
        let trace = generate_trace(&rules, &TraceConfig::new(64).with_seed(61));
        assert!(worker.poll(&handle, &trace).is_none(), "no churn yet");
        for i in 0..8 {
            handle.insert(classbench::Rule::default_rule(200_000 + i));
        }
        assert!(worker.poll(&handle, &trace).is_none(), "below min_updates");
        assert_eq!(worker.retrains(), 0);
    }

    #[test]
    fn worker_retrains_verifies_and_swaps() {
        let (handle, rules) = served_handle(62);
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.max_retrains = 1;
        let mut worker = LifecycleWorker::new(cfg, &handle);
        let trace = generate_trace(&rules, &TraceConfig::new(256).with_seed(63));
        let mut schedule =
            ChurnSchedule::new(rules.rules().to_vec(), (0..rules.len()).collect(), 64);
        for _ in 0..60 {
            schedule.step(&handle);
        }
        let epoch_before = handle.epoch();
        let event = worker.poll(&handle, &trace).expect("trigger fires").clone();
        assert!(event.adopted, "retrained tree must be adopted: {:?}", event.skipped);
        assert!(event.timesteps > 0);
        assert!(event.churn >= 0.2);
        assert_eq!(event.train_seed, NeuroCutsConfig::smoke_test().seed.wrapping_add(1));
        let stats = handle.stats();
        assert_eq!(stats.retrains, 1);
        assert!(handle.epoch() > epoch_before);
        assert_eq!(stats.overlay_len, 0, "the swap folds the overlay");
        assert_eq!(stats.log.total(), 0, "the swap resets the churn log");
        // Published state is certified against a from-scratch recompile.
        assert_eq!(find_rebuild_divergence(&handle, &trace), None);
        // The cap holds: no further retrains even under more churn.
        for _ in 0..60 {
            schedule.step(&handle);
        }
        assert!(worker.poll(&handle, &trace).is_none(), "max_retrains reached");
    }

    #[test]
    fn worker_skips_degenerate_snapshots_without_spinning() {
        // 6 rules < smoke binth: NothingToLearn. The worker must record
        // the skip and re-baseline instead of retrying every poll.
        let rules =
            RuleSet::from_ordered((0..6).map(|_| classbench::Rule::default_rule(0)).collect());
        let tree = DecisionTree::new(&rules);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.5, min_updates: 4, max_drift: 100.0 };
        let mut worker = LifecycleWorker::new(cfg, &handle);
        for i in 0..6 {
            handle.insert(classbench::Rule::default_rule(10 + i));
        }
        let event = worker.poll(&handle, &[]).expect("trigger fires").clone();
        assert!(!event.adopted);
        assert!(event.skipped.is_some(), "degenerate snapshot surfaces as a skip");
        assert!(worker.poll(&handle, &[]).is_none(), "re-baselined: no hot loop");
    }

    #[test]
    fn timeline_runs_all_phases_and_stays_certified() {
        let (handle, rules) = served_handle(65);
        let mut cfg = LifecycleConfig::new(NeuroCutsConfig::smoke_test());
        cfg.trigger = RetrainTrigger { min_churn: 0.2, min_updates: 16, max_drift: 100.0 };
        cfg.max_retrains = 1;
        let mut worker = LifecycleWorker::new(cfg, &handle);
        let trace = generate_trace(&rules, &TraceConfig::new(128).with_seed(66));
        let tl_cfg = TimelineConfig {
            updates: 60,
            readers: 1,
            measure_ms: 20,
            schedule_seed: 67,
            check_every: 20,
        };
        let report = churn_retrain_timeline(&handle, &rules, &trace, &mut worker, &tl_cfg);
        assert_eq!(report.phases.len(), 4);
        assert_eq!(report.divergences, 0, "every checkpoint certified");
        assert!(report.checks >= 4);
        let retrain = &report.phases[2];
        assert_eq!(retrain.phase, "retrain");
        assert_eq!(retrain.retrains, 1, "the timeline's poll must adopt");
        assert_eq!(report.phases[3].overlay, 0);
    }
}
