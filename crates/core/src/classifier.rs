//! NeuroCuts behind the unified [`Classifier`] boundary.
//!
//! The five hand-tuned baselines implement [`Classifier`] in
//! `baselines::classifier`; this module adds the sixth — and the
//! paper's actual contribution — by closing train → compile into one
//! constructor. [`NeuroCutsClassifier::train`] runs the PR 4/5
//! actor-learner pipeline ([`Trainer::train_to_tree`]), compiles the
//! best tree to the serving [`dtree::FlatTree`], and records build
//! (= training + compile) time, so sweeps measure all six algorithms
//! through one interface.
//!
//! Training itself stays deterministic for a fixed (rules, config):
//! wall-clock time enters only through the `baselines::classifier::
//! timed` measurement wrapper, never the training path.

use baselines::classifier::{timed, Classifier, ClassifierStats, CompiledClassifier};
use classbench::{Packet, RuleSet};
use dtree::{FlatTree, RuleId};

use crate::config::NeuroCutsConfig;
use crate::trainer::{TrainError, Trainer};

/// A trained NeuroCuts policy's best tree, compiled for serving.
#[derive(Debug, Clone)]
pub struct NeuroCutsClassifier(CompiledClassifier);

impl NeuroCutsClassifier {
    /// Train on `rules` under `config`, keep the best completed tree
    /// (greedy argmax fallback when every rollout truncated), and
    /// compile it. `stats().build_secs` covers training + compilation.
    ///
    /// Deterministic for a fixed (rules, config) — the same contract
    /// as [`Trainer::train_to_tree`].
    pub fn train(rules: &RuleSet, config: NeuroCutsConfig) -> Result<Self, TrainError> {
        let (built, build_secs) = timed(|| -> Result<_, TrainError> {
            let mut trainer = Trainer::new(rules.clone(), config)?;
            let (tree, _, _) = trainer.train_to_tree()?;
            let tree = (*tree).clone();
            let flat = FlatTree::compile(&tree);
            Ok((tree, flat))
        });
        let (tree, flat) = built?;
        Ok(NeuroCutsClassifier(CompiledClassifier::from_parts("NeuroCuts", tree, flat, build_secs)))
    }

    /// The shared compiled form (tree/flat/stats access).
    pub fn inner(&self) -> &CompiledClassifier {
        &self.0
    }

    /// Surrender the compiled form.
    pub fn into_inner(self) -> CompiledClassifier {
        self.0
    }
}

impl Classifier for NeuroCutsClassifier {
    /// Build with the seconds-scale [`NeuroCutsConfig::smoke_test`]
    /// budget — the trait-level default. Sweeps and production callers
    /// size their own budget via [`NeuroCutsClassifier::train`].
    fn build(rules: &RuleSet) -> NeuroCutsClassifier {
        NeuroCutsClassifier::train(rules, NeuroCutsConfig::smoke_test())
            .expect("trainable rule set")
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.0.classify(packet)
    }

    fn classify_batch(&self, packets: &[Packet], out: &mut [Option<RuleId>]) {
        self.0.classify_batch(packets, out)
    }

    fn stats(&self) -> &ClassifierStats {
        self.0.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, GeneratorConfig, TraceConfig,
    };

    #[test]
    fn trained_classifier_matches_linear_scan() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(21));
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(22));
        let c = NeuroCutsClassifier::build(&rules);
        assert_eq!(c.name(), "NeuroCuts");
        let mut batch = vec![None; trace.len()];
        c.classify_batch(&trace, &mut batch);
        for (i, p) in trace.iter().enumerate() {
            let scalar = c.classify(p);
            assert_eq!(scalar, rules.classify(p), "scalar at {p}");
            assert_eq!(batch[i], scalar, "batch at {p}");
        }
        let s = c.stats();
        assert!(s.depth() >= 1);
        assert!(s.build_secs > 0.0);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn train_is_deterministic_for_fixed_inputs() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 50).with_seed(23));
        let a = NeuroCutsClassifier::train(&rules, NeuroCutsConfig::smoke_test()).unwrap();
        let b = NeuroCutsClassifier::train(&rules, NeuroCutsConfig::smoke_test()).unwrap();
        assert_eq!(a.stats().tree, b.stats().tree);
    }

    #[test]
    fn empty_rule_set_is_a_typed_error() {
        let err = NeuroCutsClassifier::train(&RuleSet::default(), NeuroCutsConfig::smoke_test());
        assert!(err.is_err());
    }
}
