//! The two partition actions NeuroCuts can take at top nodes (§4):
//! *simple* single-dimension coverage-threshold partitions with a
//! learned threshold, and the *EffiCuts* partition heuristic.

use crate::actions::COVERAGE_LEVELS;
use crate::env::NodeMeta;
use classbench::Dim;
use dtree::{DecisionTree, NodeId, RuleId};

/// Outcome of a simple partition: the two rule subsets and the
/// coverage-window metadata their nodes will carry.
#[derive(Debug, Clone)]
pub struct SimpleSplit {
    /// Rules with coverage ≤ the threshold level ("small" side).
    pub small: Vec<RuleId>,
    /// Rules with coverage > the threshold level ("large" side).
    pub large: Vec<RuleId>,
    /// Metadata for the small child (window upper bound tightened).
    pub small_meta: NodeMeta,
    /// Metadata for the large child (window lower bound raised).
    pub large_meta: NodeMeta,
}

/// Plan a simple partition of node `id` at coverage `level` of `dim`.
///
/// Returns `None` when the level falls outside the node's current
/// coverage window for `dim` or either side would be empty — the
/// environment then falls back to a cut action.
pub fn plan_simple_partition(
    tree: &DecisionTree,
    id: NodeId,
    meta: &NodeMeta,
    dim: Dim,
    level: usize,
) -> Option<SimpleSplit> {
    let (lo, hi) = meta.coverage_window[dim.index()];
    if level <= lo as usize || level >= hi as usize {
        return None;
    }
    let threshold = COVERAGE_LEVELS[level];
    let (small, large): (Vec<RuleId>, Vec<RuleId>) =
        tree.rules_at(id).iter().partition(|&&r| tree.rule(r).largeness(dim) <= threshold);
    if small.is_empty() || large.is_empty() {
        return None;
    }
    let mut small_meta = *meta;
    small_meta.coverage_window[dim.index()] = (lo, level as u8);
    let mut large_meta = *meta;
    large_meta.coverage_window[dim.index()] = (level as u8, hi);
    Some(SimpleSplit { small, large, small_meta, large_meta })
}

/// Plan an EffiCuts partition of node `id`: the separable-tree grouping
/// of [`baselines::efficuts`], tagged with partition ids for the
/// observation encoding. Returns `None` when the rules all fall in one
/// group (nothing to partition).
pub fn plan_efficuts_partition(
    tree: &DecisionTree,
    id: NodeId,
    meta: &NodeMeta,
) -> Option<(Vec<Vec<RuleId>>, Vec<NodeMeta>)> {
    let groups = baselines::partition_by_largeness(tree, tree.rules_at(id), 0.5, 16);
    if groups.len() < 2 {
        return None;
    }
    let metas = (0..groups.len())
        .map(|i| {
            let mut m = *meta;
            m.efficuts_id = Some(i.min(255) as u8);
            // EffiCuts children are final partitions: no further
            // partitioning below them.
            m.top = false;
            m
        })
        .collect();
    Some((groups, metas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{generate_rules, ClassifierFamily, DimRange, GeneratorConfig, Rule, RuleSet};

    fn mixed_tree() -> DecisionTree {
        // Two wide rules (full SrcIp) and two narrow ones.
        let mut narrow1 = Rule::default_rule(3);
        narrow1.ranges[Dim::SrcIp.index()] = DimRange::new(0, 1 << 16);
        let mut narrow2 = Rule::default_rule(2);
        narrow2.ranges[Dim::SrcIp.index()] = DimRange::new(1 << 20, 1 << 21);
        let wide = Rule::default_rule(1);
        let rs = RuleSet::new(vec![narrow1, narrow2, wide, Rule::default_rule(0)]);
        DecisionTree::new(&rs)
    }

    #[test]
    fn simple_partition_separates_by_coverage() {
        let tree = mixed_tree();
        let meta = NodeMeta::root();
        // Level 4 = 16% coverage: narrow rules below, wildcards above.
        let split = plan_simple_partition(&tree, tree.root(), &meta, Dim::SrcIp, 4).unwrap();
        assert_eq!(split.small.len(), 2);
        assert_eq!(split.large.len(), 2);
        assert_eq!(split.small_meta.coverage_window[0], (0, 4));
        assert_eq!(split.large_meta.coverage_window[0], (4, 7));
        // Windows in other dimensions untouched.
        assert_eq!(split.small_meta.coverage_window[1], (0, 7));
    }

    #[test]
    fn simple_partition_rejects_empty_sides() {
        let tree = mixed_tree();
        let meta = NodeMeta::root();
        // Every rule is full-width in DstIp -> small side empty at any level.
        assert!(plan_simple_partition(&tree, tree.root(), &meta, Dim::DstIp, 3).is_none());
    }

    #[test]
    fn simple_partition_respects_window() {
        let tree = mixed_tree();
        let mut meta = NodeMeta::root();
        meta.coverage_window[Dim::SrcIp.index()] = (2, 5);
        assert!(plan_simple_partition(&tree, tree.root(), &meta, Dim::SrcIp, 2).is_none());
        assert!(plan_simple_partition(&tree, tree.root(), &meta, Dim::SrcIp, 5).is_none());
        assert!(plan_simple_partition(&tree, tree.root(), &meta, Dim::SrcIp, 6).is_none());
    }

    #[test]
    fn efficuts_partition_tags_children() {
        let rs = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 200).with_seed(61));
        let tree = DecisionTree::new(&rs);
        let meta = NodeMeta::root();
        let (groups, metas) = plan_efficuts_partition(&tree, tree.root(), &meta).unwrap();
        assert!(groups.len() >= 2);
        assert_eq!(groups.len(), metas.len());
        for (i, m) in metas.iter().enumerate() {
            assert_eq!(m.efficuts_id, Some(i as u8));
            assert!(!m.top);
        }
        // Groups cover all rules.
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, tree.node(tree.root()).num_rules());
    }

    #[test]
    fn efficuts_partition_none_when_uniform() {
        // All rules share the same largeness signature -> single group.
        let rs = RuleSet::new(vec![Rule::default_rule(1), Rule::default_rule(0)]);
        let tree = DecisionTree::new(&rs);
        assert!(plan_efficuts_partition(&tree, tree.root(), &NodeMeta::root()).is_none());
    }
}
