//! Lockstep vectorised rollout collection — the parallel actor half of
//! the paper's Figure 7, rebuilt batch-first.
//!
//! [`VecEnv`] steps `N` independent tree-building episodes in lockstep:
//! each round, every in-flight episode contributes its pending node
//! observation to **one batched policy forward**
//! ([`nn::PolicyValueNet::infer`], matrix-matrix instead of `N`
//! per-observation matrix-vector passes), then every episode applies
//! its action and advances to its next decision. Worker threads
//! (`std::thread::scope`, barrier-synchronised rounds) split the
//! environment slots into contiguous chunks and run both the chunk's
//! share of the batched forward and its env-side tree mutations.
//!
//! **Determinism.** Episode seeds are drawn from one monotone counter
//! assigned in slot order during the serial bookkeeping phase, and each
//! episode owns its own `ChaCha8Rng` stream, so the collected batch is
//! a pure function of `(env, net, base_seed, num_envs, min_samples)` —
//! the `workers` thread count provably cannot change a single bit
//! (chunking only partitions per-slot work that never crosses slots).
//! The test suite pins this: same seeds ⇒ bit-identical rollouts *and*
//! bit-identical PPO updates, serial vs parallel.

use crate::env::NeuroCutsEnv;
use nn::{InferBuffer, Matrix, PolicyValueNet};
use parking_lot::Mutex;
use rl::RolloutBatch;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use crate::env::{Episode, EpisodeState};

/// One environment slot of the lockstep collector.
#[derive(Default)]
struct Slot {
    /// The in-flight episode, if any.
    st: Option<EpisodeState>,
    /// Seed of an episode to start at the next round (set by the
    /// serial phase, consumed by the worker phase).
    restart: Option<u64>,
    /// An episode that completed this round, awaiting the serial
    /// phase's deterministic bookkeeping.
    finished: Option<Episode>,
}

/// Per-worker scratch reused across rounds: the observation batch, the
/// inference buffers, and the slot→batch-row map.
#[derive(Default)]
struct Scratch {
    x: Matrix,
    buf: InferBuffer,
    row_of: Vec<Option<usize>>,
}

/// A vectorised NeuroCuts rollout collector: `num_envs` episodes
/// stepped in lockstep with batched policy inference, optionally across
/// scoped worker threads.
///
/// Clones of the underlying [`NeuroCutsEnv`] share the best-tree
/// record, so the collector improves the same record the trainer reads.
///
/// ```
/// use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
/// use neurocuts::{NeuroCutsConfig, NeuroCutsEnv, VecEnv};
/// use nn::{NetConfig, PolicyValueNet};
/// use rand::SeedableRng;
///
/// let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 32).with_seed(7));
/// let env = NeuroCutsEnv::new(rules, NeuroCutsConfig::smoke_test());
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let net = PolicyValueNet::new(
///     NetConfig {
///         obs_dim: env.encoder.obs_dim(),
///         dim_actions: env.action_space.dim_actions(),
///         num_actions: env.action_space.num_actions(),
///         hidden: [16, 16],
///     },
///     &mut rng,
/// );
/// // Two collectors, same seeds, different thread counts: the batches
/// // are bit-identical — parallelism never changes the data.
/// let a = VecEnv::new(env.clone(), 4, 99).collect(&net, 60, 1);
/// let b = VecEnv::new(env, 4, 99).collect(&net, 60, 2);
/// assert!(a.len() >= 60);
/// assert_eq!(a.spans, b.spans);
/// assert_eq!(a.samples.len(), b.samples.len());
/// assert!(a.samples.iter().zip(&b.samples).all(|(x, y)| x.reward == y.reward));
/// ```
pub struct VecEnv {
    env: NeuroCutsEnv,
    num_envs: usize,
    base_seed: u64,
    next_episode: u64,
}

impl VecEnv {
    /// A collector over `num_envs` lockstep environment slots. Episode
    /// `k` (globally, across all slots and [`VecEnv::collect`] calls)
    /// is seeded `base_seed + k`, so a collector's output stream is
    /// fully determined by its construction arguments.
    ///
    /// # Panics
    /// Panics if `num_envs` is zero.
    pub fn new(env: NeuroCutsEnv, num_envs: usize, base_seed: u64) -> Self {
        assert!(num_envs > 0, "need at least one environment");
        VecEnv { env, num_envs, base_seed, next_episode: 0 }
    }

    /// Number of lockstep environment slots.
    pub fn num_envs(&self) -> usize {
        self.num_envs
    }

    /// The shared environment (e.g. to read the best tree).
    pub fn env(&self) -> &NeuroCutsEnv {
        &self.env
    }

    fn next_seed(counter: &mut u64, base: u64) -> u64 {
        let seed = base.wrapping_add(*counter);
        *counter += 1;
        seed
    }

    /// Collect at least `min_samples` experiences (plus the tail of
    /// any in-flight episodes, which always run to completion) across
    /// `workers` threads. Completed episodes are appended to the batch
    /// — and offered to the shared best-tree record — in deterministic
    /// (round, slot) order; the result is bit-identical for every
    /// `workers` value.
    pub fn collect(
        &mut self,
        net: &PolicyValueNet,
        min_samples: usize,
        workers: usize,
    ) -> RolloutBatch {
        let workers = workers.clamp(1, self.num_envs);
        let slots: Vec<Mutex<Slot>> = (0..self.num_envs).map(|_| Mutex::default()).collect();
        let mut counter = self.next_episode;
        for s in &slots {
            s.lock().restart = Some(Self::next_seed(&mut counter, self.base_seed));
        }
        let mut batch = RolloutBatch::default();
        let mut collected = 0usize;

        // The deterministic bookkeeping phase run between rounds:
        // harvest finished episodes in slot order, decide restarts from
        // the global seed counter, and report whether all slots idled.
        let env = &self.env;
        let base = self.base_seed;
        let mut serial_phase =
            |slots: &[Mutex<Slot>], batch: &mut RolloutBatch, counter: &mut u64| -> bool {
                let mut all_idle = true;
                for (i, s) in slots.iter().enumerate() {
                    let mut slot = s.lock();
                    if let Some(ep) = slot.finished.take() {
                        env.record_best(&ep);
                        // Zero-sample episodes still make progress towards
                        // the target, or a degenerate (instantly terminal)
                        // environment would loop forever.
                        collected += ep.samples.len().max(1);
                        batch.push_episode(i, ep.samples, -ep.objective);
                    }
                    if slot.st.is_none() && slot.restart.is_none() && collected < min_samples {
                        slot.restart = Some(Self::next_seed(counter, base));
                    }
                    if slot.st.is_some() || slot.restart.is_some() {
                        all_idle = false;
                    }
                }
                all_idle
            };

        if workers == 1 {
            let mut scratch = Scratch::default();
            loop {
                run_round(env, net, &slots, &mut scratch);
                if serial_phase(&slots, &mut batch, &mut counter) {
                    break;
                }
            }
        } else {
            // Persistent workers, two barrier waits per round: the
            // round phase (all participants step their chunk) and the
            // hand-off to the serial phase (main thread only).
            let chunk = self.num_envs.div_ceil(workers);
            let barrier = Barrier::new(workers);
            let done = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for w in 1..workers {
                    let slots = &slots
                        [(w * chunk).min(self.num_envs)..((w + 1) * chunk).min(self.num_envs)];
                    let barrier = &barrier;
                    let done = &done;
                    scope.spawn(move || {
                        let mut scratch = Scratch::default();
                        loop {
                            barrier.wait(); // round start
                            if done.load(Ordering::SeqCst) {
                                break;
                            }
                            run_round(env, net, slots, &mut scratch);
                            barrier.wait(); // round end
                        }
                    });
                }
                let my_slots = &slots[..chunk.min(self.num_envs)];
                let mut scratch = Scratch::default();
                loop {
                    barrier.wait(); // round start
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    run_round(env, net, my_slots, &mut scratch);
                    barrier.wait(); // round end
                    if serial_phase(&slots, &mut batch, &mut counter) {
                        done.store(true, Ordering::SeqCst);
                    }
                }
            });
        }

        self.next_episode = counter;
        batch
    }
}

/// One worker round over a chunk of slots: gather the chunk's pending
/// observations, run one batched forward, then apply each slot's
/// action and advance it to its next decision (starting or finishing
/// episodes as instructed). Purely per-slot — results cannot depend on
/// how slots are chunked across workers.
fn run_round(
    env: &NeuroCutsEnv,
    net: &PolicyValueNet,
    slots: &[Mutex<Slot>],
    scratch: &mut Scratch,
) {
    scratch.x.reset(env.encoder.obs_dim());
    scratch.row_of.clear();
    for s in slots {
        let slot = s.lock();
        match slot.st.as_ref().and_then(|st| st.pending()) {
            Some(p) => {
                scratch.row_of.push(Some(scratch.x.rows));
                scratch.x.push_row(&p.obs);
            }
            None => scratch.row_of.push(None),
        }
    }
    if scratch.x.rows > 0 {
        net.infer(&scratch.x, &mut scratch.buf);
    }
    for (s, row) in slots.iter().zip(&scratch.row_of) {
        let mut slot = s.lock();
        if let Some(seed) = slot.restart.take() {
            debug_assert!(slot.st.is_none());
            slot.st = Some(env.start_episode(seed, false));
        }
        let Some(st) = slot.st.as_mut() else { continue };
        if let Some(r) = *row {
            env.apply_decision(
                st,
                scratch.buf.dim_logits.row(r),
                scratch.buf.act_logits.row(r),
                scratch.buf.values.get(r, 0),
            );
        }
        if !env.next_decision(st) {
            let st = slot.st.take().expect("episode state present");
            slot.finished = Some(env.finish_episode(st));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NeuroCutsConfig, PartitionMode};
    use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
    use nn::NetConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rl::{Ppo, PpoConfig, RolloutEnv};

    fn env_and_net(mode: PartitionMode, size: usize) -> (NeuroCutsEnv, PolicyValueNet) {
        let rules =
            generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(91));
        let cfg = NeuroCutsConfig::smoke_test().with_partition_mode(mode);
        let env = NeuroCutsEnv::new(rules, cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let net = PolicyValueNet::new(
            NetConfig {
                obs_dim: env.encoder.obs_dim(),
                dim_actions: env.action_space.dim_actions(),
                num_actions: env.action_space.num_actions(),
                hidden: [24, 24],
            },
            &mut rng,
        );
        (env, net)
    }

    fn assert_batches_bit_identical(a: &RolloutBatch, b: &RolloutBatch) {
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.episodes, b.episodes);
        assert_eq!(a.mean_episode_return.to_bits(), b.mean_episode_return.to_bits());
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.obs, y.obs);
            assert_eq!(x.dim_action, y.dim_action);
            assert_eq!(x.act_action, y.act_action);
            assert_eq!(x.dim_mask, y.dim_mask);
            assert_eq!(x.act_mask, y.act_mask);
            assert_eq!(x.log_prob.to_bits(), y.log_prob.to_bits());
            assert_eq!(x.value.to_bits(), y.value.to_bits());
            assert_eq!(x.reward.to_bits(), y.reward.to_bits());
        }
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit_including_ppo_updates() {
        for mode in [PartitionMode::None, PartitionMode::EffiCuts] {
            let (env, net) = env_and_net(mode, 72);
            let serial = VecEnv::new(env.clone(), 6, 1234).collect(&net, 150, 1);
            for workers in [2, 3, 6] {
                let (env_p, _) = {
                    // Fresh best-tree record per run; the net is shared.
                    let rules = generate_rules(
                        &GeneratorConfig::new(ClassifierFamily::Acl, 72).with_seed(91),
                    );
                    let cfg = NeuroCutsConfig::smoke_test().with_partition_mode(mode);
                    (NeuroCutsEnv::new(rules, cfg), ())
                };
                let parallel = VecEnv::new(env_p.clone(), 6, 1234).collect(&net, 150, workers);
                assert_batches_bit_identical(&serial, &parallel);
                // Identical batches ⇒ identical PPO updates.
                let cfg = PpoConfig { minibatch: 64, sgd_iters: 2, ..Default::default() };
                let mut net_a = net.clone();
                let mut net_b = net.clone();
                Ppo::new(cfg, 5).update(&mut net_a, &serial);
                Ppo::new(cfg, 5).update(&mut net_b, &parallel);
                assert_eq!(net_a.to_json(), net_b.to_json());
                // And the best tree found is the same tree.
                let (ba, bb) = (env.best().unwrap(), env_p.best().unwrap());
                assert_eq!(ba.objective.to_bits(), bb.objective.to_bits());
                assert_eq!(ba.stats, bb.stats);
            }
        }
    }

    #[test]
    fn single_env_matches_the_scalar_episode_path() {
        // One lockstep slot, batched inference ⇒ exactly the episodes
        // `build_tree` produces serially with the same seed stream —
        // proving the batched forward is bit-identical to forward_one.
        let (env, net) = env_and_net(PartitionMode::Simple, 64);
        let batch = VecEnv::new(env.clone(), 1, 500).collect(&net, 40, 1);
        let mut scalar = RolloutBatch::default();
        let mut k = 0u64;
        while scalar.len() < 40 {
            let mut e = env.clone();
            let (samples, ep_return) = e.episode(&net, 500 + k);
            scalar.push_episode(0, samples, ep_return);
            k += 1;
        }
        assert_batches_bit_identical(&batch, &scalar);
    }

    #[test]
    fn collect_reaches_the_sample_target_and_spans_partition_the_batch() {
        let (env, net) = env_and_net(PartitionMode::None, 80);
        let batch = VecEnv::new(env, 4, 7).collect(&net, 200, 2);
        assert!(batch.len() >= 200);
        assert!(batch.episodes >= 4);
        // Spans tile the sample vector exactly, in order.
        let mut cursor = 0;
        for span in &batch.spans {
            assert_eq!(span.start, cursor);
            assert!(span.env < 4);
            cursor += span.len;
        }
        assert_eq!(cursor, batch.len());
    }

    #[test]
    fn consecutive_collects_use_fresh_seeds() {
        let (env, net) = env_and_net(PartitionMode::None, 64);
        let mut vec_env = VecEnv::new(env, 3, 42);
        let a = vec_env.collect(&net, 60, 1);
        let b = vec_env.collect(&net, 60, 1);
        // Different seed window ⇒ different episodes (with overwhelming
        // probability for a stochastic policy).
        let ra: Vec<u32> = a.samples.iter().map(|s| s.reward.to_bits()).collect();
        let rb: Vec<u32> = b.samples.iter().map(|s| s.reward.to_bits()).collect();
        assert!(ra != rb, "two collects produced identical batches");
    }
}
