//! The NeuroCuts branching-decision-process environment (§5).
//!
//! One **episode** builds one complete decision tree: starting from the
//! root, the environment visits non-terminal leaves in DFS order
//! (Algorithm 1's `GrowTreeDFS`), asks the policy for a `(dimension,
//! action)` tuple at each, and applies it. Every decision is recorded as
//! an independent **1-step experience**; when the tree is finished, each
//! experience's reward is filled in from the completed subtree below it
//! (`-(c·f(Time) + (1−c)·f(Space))`). Rollout truncation and depth
//! truncation (§5.1) bound the episodes of early, unoptimised policies.

use crate::actions::{Action, ActionSpace};
use crate::config::NeuroCutsConfig;
use crate::obs::ObsEncoder;
use crate::partitioner::{plan_efficuts_partition, plan_simple_partition};
use crate::reward::{subtree_avg_time, subtree_metrics, Objective};
use classbench::{Packet, RuleSet, NUM_DIMS};
use dtree::{DecisionTree, LevelProfile, NodeId, TreeStats};
use nn::{MaskedCategorical, PolicyValueNet};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rl::{RolloutEnv, Sample};
use std::sync::Arc;

/// Per-node bookkeeping the observation encoding needs but the tree
/// substrate doesn't store: the simple-partition coverage window per
/// dimension, the EffiCuts partition id, and whether the node is still
/// a *top node* (partition actions allowed). 12 bytes and `Copy`: the
/// decision loop reads and propagates it by value instead of cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMeta {
    /// Per-dimension `(lo_level, hi_level)` coverage window: the node
    /// holds rules whose coverage fraction lies in
    /// `(LEVELS[lo], LEVELS[hi]]`.
    pub coverage_window: [(u8, u8); NUM_DIMS],
    /// EffiCuts partition id when below an EffiCuts partition.
    pub efficuts_id: Option<u8>,
    /// True while no cut has been applied above this node.
    pub top: bool,
}

impl NodeMeta {
    /// Metadata of the root: full windows, no partition, top.
    pub fn root() -> Self {
        NodeMeta { coverage_window: [(0, 7); NUM_DIMS], efficuts_id: None, top: true }
    }

    /// Metadata inherited by cut children: same windows/id, not top.
    pub fn after_cut(&self) -> Self {
        NodeMeta { top: false, ..*self }
    }
}

/// The best tree found during training, with everything the evaluation
/// harness needs to reproduce the paper's figures.
#[derive(Debug, Clone)]
pub struct BestTree {
    /// The scalarised objective (lower is better).
    pub objective: f64,
    /// Full statistics of the tree.
    pub stats: TreeStats,
    /// Per-level profile (Figure 5/6 visualisations).
    pub profile: LevelProfile,
    /// The tree itself — an `Arc` snapshot shared with the episode that
    /// produced it, so recording an improvement under the mutex is O(1)
    /// instead of a deep tree clone.
    pub tree: Arc<DecisionTree>,
}

/// The result of building one tree with a frozen policy.
#[derive(Debug, Clone)]
pub struct Episode {
    /// The completed tree (shared with the best-tree record when the
    /// episode improved it).
    pub tree: Arc<DecisionTree>,
    /// 1-step experiences (empty if the root was already terminal).
    pub samples: Vec<Sample>,
    /// Scalarised objective of the finished tree (lower is better).
    pub objective: f64,
    /// True when the rollout hit the timestep or depth truncation.
    pub truncated: bool,
}

/// A decision awaiting the policy: the node, its encoded observation,
/// and the two validity masks. Produced by
/// [`NeuroCutsEnv::next_decision`], consumed by
/// [`NeuroCutsEnv::apply_decision`].
#[derive(Debug, Clone)]
pub struct PendingDecision {
    /// The node the policy must decide on.
    pub node: NodeId,
    /// Fixed-width observation encoding of the node.
    pub obs: Vec<f32>,
    /// Dimension-head validity mask.
    pub dim_mask: Vec<bool>,
    /// Action-head validity mask.
    pub act_mask: Vec<bool>,
}

/// One in-flight episode (one tree build), advanced a decision at a
/// time. This is the re-entrant core of [`NeuroCutsEnv::build_tree`]:
/// the serial path drives one `EpisodeState` to completion with scalar
/// policy forwards, while the vectorised collector
/// (`neurocuts::vecenv`) steps many of them in lockstep against one
/// *batched* forward per step — same code, same RNG stream, so the two
/// paths produce bit-identical episodes for the same seed.
pub struct EpisodeState {
    tree: DecisionTree,
    metas: Vec<NodeMeta>,
    stack: Vec<NodeId>,
    samples: Vec<Sample>,
    sample_nodes: Vec<NodeId>,
    rng: ChaCha8Rng,
    truncated: bool,
    greedy: bool,
    pending: Option<PendingDecision>,
}

impl EpisodeState {
    /// The decision currently awaiting the policy (if any).
    pub fn pending(&self) -> Option<&PendingDecision> {
        self.pending.as_ref()
    }

    /// Number of decisions recorded so far.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }
}

/// The NeuroCuts environment. Clones share the rule set and the
/// best-tree slot, so parallel rollout workers (Figure 7) all improve
/// one record.
#[derive(Clone)]
pub struct NeuroCutsEnv {
    rules: Arc<RuleSet>,
    /// The SoA rule store every episode tree shares: built once per
    /// environment, so starting an episode allocates no rule copies.
    store: Arc<dtree::RuleStore>,
    config: Arc<NeuroCutsConfig>,
    /// The tuple action space.
    pub action_space: ActionSpace,
    /// The node encoder.
    pub encoder: ObsEncoder,
    objective: Objective,
    best: Arc<Mutex<Option<BestTree>>>,
    traffic: Option<Arc<Vec<Packet>>>,
}

impl NeuroCutsEnv {
    /// An environment for `rules` under `config`.
    pub fn new(rules: RuleSet, config: NeuroCutsConfig) -> Self {
        let action_space = ActionSpace::new(config.partition_mode);
        NeuroCutsEnv {
            objective: Objective::from_config(&config),
            store: Arc::new(dtree::RuleStore::from_ruleset(&rules)),
            rules: Arc::new(rules),
            config: Arc::new(config),
            action_space,
            encoder: ObsEncoder::new(action_space),
            best: Arc::new(Mutex::new(None)),
            traffic: None,
        }
    }

    /// Switch the time term of the objective from worst-case depth to
    /// the *expected* lookup cost under this packet trace — the
    /// traffic-aware extension the paper's conclusion proposes (§8).
    /// The same trace is replayed over every rollout's tree.
    pub fn with_traffic(mut self, trace: Vec<Packet>) -> Self {
        assert!(!trace.is_empty(), "traffic trace must be non-empty");
        self.traffic = Some(Arc::new(trace));
        self
    }

    /// The rule set being optimised.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The scalarised objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The best tree recorded so far across all clones of this
    /// environment.
    pub fn best(&self) -> Option<BestTree> {
        self.best.lock().clone()
    }

    /// Clear the best-tree record (e.g. between independent runs).
    pub fn reset_best(&self) {
        *self.best.lock() = None;
    }

    /// Build one tree with the given policy. `greedy` takes argmax
    /// actions (used to extract the final tree); otherwise actions are
    /// sampled (training rollouts, Figure 6 variations).
    pub fn build_tree(&self, net: &PolicyValueNet, seed: u64, greedy: bool) -> Episode {
        let mut st = self.start_episode(seed, greedy);
        while self.next_decision(&mut st) {
            let p = st.pending().expect("pending decision after next_decision");
            let (dim_logits, act_logits, value) = net.forward_one(&p.obs);
            self.apply_decision(&mut st, &dim_logits, &act_logits, value);
        }
        let ep = self.finish_episode(st);
        self.record_best(&ep);
        ep
    }

    /// Begin one episode (one tree build) seeded for reproducible
    /// action sampling. Drive it with [`NeuroCutsEnv::next_decision`] /
    /// [`NeuroCutsEnv::apply_decision`] and close it with
    /// [`NeuroCutsEnv::finish_episode`].
    pub fn start_episode(&self, seed: u64, greedy: bool) -> EpisodeState {
        let tree = DecisionTree::with_store(Arc::clone(&self.store));
        let root = tree.root();
        EpisodeState {
            tree,
            metas: vec![NodeMeta::root()],
            stack: vec![root],
            samples: Vec::new(),
            sample_nodes: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x0065_7069), // "epi"
            truncated: false,
            greedy,
            pending: None,
        }
    }

    /// Advance the episode to its next decision point, skipping
    /// terminal/inseparable leaves in DFS order (Algorithm 1's
    /// `GrowTreeDFS`). Returns `true` with `st.pending()` populated
    /// when the policy must act, or `false` when the episode is
    /// complete (tree finished, or rollout/depth truncation §5.1).
    pub fn next_decision(&self, st: &mut EpisodeState) -> bool {
        debug_assert!(st.pending.is_none(), "previous decision not applied");
        let cfg = &*self.config;
        while let Some(id) = st.stack.pop() {
            if st.tree.is_terminal(id, cfg.binth) {
                continue;
            }
            if st.tree.node(id).depth >= cfg.max_tree_depth {
                st.truncated = true;
                continue; // depth truncation: force terminal
            }
            // Rollout truncation (§5.1) bounds training episodes; greedy
            // extraction gets a much larger allowance so the final tree
            // always completes (a trained policy stays far below it).
            let step_cap = if st.greedy {
                cfg.max_timesteps_per_rollout.max(500_000)
            } else {
                cfg.max_timesteps_per_rollout
            };
            if st.samples.len() >= step_cap {
                st.truncated = true;
                return false; // rollout truncation
            }
            let meta = st.metas[id];
            // Inseparable rules (identical projections in every
            // dimension) can never be split apart by cutting; treat the
            // node as terminal like every cutting heuristic does, or the
            // rollout would grind through the full space grid. The mask
            // keeps only dimensions whose cuts can still discriminate
            // rules here — one memoized single-pass scan computes all
            // five dimensions at once (the old loop rescanned the rule
            // list up to ten times per node).
            let sep = st.tree.separability_mask(id);
            if sep == 0 {
                continue; // nothing separable: forced leaf
            }
            let dim_mask: Vec<bool> =
                (0..classbench::NUM_DIMS).map(|d| sep & (1 << d) != 0).collect();
            let act_mask = self.action_space.act_mask(meta.top || self.config.partition_anywhere);
            let mut obs = Vec::new();
            self.encoder.encode_into(
                &st.tree.node(id).space,
                &meta,
                &dim_mask,
                &act_mask,
                &mut obs,
            );
            st.pending = Some(PendingDecision { node: id, obs, dim_mask, act_mask });
            return true;
        }
        false
    }

    /// Apply the policy's output for the pending decision: sample (or
    /// argmax) both heads from the masked logits, decode and apply the
    /// action to the tree, and record the 1-step experience.
    ///
    /// # Panics
    /// Panics if no decision is pending.
    pub fn apply_decision(
        &self,
        st: &mut EpisodeState,
        dim_logits: &[f32],
        act_logits: &[f32],
        value: f32,
    ) {
        let p = st.pending.take().expect("no pending decision to apply");
        let id = p.node;
        let meta = st.metas[id];
        let dim_dist = MaskedCategorical::new(dim_logits, &p.dim_mask);
        let act_dist = MaskedCategorical::new(act_logits, &p.act_mask);
        let (mut dim_action, mut act_action) = if st.greedy {
            (dim_dist.argmax(), act_dist.argmax())
        } else {
            (dim_dist.sample(st.rng.gen::<f32>()), act_dist.sample(st.rng.gen::<f32>()))
        };

        // Decode and apply, falling back to a binary cut when a
        // sampled partition is invalid at this node (empty side or
        // out-of-window threshold). The *applied* action is what we
        // record, with its own log-probability, so the experience
        // stays consistent with the behaviour distribution.
        let tree = &mut st.tree;
        let metas = &mut st.metas;
        let children: Vec<NodeId> = loop {
            match self.action_space.decode(dim_action, act_action) {
                Action::Cut { dim, ncuts } => {
                    let ncuts = ncuts.min(tree.node(id).space.range(dim).len().max(2) as usize);
                    let kids = tree.cut_node(id, dim, ncuts.max(2));
                    for &k in &kids {
                        tree.truncate_covered(k);
                    }
                    let child_meta = meta.after_cut();
                    metas.resize(metas.len() + kids.len(), child_meta);
                    break kids;
                }
                Action::SimplePartition { dim, level } => {
                    match plan_simple_partition(tree, id, &meta, dim, level) {
                        Some(split) => {
                            let kids = tree.partition_node(id, vec![split.small, split.large]);
                            metas.push(split.small_meta);
                            metas.push(split.large_meta);
                            break kids;
                        }
                        None => {
                            // Fall back: binary cut on a valid dim.
                            (dim_action, act_action) = self.fallback_cut(&p.dim_mask, dim_action);
                        }
                    }
                }
                Action::EffiCutsPartition => match plan_efficuts_partition(tree, id, &meta) {
                    Some((groups, group_metas)) => {
                        let kids = tree.partition_node(id, groups);
                        metas.extend(group_metas);
                        break kids;
                    }
                    None => {
                        (dim_action, act_action) = self.fallback_cut(&p.dim_mask, dim_action);
                    }
                },
            }
        };
        debug_assert_eq!(st.metas.len(), st.tree.num_nodes());

        st.samples.push(Sample {
            obs: p.obs,
            dim_action,
            act_action,
            log_prob: dim_dist.log_prob(dim_action) + act_dist.log_prob(act_action),
            dim_mask: p.dim_mask,
            act_mask: p.act_mask,
            value,
            reward: 0.0, // filled in by finish_episode, once subtrees complete
        });
        st.sample_nodes.push(id);

        // DFS order: push children so the first child is processed
        // next (Algorithm 1's GrowTreeDFS).
        st.stack.extend(children.iter().rev());
    }

    /// Close a completed episode: fill in the delayed subtree rewards
    /// (one reverse pass computes every subtree's Time/Space; each
    /// decision is rewarded by its own subtree) and return the
    /// [`Episode`]. Does **not** touch the shared best-tree record —
    /// callers offer the episode via [`NeuroCutsEnv::record_best`] so
    /// multi-env collectors can do it in a deterministic order.
    pub fn finish_episode(&self, st: EpisodeState) -> Episode {
        let EpisodeState { tree, mut samples, sample_nodes, truncated, .. } = st;
        let tree = Arc::new(tree);
        let (time, bytes) = subtree_metrics(&tree, &self.objective.memory);
        // Traffic-aware extension (§8): replace worst-case depth with
        // the expected lookup cost under the configured trace.
        let avg_time: Option<Vec<f64>> = self.traffic.as_ref().map(|trace| {
            let counts = tree.node_visit_counts(trace);
            subtree_avg_time(&tree, &counts)
        });
        let time_at = |node: NodeId| -> f64 {
            match &avg_time {
                Some(avg) => avg[node],
                None => time[node] as f64,
            }
        };
        let value_at = |node: NodeId| -> f64 {
            self.objective.c * self.objective.scaling.apply(time_at(node))
                + (1.0 - self.objective.c) * self.objective.scaling.apply(bytes[node] as f64)
        };
        let objective = value_at(tree.root());
        if self.config.dense_rewards {
            for (s, &node) in samples.iter_mut().zip(&sample_nodes) {
                s.reward = -value_at(node) as f32;
            }
        } else {
            // Ablation: the sparse "single terminal reward" strawman.
            for s in samples.iter_mut() {
                s.reward = -objective as f32;
            }
        }
        Episode { tree, samples, objective, truncated }
    }

    /// Offer a completed episode to the shared best-tree record
    /// (truncated builds don't count: their metrics are lower bounds,
    /// not achieved trees).
    pub fn record_best(&self, ep: &Episode) {
        if ep.truncated {
            return;
        }
        let mut best = self.best.lock();
        if best.as_ref().is_none_or(|b| ep.objective < b.objective) {
            *best = Some(BestTree {
                objective: ep.objective,
                stats: TreeStats::compute(&ep.tree),
                profile: LevelProfile::compute(&ep.tree),
                // O(1) snapshot: the record shares the episode's tree.
                tree: Arc::clone(&ep.tree),
            });
        }
    }

    /// A guaranteed-valid fallback action: a binary cut on the sampled
    /// dimension if cuttable, else on the first cuttable dimension.
    fn fallback_cut(&self, dim_mask: &[bool], dim_action: usize) -> (usize, usize) {
        let dim = if dim_mask[dim_action] {
            dim_action
        } else {
            dim_mask.iter().position(|&m| m).expect("caller checked a dim is cuttable")
        };
        (dim, 0) // action 0 = Cut with ncuts 2
    }
}

impl RolloutEnv for NeuroCutsEnv {
    fn episode(&mut self, net: &PolicyValueNet, seed: u64) -> (Vec<Sample>, f64) {
        let ep = self.build_tree(net, seed, false);
        (ep.samples, -ep.objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionMode;
    use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
    use dtree::validate::assert_tree_valid;
    use nn::NetConfig;

    fn env_and_net(mode: PartitionMode, size: usize) -> (NeuroCutsEnv, PolicyValueNet) {
        let rules =
            generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, size).with_seed(71));
        let cfg = NeuroCutsConfig::smoke_test().with_partition_mode(mode);
        let env = NeuroCutsEnv::new(rules, cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let net = PolicyValueNet::new(
            NetConfig {
                obs_dim: env.encoder.obs_dim(),
                dim_actions: env.action_space.dim_actions(),
                num_actions: env.action_space.num_actions(),
                hidden: [32, 32],
            },
            &mut rng,
        );
        (env, net)
    }

    #[test]
    fn episodes_build_valid_trees() {
        for mode in [PartitionMode::None, PartitionMode::Simple, PartitionMode::EffiCuts] {
            let (env, net) = env_and_net(mode, 80);
            let ep = env.build_tree(&net, 1, false);
            assert!(!ep.samples.is_empty());
            assert_tree_valid(&ep.tree, 300, 73);
        }
    }

    #[test]
    fn every_sample_has_a_negative_reward() {
        let (env, net) = env_and_net(PartitionMode::None, 80);
        let ep = env.build_tree(&net, 2, false);
        // Rewards are -(objective) of a non-empty subtree: strictly < 0.
        assert!(ep.samples.iter().all(|s| s.reward < 0.0));
        // The root decision's reward equals minus the episode objective.
        assert!((f64::from(ep.samples[0].reward) + ep.objective).abs() < 1e-3);
    }

    #[test]
    fn episodes_are_deterministic_in_seed() {
        let (env, net) = env_and_net(PartitionMode::Simple, 60);
        let a = env.build_tree(&net, 5, false);
        let b = env.build_tree(&net, 5, false);
        assert_eq!(a.samples.len(), b.samples.len());
        assert!((a.objective - b.objective).abs() < 1e-12);
        let c = env.build_tree(&net, 6, false);
        // Different seeds explore different trees (stochastic policy).
        assert!(
            a.samples.len() != c.samples.len()
                || (a.objective - c.objective).abs() > 1e-12
                || a.samples.iter().zip(&c.samples).any(|(x, y)| x.dim_action != y.dim_action)
        );
    }

    #[test]
    fn greedy_build_is_deterministic_regardless_of_seed() {
        let (env, net) = env_and_net(PartitionMode::None, 60);
        let a = env.build_tree(&net, 1, true);
        let b = env.build_tree(&net, 999, true);
        assert_eq!(a.samples.len(), b.samples.len());
        assert!((a.objective - b.objective).abs() < 1e-12);
    }

    #[test]
    fn depth_truncation_bounds_trees() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 120).with_seed(74));
        let mut cfg = NeuroCutsConfig::smoke_test();
        cfg.max_tree_depth = 3;
        cfg.max_timesteps_per_rollout = 100_000;
        let env = NeuroCutsEnv::new(rules, cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(75);
        let net = PolicyValueNet::new(
            NetConfig {
                obs_dim: env.encoder.obs_dim(),
                dim_actions: 5,
                num_actions: env.action_space.num_actions(),
                hidden: [16, 16],
            },
            &mut rng,
        );
        let ep = env.build_tree(&net, 1, false);
        assert!(TreeStats::compute(&ep.tree).max_depth <= 3);
    }

    #[test]
    fn rollout_truncation_caps_samples() {
        let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 200).with_seed(76));
        let mut cfg = NeuroCutsConfig::smoke_test();
        cfg.max_timesteps_per_rollout = 10;
        let env = NeuroCutsEnv::new(rules, cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let net = PolicyValueNet::new(
            NetConfig {
                obs_dim: env.encoder.obs_dim(),
                dim_actions: 5,
                num_actions: env.action_space.num_actions(),
                hidden: [16, 16],
            },
            &mut rng,
        );
        let ep = env.build_tree(&net, 1, false);
        assert!(ep.truncated);
        assert!(ep.samples.len() <= 10);
        // Truncated episodes must not pollute the best-tree record.
        assert!(env.best().is_none());
    }

    #[test]
    fn best_tree_is_tracked_and_shared_across_clones() {
        let (env, net) = env_and_net(PartitionMode::None, 60);
        let clone = env.clone();
        let _ = clone.build_tree(&net, 1, false);
        let best = env.best().expect("best tree recorded via the clone");
        assert!(best.objective > 0.0);
        assert!(best.stats.time >= 1);
        // A second, worse episode must not replace it.
        let before = env.best().unwrap().objective;
        for s in 2..6 {
            let _ = env.build_tree(&net, s, false);
        }
        assert!(env.best().unwrap().objective <= before);
    }

    #[test]
    fn traffic_aware_objective_uses_expected_cost() {
        let (env, net) = env_and_net(PartitionMode::None, 80);
        // A trace concentrated in one corner of the space: expected
        // lookup cost must be <= worst case, so the traffic objective is
        // never larger than the worst-case objective for the same tree.
        let trace: Vec<Packet> =
            (0..200).map(|i| Packet::new(i % 50, i % 50, i % 50, 80, 6)).collect();
        let traffic_env = env.clone().with_traffic(trace);
        let worst = env.build_tree(&net, 3, false);
        let avg = traffic_env.build_tree(&net, 3, false);
        // Same seed, same policy -> same tree shape; only the objective
        // differs.
        assert_eq!(worst.samples.len(), avg.samples.len());
        assert!(
            avg.objective <= worst.objective + 1e-9,
            "expected {} <= worst {}",
            avg.objective,
            worst.objective
        );
        assert!(avg.objective >= 1.0, "at least the root is visited");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_traffic_trace_panics() {
        let (env, _net) = env_and_net(PartitionMode::None, 20);
        let _ = env.with_traffic(Vec::new());
    }

    #[test]
    fn partition_modes_produce_partition_nodes_eventually() {
        let (env, net) = env_and_net(PartitionMode::EffiCuts, 150);
        let mut saw_partition = false;
        for seed in 0..20 {
            let ep = env.build_tree(&net, seed, false);
            if ep.tree.nodes().iter().any(|n| matches!(n.kind, dtree::NodeKind::Partition { .. })) {
                saw_partition = true;
                break;
            }
        }
        assert!(saw_partition, "EffiCuts partition never sampled in 20 episodes");
    }
}
