//! NeuroCuts hyperparameters — Table 1 of the paper, as code.

use rl::PpoConfig;
use serde::{Deserialize, Serialize};

/// Which partition actions the policy may take at top nodes
/// ("Top-node partitioning" in Table 1 — the paper's most sensitive
/// hyperparameter, biasing trees towards time (`None`) vs space
/// (`EffiCuts`) or in between (`Simple`)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionMode {
    /// Cut actions only: pure cutting trees, fastest classification.
    None,
    /// Single-dimension coverage-threshold partitions with a learned
    /// threshold (§4 "Simple").
    Simple,
    /// The EffiCuts partition heuristic as a single action (§4, §6.3).
    EffiCuts,
}

/// The reward scaling function `f` in Algorithm 1 (`f(x) ∈ {x, log x}`).
/// `Log` is used whenever `c < 1` to make time and space magnitudes
/// commensurable (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardScaling {
    /// Identity.
    Linear,
    /// Natural log (clamped below at 1 to stay finite).
    Log,
}

impl RewardScaling {
    /// Apply the scaling.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            RewardScaling::Linear => x,
            RewardScaling::Log => x.max(1.0).ln(),
        }
    }
}

/// Full NeuroCuts configuration. `paper_default` reproduces Table 1;
/// `fast` and `smoke_test` scale the budget down for laptop-scale
/// experiments and doc-tests (the paper itself notes convergence within
/// a few hundred rollouts — size affects wall-clock, not
/// rollouts-to-converge).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuroCutsConfig {
    /// Time-space coefficient `c ∈ [0, 1]` (Eq. 5): 1 optimises
    /// classification time only, 0 memory only.
    pub time_space_coeff: f64,
    /// Allowed top-node partitioning.
    pub partition_mode: PartitionMode,
    /// Reward scaling function `f`.
    pub reward_scaling: RewardScaling,
    /// Rollout truncation: max actions per tree rollout (Table 1:
    /// {1000, 5000, 15000}).
    pub max_timesteps_per_rollout: usize,
    /// Depth truncation: nodes at this depth are forced terminal
    /// (Table 1: {100, 500}).
    pub max_tree_depth: usize,
    /// Total environment timesteps to train for (Table 1: 10M).
    pub max_timesteps: usize,
    /// Timesteps per training batch (Table 1: 60k).
    pub timesteps_per_batch: usize,
    /// Hidden layer sizes (Table 1: [512, 512]).
    pub hidden: [usize; 2],
    /// PPO settings (Table 1 defaults).
    pub ppo: PpoConfig,
    /// Leaf termination threshold (rules per leaf).
    pub binth: usize,
    /// Worker threads stepping the vectorised collector (Figure 7).
    pub workers: usize,
    /// Independent environments stepped in lockstep by the vectorised
    /// collector ([`crate::VecEnv`]); their pending observations form
    /// one batched policy forward per step. Purely a throughput knob on
    /// top of `workers` — determinism is per-environment, so results
    /// depend on `num_envs` (the seed schedule) but never on `workers`.
    pub num_envs: usize,
    /// Master seed for policy init, sampling, and shuffling.
    pub seed: u64,
    /// Stop early after this many consecutive batches without improving
    /// the best objective (`0` disables early stopping).
    pub patience: usize,
    /// Ablation switch: when false, every decision in a rollout receives
    /// the *root* reward instead of its own subtree's (the "single
    /// terminal reward" strawman §4 argues against). Default true.
    pub dense_rewards: bool,
    /// Ablation switch: when true, partition actions are allowed at any
    /// node, not only top nodes (removes the Appendix-A action mask).
    /// Default false.
    pub partition_anywhere: bool,
    /// Comparison switch: train with the Q-learning baseline instead of
    /// PPO (the alternative the paper tried and found inferior, §4).
    /// Default false.
    pub use_qlearning: bool,
}

impl NeuroCutsConfig {
    /// Exactly Table 1 (with a 15000-step rollout cap and depth 100).
    pub fn paper_default() -> Self {
        NeuroCutsConfig {
            time_space_coeff: 1.0,
            partition_mode: PartitionMode::None,
            reward_scaling: RewardScaling::Linear,
            max_timesteps_per_rollout: 15_000,
            max_tree_depth: 100,
            max_timesteps: 10_000_000,
            timesteps_per_batch: 60_000,
            hidden: [512, 512],
            ppo: PpoConfig::default(),
            binth: 16,
            workers: 4,
            num_envs: 16,
            seed: 0,
            patience: 0,
            dense_rewards: true,
            partition_anywhere: false,
            use_qlearning: false,
        }
    }

    /// A laptop-scale budget for ~1k-rule classifiers: smaller model,
    /// paper-proportioned batches (the batch must be several rollout
    /// caps wide, or a single truncated early episode devours the whole
    /// batch), same algorithm.
    pub fn fast() -> Self {
        let mut cfg = Self::paper_default();
        cfg.hidden = [128, 128];
        cfg.max_timesteps = 120_000;
        cfg.timesteps_per_batch = 12_000;
        // The paper found 15000-step rollouts necessary for larger
        // classifiers; early random policies need the headroom to
        // complete trees at all.
        cfg.max_timesteps_per_rollout = 12_000;
        cfg.ppo.minibatch = 512;
        cfg.ppo.sgd_iters = 8;
        cfg.ppo.adam.lr = 3e-4;
        cfg.patience = 5;
        cfg
    }

    /// A budget sized for a few-hundred-rule classifier: completes in
    /// tens of seconds and usually converges visibly. Used by the
    /// examples and the figure harness.
    pub fn small(max_timesteps: usize) -> Self {
        let mut cfg = Self::paper_default();
        cfg.hidden = [64, 64];
        cfg.max_timesteps = max_timesteps;
        // Many small batches beat a few huge ones at this scale: each
        // worker's in-flight episode overshoots the batch by up to one
        // rollout cap, so the cap is kept at half a batch to preserve
        // the number of PPO updates the budget affords.
        cfg.timesteps_per_batch = (max_timesteps / 12).clamp(1_500, 6_000);
        cfg.max_timesteps_per_rollout = (cfg.timesteps_per_batch / 2).max(1_000);
        cfg.ppo.minibatch = 256;
        cfg.ppo.sgd_iters = 6;
        cfg.ppo.adam.lr = 3e-4;
        cfg.patience = 6;
        cfg
    }

    /// A seconds-scale budget for doc-tests and CI smoke tests.
    pub fn smoke_test() -> Self {
        let mut cfg = Self::fast();
        cfg.hidden = [32, 32];
        cfg.max_timesteps = 1_600;
        cfg.timesteps_per_batch = 400;
        // Generous per-rollout cap: smoke tests run on tiny rule sets,
        // so even random-policy trees complete quickly, and truncated
        // episodes would never record a best tree.
        cfg.max_timesteps_per_rollout = 5_000;
        cfg.ppo.minibatch = 128;
        cfg.ppo.sgd_iters = 4;
        cfg.workers = 2;
        cfg.num_envs = 4;
        cfg
    }

    /// Set the time-space coefficient, switching to log scaling when
    /// mixing objectives (as the paper does for `c < 1`).
    pub fn with_coeff(mut self, c: f64) -> Self {
        assert!((0.0..=1.0).contains(&c), "c must be in [0, 1]");
        self.time_space_coeff = c;
        self.reward_scaling = if c < 1.0 { RewardScaling::Log } else { RewardScaling::Linear };
        self
    }

    /// Set the partition mode.
    pub fn with_partition_mode(mut self, mode: PartitionMode) -> Self {
        self.partition_mode = mode;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let cfg = NeuroCutsConfig::paper_default();
        assert_eq!(cfg.hidden, [512, 512]);
        assert_eq!(cfg.max_timesteps, 10_000_000);
        assert_eq!(cfg.timesteps_per_batch, 60_000);
        assert_eq!(cfg.ppo.sgd_iters, 30);
        assert_eq!(cfg.ppo.minibatch, 1000);
        assert!((cfg.ppo.adam.lr - 5e-5).abs() < 1e-12);
        assert!((cfg.ppo.entropy_coeff - 0.01).abs() < 1e-9);
        assert!((cfg.ppo.clip - 0.3).abs() < 1e-9);
        assert!((cfg.ppo.vf_clip - 10.0).abs() < 1e-9);
        assert!((cfg.ppo.kl_target - 0.01).abs() < 1e-9);
    }

    #[test]
    fn with_coeff_switches_scaling() {
        let cfg = NeuroCutsConfig::paper_default().with_coeff(0.5);
        assert_eq!(cfg.reward_scaling, RewardScaling::Log);
        let cfg = NeuroCutsConfig::paper_default().with_coeff(1.0);
        assert_eq!(cfg.reward_scaling, RewardScaling::Linear);
    }

    #[test]
    #[should_panic(expected = "c must be in")]
    fn coeff_out_of_range_panics() {
        let _ = NeuroCutsConfig::paper_default().with_coeff(1.5);
    }

    #[test]
    fn scaling_functions() {
        assert_eq!(RewardScaling::Linear.apply(42.0), 42.0);
        assert!((RewardScaling::Log.apply(std::f64::consts::E) - 1.0).abs() < 1e-12);
        // Clamped below 1 so empty subtrees don't produce -inf.
        assert_eq!(RewardScaling::Log.apply(0.0), 0.0);
    }
}
