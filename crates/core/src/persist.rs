//! Durable checkpoints + crash recovery for a live classifier
//! (`core::persist`, the checkpoint half of the durability layer whose
//! logging half is `dtree::wal`).
//!
//! # On-disk layout
//!
//! A persist directory holds generation-stamped pairs:
//!
//! ```text
//! checkpoint-00000003.ncck   frozen tree + epoch + train seed
//! wal-00000003.ncwal         every admitted op since that checkpoint
//! ```
//!
//! A checkpoint file is a line-based ASCII header followed by the
//! tree's pinned JSON serialisation, self-checksummed with a
//! hand-rolled 64-bit FNV-1a (std-only, like the WAL's CRC-32):
//!
//! ```text
//! NCCKPT1
//! generation <g>
//! epoch <e>
//! train_seed <s>
//! tree_len <n>
//! tree_fnv <16-hex-digit fnv1a of the n body bytes>
//! <n bytes of DecisionTree::to_json>
//! ```
//!
//! Checkpoints are written **tmp → fsync → rename → fsync(dir)**, so a
//! generation either exists completely or not at all; the WAL for
//! generation `g` is created (and the live handle's log rotated onto
//! it, under one write-lock acquisition) *before* checkpoint `g` is
//! written, so a crash at any instant leaves a recoverable chain.
//!
//! # Recovery state machine
//!
//! [`recover`] walks four steps, every failure a typed
//! [`RecoverError`], never a panic:
//!
//! 1. **Pick** the newest checkpoint that reads back clean (older
//!    generations are fallbacks while they survive GC — a torn
//!    `checkpoint-(g+1)` from a mid-write crash is skipped, with the
//!    skip recorded).
//! 2. **Replay** the WAL chain `wal-g, wal-(g+1), …` through the
//!    normal admission path ([`ClassifierHandle::insert`]/`delete`/
//!    `force_rebuild`]), verifying LSN continuity across files and
//!    re-deriving each logged insert id. A torn/corrupt tail is legal
//!    only on the *last* file of the chain: it is truncated away (and
//!    recorded, sticky, in the health report); anywhere else it is a
//!    hard error.
//! 3. **Prove** the result against the linear-scan ground truth (low-
//!    corner probe per active rule + caller probes) before anything is
//!    served.
//! 4. **Re-checkpoint** into a fresh generation and attach a fresh WAL,
//!    so the next crash replays from *here* instead of re-walking the
//!    whole chain.
//!
//! Epoch accounting makes "bit-identical" checkable: every logged
//! record publishes exactly one epoch, so the recovered epoch must be
//! `checkpoint epoch + replayed records` — and the crash soak asserts
//! exactly that, plus `TreeStats` and full-trace agreement.

use classbench::Packet;
use dtree::wal::{self, WalError, WalWriter};
use dtree::{
    ClassifierHandle, DecisionTree, FaultInjector, FaultPoint, RebuildPolicy, UpdateError,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First header line of every checkpoint file.
pub const CHECKPOINT_VERSION: &str = "NCCKPT1";

/// 64-bit FNV-1a (the checkpoint body's self-checksum; also the golden
/// on-disk-layout hash pinned by the recovery-equivalence test).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Path of checkpoint `generation` under `dir`.
pub fn checkpoint_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("checkpoint-{generation:08}.ncck"))
}

/// Path of the WAL running ahead of checkpoint `generation`.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:08}.ncwal"))
}

/// A decoded checkpoint: everything needed to rebuild the classifier
/// the moment the image was frozen.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The generation stamp (file name and GC order).
    pub generation: u64,
    /// The epoch the handle had published when the image was frozen.
    pub epoch: u64,
    /// The train seed pinned for reproducibility: with the frozen rules
    /// it re-derives the adopted tree bit-identically (PR 6 contract).
    pub train_seed: u64,
    /// The frozen tree (rule arena + structure + active flags).
    pub tree: DecisionTree,
}

/// Why a checkpoint file's *contents* were rejected (I/O failures are
/// [`PersistError::Io`]). Every variant is recoverable by falling back
/// to an older generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The header is not valid UTF-8.
    NotUtf8,
    /// The first line is not [`CHECKPOINT_VERSION`].
    BadVersion {
        /// The first line actually found.
        got: String,
    },
    /// A required `key value` header line is missing or misplaced.
    MissingField {
        /// The field that was expected.
        field: &'static str,
    },
    /// A header field's value does not parse as the expected integer.
    BadField {
        /// The unparsable field.
        field: &'static str,
    },
    /// The body is shorter or longer than `tree_len` promised — a torn
    /// write that escaped the tmp-file protocol.
    Truncated {
        /// Bytes the header promised.
        want: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The body's FNV-1a does not match `tree_fnv`.
    BadChecksum {
        /// The checksum the header recorded.
        want: u64,
        /// The checksum of the bytes on disk.
        got: u64,
    },
    /// The body passed its checksum but is not a valid tree — a format
    /// or version skew, not disk damage.
    BadTree {
        /// The deserialiser's message.
        why: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NotUtf8 => f.write_str("checkpoint header is not utf-8"),
            CheckpointError::BadVersion { got } => {
                write!(f, "checkpoint version line is {got:?}, expected {CHECKPOINT_VERSION:?}")
            }
            CheckpointError::MissingField { field } => {
                write!(f, "checkpoint header is missing the {field:?} field")
            }
            CheckpointError::BadField { field } => {
                write!(f, "checkpoint header field {field:?} does not parse")
            }
            CheckpointError::Truncated { want, have } => {
                write!(f, "checkpoint body holds {have} of {want} bytes")
            }
            CheckpointError::BadChecksum { want, got } => {
                write!(f, "checkpoint body checksum {got:016x} != recorded {want:016x}")
            }
            CheckpointError::BadTree { why } => {
                write!(f, "checkpoint body is not a valid tree: {why}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Why a persistence operation (attach, checkpoint, raw read) failed.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O failure, with the path it happened on.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// The WAL layer failed (create/append/sync/read).
    Wal(WalError),
    /// A checkpoint file's contents were rejected.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        err: CheckpointError,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            PersistError::Wal(err) => write!(f, "{err}"),
            PersistError::Corrupt { path, err } => write!(f, "{}: {err}", path.display()),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<WalError> for PersistError {
    fn from(err: WalError) -> Self {
        PersistError::Wal(err)
    }
}

/// Why [`recover`] could not produce a serving handle. Torn tails and
/// skipped newer checkpoints are *not* errors (they are recorded in the
/// [`RecoverReport`]); these are the conditions with no safe fallback.
#[derive(Debug)]
pub enum RecoverError {
    /// The directory holds no readable checkpoint at all.
    NoCheckpoint {
        /// The directory searched.
        dir: PathBuf,
        /// Why each candidate that existed was rejected (empty when
        /// the directory simply has no checkpoint files).
        rejected: Vec<String>,
    },
    /// An I/O failure while walking the chain.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A WAL file in the chain is structurally bad in a way truncation
    /// cannot repair: reordered records, a mid-chain torn tail, bad
    /// magic, an undecodable payload.
    Wal {
        /// The offending WAL file.
        path: PathBuf,
        /// The underlying typed error.
        err: WalError,
    },
    /// A logged op was refused on replay — the log and the checkpoint
    /// disagree about the state the op was admitted against.
    Replay {
        /// The record's sequence number.
        lsn: u64,
        /// The admission error the replay hit.
        err: UpdateError,
    },
    /// A replayed insert landed on a different arena id than the log
    /// recorded — id determinism was violated.
    ReplayIdMismatch {
        /// The record's sequence number.
        lsn: u64,
        /// The id the log recorded at admission time.
        logged: usize,
        /// The id the replay produced.
        got: usize,
    },
    /// The recovered classifier failed its linear-scan proof on this
    /// packet; the state was NOT handed out for serving.
    Diverged {
        /// The first diverging probe.
        packet: Packet,
    },
    /// Writing the fresh post-recovery checkpoint failed.
    Persist(PersistError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NoCheckpoint { dir, rejected } => {
                write!(f, "no valid checkpoint under {}", dir.display())?;
                for r in rejected {
                    write!(f, "; rejected: {r}")?;
                }
                Ok(())
            }
            RecoverError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            RecoverError::Wal { path, err } => write!(f, "{}: {err}", path.display()),
            RecoverError::Replay { lsn, err } => {
                write!(f, "replay of lsn {lsn} was refused: {err}")
            }
            RecoverError::ReplayIdMismatch { lsn, logged, got } => {
                write!(f, "replay of lsn {lsn} produced id {got}, log recorded {logged}")
            }
            RecoverError::Diverged { packet } => {
                write!(f, "recovered state diverged from the linear scan at {packet}")
            }
            RecoverError::Persist(err) => write!(f, "post-recovery checkpoint failed: {err}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<PersistError> for RecoverError {
    fn from(err: PersistError) -> Self {
        RecoverError::Persist(err)
    }
}

/// Tunables for the durability layer.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Fsync the WAL every this many appends (1 = every record; the
    /// batch only trades the current batch's tail against *power loss*,
    /// not process death — see the `dtree::wal` module docs).
    pub sync_every: usize,
    /// Checkpoint when the WAL grows past this many records (consulted
    /// by the lifecycle worker each poll, on top of its
    /// checkpoint-after-adopt).
    pub checkpoint_wal_threshold: u64,
    /// Crash-injection hooks (`wal-append`, `checkpoint-write`,
    /// `adopt-persist`): the soak's deterministic `kill -9`.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig { sync_every: 32, checkpoint_wal_threshold: 512, faults: None }
    }
}

/// What one checkpoint wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The generation written.
    pub generation: u64,
    /// The epoch frozen inside it.
    pub epoch: u64,
    /// Bytes of the checkpoint file.
    pub bytes: u64,
    /// WAL records the rotation folded into this checkpoint (what a
    /// recovery no longer needs to replay).
    pub folded_records: u64,
}

/// What a successful [`recover`] did.
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// The checkpoint generation recovery resumed from.
    pub base_generation: u64,
    /// The fresh generation written after replay.
    pub new_generation: u64,
    /// The recovered (pre-crash) epoch.
    pub epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// The torn/corrupt-tail note, when the chain's last file needed
    /// truncation (also sticky in the handle's health report).
    pub truncated_tail: Option<String>,
    /// Newer-but-unreadable checkpoints that were skipped (path: why).
    pub skipped_checkpoints: Vec<String>,
    /// Probes the linear-scan proof checked before serving.
    pub spot_checked: usize,
    /// The train seed carried forward from the recovered checkpoint.
    pub train_seed: u64,
}

/// Serialise a checkpoint exactly as it is laid out on disk.
pub fn encode_checkpoint(ck: &Checkpoint) -> Vec<u8> {
    let body = ck.tree.to_json();
    let body = body.as_bytes();
    let mut out = Vec::with_capacity(body.len() + 128);
    let _ = writeln!(out, "{CHECKPOINT_VERSION}");
    let _ = writeln!(out, "generation {}", ck.generation);
    let _ = writeln!(out, "epoch {}", ck.epoch);
    let _ = writeln!(out, "train_seed {}", ck.train_seed);
    let _ = writeln!(out, "tree_len {}", body.len());
    let _ = writeln!(out, "tree_fnv {:016x}", fnv1a(body));
    out.extend_from_slice(body);
    out
}

fn field<'a>(
    lines: &mut std::str::Lines<'a>,
    key: &'static str,
) -> Result<&'a str, CheckpointError> {
    let line = lines.next().ok_or(CheckpointError::MissingField { field: key })?;
    match line.split_once(' ') {
        Some((k, v)) if k == key => Ok(v.trim()),
        _ => Err(CheckpointError::MissingField { field: key }),
    }
}

fn int_field(lines: &mut std::str::Lines<'_>, key: &'static str) -> Result<u64, CheckpointError> {
    field(lines, key)?.parse().map_err(|_| CheckpointError::BadField { field: key })
}

/// Decode a checkpoint image (the inverse of [`encode_checkpoint`]).
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    // The header is the first 6 newline-terminated ASCII lines; the
    // body (tree JSON) follows and is length- and checksum-verified.
    let mut newlines = 0usize;
    let mut body_start = bytes.len();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            newlines += 1;
            if newlines == 6 {
                body_start = i + 1;
                break;
            }
        }
    }
    let header = std::str::from_utf8(&bytes[..body_start]).map_err(|_| CheckpointError::NotUtf8)?;
    let mut lines = header.lines();
    let version = lines.next().ok_or(CheckpointError::MissingField { field: "version" })?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion { got: version.to_string() });
    }
    let generation = int_field(&mut lines, "generation")?;
    let epoch = int_field(&mut lines, "epoch")?;
    let train_seed = int_field(&mut lines, "train_seed")?;
    let tree_len = int_field(&mut lines, "tree_len")? as usize;
    let want_fnv = u64::from_str_radix(field(&mut lines, "tree_fnv")?, 16)
        .map_err(|_| CheckpointError::BadField { field: "tree_fnv" })?;
    let body = &bytes[body_start..];
    if body.len() != tree_len {
        return Err(CheckpointError::Truncated { want: tree_len, have: body.len() });
    }
    let got_fnv = fnv1a(body);
    if got_fnv != want_fnv {
        return Err(CheckpointError::BadChecksum { want: want_fnv, got: got_fnv });
    }
    let json = std::str::from_utf8(body).map_err(|_| CheckpointError::NotUtf8)?;
    let tree = DecisionTree::from_json(json)
        .map_err(|e| CheckpointError::BadTree { why: e.to_string() })?;
    Ok(Checkpoint { generation, epoch, train_seed, tree })
}

/// Read and verify one checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, PersistError> {
    let bytes =
        std::fs::read(path).map_err(|err| PersistError::Io { path: path.to_path_buf(), err })?;
    decode_checkpoint(&bytes).map_err(|err| PersistError::Corrupt { path: path.to_path_buf(), err })
}

fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// Checkpoint generations present under `dir`, ascending.
pub fn list_checkpoint_generations(dir: &Path) -> Result<Vec<u64>, PersistError> {
    list_generations(dir, "checkpoint-", ".ncck")
}

/// WAL generations present under `dir`, ascending.
pub fn list_wal_generations(dir: &Path) -> Result<Vec<u64>, PersistError> {
    list_generations(dir, "wal-", ".ncwal")
}

fn list_generations(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<u64>, PersistError> {
    let entries =
        std::fs::read_dir(dir).map_err(|err| PersistError::Io { path: dir.to_path_buf(), err })?;
    let mut gens = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|err| PersistError::Io { path: dir.to_path_buf(), err })?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(g) = parse_generation(name, prefix, suffix) {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

fn fsync_dir(dir: &Path) -> Result<(), PersistError> {
    let d = std::fs::File::open(dir)
        .map_err(|err| PersistError::Io { path: dir.to_path_buf(), err })?;
    d.sync_all().map_err(|err| PersistError::Io { path: dir.to_path_buf(), err })
}

/// Write `ck` durably as `checkpoint-<gen>.ncck` under `dir`:
/// tmp → fsync → rename → fsync(dir). With `faults` armed, the
/// `checkpoint-write` point crashes mid-tmp-write (torn tmp, final
/// file absent) and `adopt-persist` crashes after the tmp is complete
/// but before the rename — the two halves of the atomicity claim.
/// Returns the file's byte length.
pub fn write_checkpoint(
    dir: &Path,
    ck: &Checkpoint,
    faults: Option<&Arc<FaultInjector>>,
) -> Result<u64, PersistError> {
    let bytes = encode_checkpoint(ck);
    let final_path = checkpoint_path(dir, ck.generation);
    let tmp_path = final_path.with_extension("ncck.tmp");
    let io = |err| PersistError::Io { path: tmp_path.clone(), err };
    if let Some(f) = faults {
        if f.should_fire(FaultPoint::CheckpointWrite) {
            // Crash mid-write: a torn tmp file, no published generation.
            let half = bytes.len() / 2;
            if let Ok(mut tmp) = std::fs::File::create(&tmp_path) {
                let _ = tmp.write_all(&bytes[..half]);
                let _ = tmp.sync_all();
            }
            std::process::abort();
        }
    }
    let mut tmp = std::fs::File::create(&tmp_path).map_err(io)?;
    tmp.write_all(&bytes).map_err(io)?;
    tmp.sync_all().map_err(io)?;
    drop(tmp);
    if let Some(f) = faults {
        if f.should_fire(FaultPoint::AdoptPersist) {
            // Crash on the rename edge: the tmp is complete and synced,
            // the generation not yet published.
            std::process::abort();
        }
    }
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|err| PersistError::Io { path: final_path.clone(), err })?;
    fsync_dir(dir)?;
    Ok(bytes.len() as u64)
}

/// Best-effort GC: remove checkpoint and WAL files older than
/// `keep_generation` (their chain is superseded). Failures are ignored
/// — stale files cost disk, not correctness.
fn gc_older_than(dir: &Path, keep_generation: u64) {
    let sweep = |gens: Result<Vec<u64>, PersistError>, path_of: fn(&Path, u64) -> PathBuf| {
        if let Ok(gens) = gens {
            for g in gens.into_iter().filter(|&g| g < keep_generation) {
                let _ = std::fs::remove_file(path_of(dir, g));
            }
        }
    };
    sweep(list_checkpoint_generations(dir), checkpoint_path);
    sweep(list_wal_generations(dir), wal_path);
    // Leftover tmp files from crashed checkpoint writes.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(".ncck.tmp")) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// A persist directory bound to its tunables: the object the lifecycle
/// worker and the CLI carry around.
#[derive(Debug, Clone)]
pub struct Persistence {
    dir: PathBuf,
    cfg: PersistConfig,
}

impl Persistence {
    /// Bind `dir` with default tunables.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Persistence { dir: dir.into(), cfg: PersistConfig::default() }
    }

    /// Bind `dir` with explicit tunables.
    pub fn with_config(dir: impl Into<PathBuf>, cfg: PersistConfig) -> Self {
        Persistence { dir: dir.into(), cfg }
    }

    /// The bound directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The bound tunables.
    pub fn config(&self) -> &PersistConfig {
        &self.cfg
    }

    /// Checkpoint `handle` into a fresh generation and rotate its WAL
    /// onto it (this is also how persistence is *attached* to a handle
    /// that has none yet). Under one write-lock acquisition the tree +
    /// epoch are frozen and the new WAL installed; the image is then
    /// written durably and older generations are GC'd. `train_seed` is
    /// pinned into the image for the reproducibility contract.
    pub fn checkpoint(
        &self,
        handle: &ClassifierHandle,
        train_seed: u64,
    ) -> Result<CheckpointReport, PersistError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|err| PersistError::Io { path: self.dir.clone(), err })?;
        let next_gen = list_checkpoint_generations(&self.dir)?
            .into_iter()
            .chain(list_wal_generations(&self.dir)?)
            .max()
            .map_or(0, |g| g + 1);
        let folded = handle.health().wal_len.unwrap_or(0);
        let path = wal_path(&self.dir, next_gen);
        let cfg = &self.cfg;
        let (tree, epoch) = handle.rotate_wal(next_gen, |next_lsn| {
            let w = WalWriter::create(&path, next_lsn, cfg.sync_every)?;
            Ok::<_, WalError>(match &cfg.faults {
                Some(f) => w.with_faults(f.clone()),
                None => w,
            })
        })?;
        let ck = Checkpoint { generation: next_gen, epoch, train_seed, tree };
        let bytes = write_checkpoint(&self.dir, &ck, self.cfg.faults.as_ref())?;
        gc_older_than(&self.dir, next_gen);
        Ok(CheckpointReport { generation: next_gen, epoch, bytes, folded_records: folded })
    }

    /// True when the handle's WAL has outgrown
    /// [`PersistConfig::checkpoint_wal_threshold`] — the lifecycle
    /// worker's cue to checkpoint outside the adopt path.
    pub fn wants_checkpoint(&self, handle: &ClassifierHandle) -> bool {
        handle.health().wal_len.is_some_and(|n| n >= self.cfg.checkpoint_wal_threshold)
    }
}

fn replay_record(
    handle: &ClassifierHandle,
    lsn: u64,
    record: wal::WalRecord,
) -> Result<(), RecoverError> {
    match record {
        wal::WalRecord::Insert { id, rule } => match handle.insert(rule) {
            Ok(got) if got == id => Ok(()),
            Ok(got) => Err(RecoverError::ReplayIdMismatch { lsn, logged: id, got }),
            Err(err) => Err(RecoverError::Replay { lsn, err }),
        },
        wal::WalRecord::Delete { id } => {
            handle.delete(id).map_err(|err| RecoverError::Replay { lsn, err })
        }
        wal::WalRecord::Rebuild | wal::WalRecord::Adopt => {
            // Both replay as one forced recompile: classification-
            // identical (the adopt spot check proved it at admission)
            // and exactly one published epoch, keeping the epoch
            // arithmetic exact.
            handle.force_rebuild();
            Ok(())
        }
    }
}

/// Rebuild a serving classifier from `dir` after a crash (see the
/// module docs for the four-step state machine). `extra_probes` joins
/// the per-rule low-corner probes in the pre-serving linear-scan proof.
/// On success the handle already has a fresh checkpoint + WAL attached
/// and is safe to serve from.
pub fn recover(
    dir: &Path,
    policy: RebuildPolicy,
    extra_probes: &[Packet],
    cfg: &PersistConfig,
) -> Result<(ClassifierHandle, RecoverReport), RecoverError> {
    // Step 1: newest checkpoint that reads back clean.
    let mut rejected = Vec::new();
    let gens = match list_checkpoint_generations(dir) {
        Ok(gens) => gens,
        Err(PersistError::Io { path, err }) => return Err(RecoverError::Io { path, err }),
        Err(other) => return Err(RecoverError::Persist(other)),
    };
    let mut base = None;
    for g in gens.into_iter().rev() {
        match read_checkpoint(&checkpoint_path(dir, g)) {
            Ok(ck) => {
                base = Some(ck);
                break;
            }
            Err(err) => rejected.push(err.to_string()),
        }
    }
    let Some(base) = base else {
        return Err(RecoverError::NoCheckpoint { dir: dir.to_path_buf(), rejected });
    };

    // Step 2: replay the WAL chain from the base generation forward.
    let handle = ClassifierHandle::new_at_epoch(base.tree.clone(), policy, base.epoch);
    let mut replayed = 0u64;
    let mut truncated_tail = None;
    let mut expect_lsn: Option<u64> = None;
    let mut gen = base.generation;
    loop {
        let path = wal_path(dir, gen);
        if !path.exists() {
            break;
        }
        let outcome =
            wal::read_wal(&path).map_err(|err| RecoverError::Wal { path: path.clone(), err })?;
        if let Some(want) = expect_lsn {
            if outcome.start_lsn != want {
                return Err(RecoverError::Wal {
                    path,
                    err: WalError::LsnMismatch {
                        offset: 0,
                        expected: want,
                        got: outcome.start_lsn,
                    },
                });
            }
        }
        if let Some(tail) = outcome.tail {
            // A torn tail is the signature of a crash mid-append — legal
            // only on the newest file of the chain. Anywhere else it
            // would silently drop admitted ops that later files replay
            // on top of, so it is a hard error there.
            if wal_path(dir, gen + 1).exists() {
                return Err(RecoverError::Wal { path, err: tail });
            }
            wal::truncate_wal(&path, outcome.valid_len)
                .map_err(|err| RecoverError::Wal { path: path.clone(), err })?;
            truncated_tail = Some(format!("truncated torn wal tail (generation {gen}): {tail}"));
        }
        for (lsn, record) in (outcome.start_lsn..).zip(outcome.records) {
            replay_record(&handle, lsn, record)?;
            replayed += 1;
        }
        expect_lsn = Some(outcome.next_lsn);
        gen += 1;
    }
    debug_assert_eq!(
        handle.epoch(),
        base.epoch + replayed,
        "one WAL record must publish exactly one epoch"
    );

    // Step 3: prove the recovered state against the linear scan before
    // anything serves from it — one low-corner probe per active rule,
    // plus whatever the caller wants checked.
    let mut probes: Vec<Packet> = handle.with_tree(|t| {
        t.rules()
            .iter()
            .enumerate()
            .filter(|&(id, _)| t.is_active(id))
            .map(|(_, r)| r.low_corner())
            .collect()
    });
    probes.extend_from_slice(extra_probes);
    if let Some(packet) = handle.check_divergence(&probes) {
        return Err(RecoverError::Diverged { packet });
    }
    let linear_miss = handle
        .with_tree(|t| probes.iter().find(|p| t.classify(p) != t.linear_classify(p)).copied());
    if let Some(packet) = linear_miss {
        return Err(RecoverError::Diverged { packet });
    }

    // Step 4: fold everything into a fresh generation so the next crash
    // replays from here, then attach the new WAL and record the sticky
    // recovery note.
    let persistence = Persistence::with_config(dir, cfg.clone());
    let report = persistence.checkpoint(&handle, base.train_seed)?;
    handle.note_recovery(report.generation, truncated_tail.clone());
    let recover_report = RecoverReport {
        base_generation: base.generation,
        new_generation: report.generation,
        epoch: handle.epoch(),
        replayed,
        truncated_tail,
        skipped_checkpoints: rejected,
        spot_checked: probes.len(),
        train_seed: base.train_seed,
    };
    Ok((handle, recover_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{DimRange, Rule, RuleSet};
    use dtree::TreeStats;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("nc-persist-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rule(lo: u64, hi: u64, priority: i32) -> Rule {
        let mut r = Rule::default_rule(priority);
        r.ranges[0] = DimRange { lo, hi };
        r
    }

    fn small_tree() -> DecisionTree {
        let rules = RuleSet::new(vec![
            rule(0, 1 << 16, 30),
            rule(1 << 10, 1 << 20, 20),
            Rule::default_rule(1),
        ]);
        DecisionTree::new(&rules)
    }

    #[test]
    fn checkpoint_encode_decode_round_trips() {
        let ck = Checkpoint { generation: 7, epoch: 42, train_seed: 99, tree: small_tree() };
        let bytes = encode_checkpoint(&ck);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back.generation, 7);
        assert_eq!(back.epoch, 42);
        assert_eq!(back.train_seed, 99);
        assert_eq!(TreeStats::compute(&back.tree), TreeStats::compute(&ck.tree));
        assert_eq!(back.tree.rules().len(), ck.tree.rules().len());
    }

    #[test]
    fn decode_rejects_damage_with_typed_errors() {
        let ck = Checkpoint { generation: 0, epoch: 0, train_seed: 0, tree: small_tree() };
        let bytes = encode_checkpoint(&ck);

        // Body corruption: flip one byte past the header.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(decode_checkpoint(&flipped), Err(CheckpointError::BadChecksum { .. })));

        // Truncation mid-body.
        let cut = &bytes[..bytes.len() - 5];
        assert!(matches!(decode_checkpoint(cut), Err(CheckpointError::Truncated { .. })));

        // Wrong version line.
        assert!(matches!(decode_checkpoint(b"NCCKPT9\n"), Err(CheckpointError::BadVersion { .. })));

        // Empty file.
        assert!(matches!(
            decode_checkpoint(b""),
            Err(CheckpointError::MissingField { field: "version" })
        ));
    }

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a 64-bit test vectors from the reference implementation.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn checkpoint_then_recover_restores_epoch_and_stats() {
        let dir = tmp_dir("roundtrip");
        let persistence = Persistence::with_config(
            &dir,
            PersistConfig { sync_every: 1, ..PersistConfig::default() },
        );
        let handle = ClassifierHandle::new(small_tree(), RebuildPolicy::never());
        persistence.checkpoint(&handle, 1234).unwrap();

        // Mutate past the checkpoint: the WAL carries these.
        let id = handle.insert(rule(5, 500, 40)).unwrap();
        handle.insert(rule(7, 700, 35)).unwrap();
        handle.delete(id).unwrap();
        handle.force_rebuild();
        let live_epoch = handle.epoch();
        let live_stats = handle.with_tree(TreeStats::compute);
        drop(handle);

        let (recovered, report) =
            recover(&dir, RebuildPolicy::never(), &[], &PersistConfig::default()).unwrap();
        assert_eq!(report.base_generation, 0);
        assert_eq!(report.replayed, 4);
        assert_eq!(report.truncated_tail, None);
        assert_eq!(report.train_seed, 1234);
        assert_eq!(recovered.epoch(), live_epoch);
        assert_eq!(recovered.with_tree(TreeStats::compute), live_stats);
        // The old chain was folded and GC'd behind the new generation.
        assert_eq!(list_checkpoint_generations(&dir).unwrap(), vec![report.new_generation]);
        assert_eq!(list_wal_generations(&dir).unwrap(), vec![report.new_generation]);
        let health = recovered.health();
        assert_eq!(health.checkpoint_generation, Some(report.new_generation));
        assert_eq!(health.wal_len, Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_truncates_a_torn_tail_on_the_last_file() {
        let dir = tmp_dir("torn");
        let persistence = Persistence::with_config(
            &dir,
            PersistConfig { sync_every: 1, ..PersistConfig::default() },
        );
        let handle = ClassifierHandle::new(small_tree(), RebuildPolicy::never());
        let report = persistence.checkpoint(&handle, 0).unwrap();
        handle.insert(rule(5, 500, 40)).unwrap();
        let epoch = handle.epoch();
        drop(handle);

        // Simulate a crash mid-append: garbage on the newest WAL's tail.
        let wal = wal_path(&dir, report.generation);
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);

        let (recovered, report) =
            recover(&dir, RebuildPolicy::never(), &[], &PersistConfig::default()).unwrap();
        assert_eq!(report.replayed, 1);
        assert!(report.truncated_tail.as_deref().unwrap().contains("torn"));
        assert_eq!(recovered.epoch(), epoch);
        assert_eq!(
            recovered.health().last_recover_error.as_deref(),
            report.truncated_tail.as_deref()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_falls_back_past_an_unreadable_newer_checkpoint() {
        let dir = tmp_dir("fallback");
        let persistence = Persistence::with_config(
            &dir,
            PersistConfig { sync_every: 1, ..PersistConfig::default() },
        );
        let handle = ClassifierHandle::new(small_tree(), RebuildPolicy::never());
        persistence.checkpoint(&handle, 77).unwrap();
        handle.insert(rule(5, 500, 40)).unwrap();
        let epoch = handle.epoch();
        drop(handle);

        // A half-written newer checkpoint, as a crashed writer without
        // the tmp-file protocol would leave behind.
        std::fs::write(checkpoint_path(&dir, 1), b"NCCKPT1\ngeneration 1\n").unwrap();

        let (recovered, report) =
            recover(&dir, RebuildPolicy::never(), &[], &PersistConfig::default()).unwrap();
        assert_eq!(report.base_generation, 0);
        assert_eq!(report.skipped_checkpoints.len(), 1);
        assert_eq!(recovered.epoch(), epoch);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_refuses_an_empty_dir() {
        let dir = tmp_dir("empty");
        let err = recover(&dir, RebuildPolicy::never(), &[], &PersistConfig::default())
            .expect_err("nothing to recover from");
        assert!(matches!(err, RecoverError::NoCheckpoint { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn golden_on_disk_layout() {
        // Pin the exact checkpoint byte layout: if serialisation drifts,
        // old checkpoints stop being recoverable and this hash moves.
        let ck = Checkpoint { generation: 3, epoch: 11, train_seed: 5, tree: small_tree() };
        let bytes = encode_checkpoint(&ck);
        let header_end = bytes.iter().position(|&b| b == b'{').unwrap();
        let header = std::str::from_utf8(&bytes[..header_end]).unwrap();
        assert!(header.starts_with("NCCKPT1\ngeneration 3\nepoch 11\ntrain_seed 5\ntree_len "));
        assert!(decode_checkpoint(&bytes).is_ok());
    }
}
