//! NeuroCuts: learning decision trees for packet classification with
//! deep reinforcement learning (Liang, Zhu, Jin & Stoica, SIGCOMM 2019).
//!
//! Given a rule set and an objective — classification time, memory
//! footprint, or a weighted combination — NeuroCuts trains a stochastic
//! policy that decides, node by node, whether to *cut* a decision-tree
//! node along a dimension or *partition* its rules, and converges to
//! compact trees optimised for that exact rule set.
//!
//! The crate mirrors the paper's design section by section:
//!
//! * [`config`] — every hyperparameter of Table 1, with the paper's
//!   values as defaults;
//! * [`actions`] — the tuple action space
//!   `(Discrete(5), Discrete(cuts + partitions))` of Appendix A.1;
//! * [`obs`] — the fixed-width one-hot node encoding of Appendix A.2/A.3
//!   (binary range strings, partition-level one-hots, EffiCuts partition
//!   id, action mask);
//! * [`partitioner`] — the *simple* (coverage-threshold) and *EffiCuts*
//!   partition actions of §4;
//! * [`reward`] — the recursive time/space reward of Eqs. 1–5 with the
//!   `c` coefficient and `f ∈ {x, log x}` scaling;
//! * [`mod@env`] — the branching-decision-process environment of §5
//!   (DFS tree growth, 1-step decision experiences, rollout and depth
//!   truncation), exposed both as whole-episode builds
//!   ([`NeuroCutsEnv::build_tree`]) and as a re-entrant
//!   [`EpisodeState`] advanced one decision at a time;
//! * [`vecenv`] — the lockstep vectorised collector ([`VecEnv`]): many
//!   environments per batched policy forward, scoped worker threads,
//!   and bit-identical results regardless of the thread count;
//! * [`trainer`] — the Algorithm-1 training loop on top of [`rl`]'s PPO
//!   with parallel rollout workers (Figure 7), plus greedy/stochastic
//!   tree extraction (Figures 5 and 6) and incremental classifier
//!   updates (§4). Degenerate inputs surface as [`TrainError`]s rather
//!   than panics;
//! * [`lifecycle`] — the churn → retrain → hot-swap loop: a background
//!   [`LifecycleWorker`] watches churn and tree-quality drift, retrains
//!   on a frozen snapshot while readers keep serving, spot-checks the
//!   grafted winner against a linear scan, and publishes it through one
//!   epoch swap;
//! * [`persist`] — crash-consistent durability: generation-stamped
//!   checkpoints over `dtree::wal`'s write-ahead log, and a typed
//!   recovery path ([`recover`]) that survives `kill -9` at any
//!   instant and proves the rebuilt state against a linear scan
//!   before serving from it.
//!
//! # Quickstart
//!
//! ```
//! use classbench::{generate_rules, ClassifierFamily, GeneratorConfig};
//! use neurocuts::{NeuroCutsConfig, Trainer};
//!
//! let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 64));
//! // A deliberately tiny training budget so the doc-test is fast; see
//! // `NeuroCutsConfig::paper_default` for the Table 1 settings.
//! let cfg = NeuroCutsConfig::smoke_test();
//! let mut trainer = Trainer::new(rules, cfg).expect("non-degenerate rule set");
//! let report = trainer.train().expect("training makes progress");
//! let best = report.best.expect("training produced at least one tree");
//! assert!(best.stats.time >= 1);
//! ```

#![warn(missing_docs)]

pub mod actions;
pub mod classifier;
pub mod config;
pub mod env;
pub mod lifecycle;
pub mod obs;
pub mod partitioner;
pub mod persist;
pub mod reward;
pub mod trainer;
pub mod vecenv;

pub use actions::{Action, ActionSpace};
pub use classifier::NeuroCutsClassifier;
pub use config::{NeuroCutsConfig, PartitionMode, RewardScaling};
pub use env::{EpisodeState, NeuroCutsEnv, PendingDecision};
pub use lifecycle::{
    churn_retrain_timeline, drift_signal, retrain_snapshot, LifecycleConfig, LifecycleError,
    LifecycleEvent, LifecycleReport, LifecycleWorker, PhaseRow, RetrainTrigger, RetryPolicy,
    TimelineConfig, TimelineReport, WorkerHealth,
};
pub use obs::ObsEncoder;
pub use persist::{
    recover, Checkpoint, CheckpointError, CheckpointReport, PersistConfig, PersistError,
    Persistence, RecoverError, RecoverReport,
};
pub use reward::Objective;
pub use trainer::{BestTree, IterationStats, TrainError, TrainReport, Trainer};
pub use vecenv::VecEnv;
