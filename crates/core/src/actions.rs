//! The NeuroCuts action space (Appendix A.1):
//!
//! ```text
//! Tuple(Discrete(NumDims), Discrete(NumCutActions + NumPartitionActions))
//! ```
//!
//! The first head picks a dimension; the second picks what to do in it —
//! one of the five cut fan-outs (2/4/8/16/32 sub-ranges, §4.1), one of
//! the simple-partition coverage thresholds (Appendix A.3), or the
//! EffiCuts partition heuristic. Invalid entries are masked per state.

use crate::config::PartitionMode;
use classbench::{Dim, NUM_DIMS};
use serde::{Deserialize, Serialize};

/// Cut fan-outs the paper allows: 2, 4, 8, 16, or 32 equal sub-ranges.
pub const CUT_SIZES: [usize; 5] = [2, 4, 8, 16, 32];

/// Simple-partition coverage thresholds (Appendix A.3): a partition at
/// level `k` separates rules covering at most `COVERAGE_LEVELS[k]` of
/// the chosen dimension from the rest. Levels 0 (0%) and 7 (100%)
/// appear only in the state encoding — as thresholds they would leave
/// one side empty, so they are always masked as actions.
pub const COVERAGE_LEVELS: [f64; 8] = [0.0, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0];

/// Number of coverage levels.
pub const NUM_LEVELS: usize = COVERAGE_LEVELS.len();

/// A decoded NeuroCuts action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Cut `dim` into `ncuts` equal sub-ranges.
    Cut {
        /// Dimension to cut.
        dim: Dim,
        /// One of [`CUT_SIZES`].
        ncuts: usize,
    },
    /// Partition the node's rules at coverage level `level` of `dim`.
    SimplePartition {
        /// Dimension whose coverage is thresholded.
        dim: Dim,
        /// Index into [`COVERAGE_LEVELS`] (1..=6).
        level: usize,
    },
    /// Apply the EffiCuts partitioner to the node's rules (the chosen
    /// dimension is irrelevant for this action).
    EffiCutsPartition,
}

/// The fixed tuple action space and its index arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    /// Partition actions available in this configuration.
    pub mode: PartitionMode,
}

impl ActionSpace {
    /// The space for a partition mode.
    pub fn new(mode: PartitionMode) -> Self {
        ActionSpace { mode }
    }

    /// Width of the dimension head (always the 5 packet dimensions).
    pub const fn dim_actions(&self) -> usize {
        NUM_DIMS
    }

    /// Width of the action head: 5 cuts + 8 partition levels + 1
    /// EffiCuts action. The width is *fixed* across modes so trained
    /// policies are shape-compatible; modes differ only in masking.
    pub const fn num_actions(&self) -> usize {
        CUT_SIZES.len() + NUM_LEVELS + 1
    }

    /// Index of the EffiCuts action in the action head.
    pub const fn efficuts_index(&self) -> usize {
        CUT_SIZES.len() + NUM_LEVELS
    }

    /// Decode `(dim_index, act_index)` into an [`Action`].
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn decode(&self, dim_index: usize, act_index: usize) -> Action {
        let dim = Dim::from_index(dim_index);
        if act_index < CUT_SIZES.len() {
            Action::Cut { dim, ncuts: CUT_SIZES[act_index] }
        } else if act_index < CUT_SIZES.len() + NUM_LEVELS {
            Action::SimplePartition { dim, level: act_index - CUT_SIZES.len() }
        } else if act_index == self.efficuts_index() {
            Action::EffiCutsPartition
        } else {
            panic!("action index {act_index} out of range");
        }
    }

    /// Action-head mask for a node: cut actions are always present
    /// (per-dimension validity lives in the dimension mask), partition
    /// actions require (a) the mode to allow them and (b) the node to be
    /// a *top node* — no cut above it (§4 "top-node partitioning",
    /// Appendix A.3 action mask).
    pub fn act_mask(&self, is_top_node: bool) -> Vec<bool> {
        let mut mask = vec![false; self.num_actions()];
        for m in mask.iter_mut().take(CUT_SIZES.len()) {
            *m = true;
        }
        if is_top_node {
            match self.mode {
                PartitionMode::None => {}
                PartitionMode::Simple => {
                    // Interior levels only: 0% and 100% leave a side empty.
                    for level in 1..NUM_LEVELS - 1 {
                        mask[CUT_SIZES.len() + level] = true;
                    }
                }
                PartitionMode::EffiCuts => {
                    mask[self.efficuts_index()] = true;
                }
            }
        }
        mask
    }

    /// Dimension-head mask: a dimension is selectable while its range at
    /// the node still has at least 2 values to cut.
    pub fn dim_mask(&self, space: &dtree::NodeSpace) -> Vec<bool> {
        classbench::DIMS.iter().map(|&d| space.range(d).len() >= 2).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::DimRange;
    use dtree::NodeSpace;

    #[test]
    fn decode_cut_actions() {
        let space = ActionSpace::new(PartitionMode::None);
        assert_eq!(space.decode(0, 0), Action::Cut { dim: Dim::SrcIp, ncuts: 2 });
        assert_eq!(space.decode(4, 4), Action::Cut { dim: Dim::Proto, ncuts: 32 });
    }

    #[test]
    fn decode_partition_actions() {
        let space = ActionSpace::new(PartitionMode::Simple);
        assert_eq!(space.decode(2, 5 + 3), Action::SimplePartition { dim: Dim::SrcPort, level: 3 });
        assert_eq!(space.decode(0, space.efficuts_index()), Action::EffiCutsPartition);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_bad_index() {
        ActionSpace::new(PartitionMode::None).decode(0, 99);
    }

    #[test]
    fn width_is_mode_independent() {
        let a = ActionSpace::new(PartitionMode::None);
        let b = ActionSpace::new(PartitionMode::EffiCuts);
        assert_eq!(a.num_actions(), b.num_actions());
        assert_eq!(a.num_actions(), 14);
        assert_eq!(a.dim_actions(), 5);
    }

    #[test]
    fn masks_by_mode_and_topness() {
        let none = ActionSpace::new(PartitionMode::None);
        assert!(none.act_mask(true).iter().take(5).all(|&m| m));
        assert!(none.act_mask(true).iter().skip(5).all(|&m| !m));

        let simple = ActionSpace::new(PartitionMode::Simple);
        let top = simple.act_mask(true);
        // Levels 1..=6 open, 0 and 7 closed, EffiCuts closed.
        assert!(!top[5]);
        assert!(top[6] && top[11]);
        assert!(!top[12]);
        assert!(!top[13]);
        // Below top nodes only cuts remain.
        let lower = simple.act_mask(false);
        assert!(lower.iter().skip(5).all(|&m| !m));

        let eff = ActionSpace::new(PartitionMode::EffiCuts);
        assert!(eff.act_mask(true)[13]);
        assert!(eff.act_mask(true)[5..13].iter().all(|&m| !m));
    }

    #[test]
    fn dim_mask_tracks_exhausted_ranges() {
        let space = ActionSpace::new(PartitionMode::None);
        let mut s = NodeSpace::full();
        assert!(space.dim_mask(&s).iter().all(|&m| m));
        // Exhaust the protocol dimension down to one value.
        s.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let mask = space.dim_mask(&s);
        assert!(!mask[Dim::Proto.index()]);
        assert!(mask[Dim::SrcIp.index()]);
    }
}
