//! `neurocuts` — the command-line front end of the workspace.
//!
//! ```text
//! neurocuts generate --family acl --size 1000 --seed 0 --out rules.txt
//! neurocuts train    --rules rules.txt --timesteps 60000 --c 1.0 \
//!                    --partition simple --out tree.json
//! neurocuts build    --rules rules.txt --algo hicuts --out tree.json
//! neurocuts classify --tree tree.json --rules rules.txt --trace 10000
//! neurocuts serve-bench --tree tree.json --rules rules.txt --threads 8
//! neurocuts update-bench --tree tree.json --rules rules.txt --updates 1000
//! neurocuts lifecycle-bench --rules rules.txt --updates 1000 --timesteps 3000
//! neurocuts recover  --persist-dir state/ --rules rules.txt
//! neurocuts stats    --tree tree.json
//! ```
//!
//! Argument parsing is hand-rolled (five flags per subcommand do not
//! justify a dependency); every subcommand prints its usage on error.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "train" => commands::train(rest),
        "build" => commands::build(rest),
        "classify" => commands::classify(rest),
        "serve-bench" => commands::serve_bench(rest),
        "update-bench" => commands::update_bench(rest),
        "lifecycle-bench" => commands::lifecycle_bench(rest),
        "recover" => commands::recover(rest),
        "stats" => commands::stats(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
