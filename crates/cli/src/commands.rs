//! The nine CLI subcommands.

use crate::args::Args;
use classbench::{
    generate_rules, generate_trace, parse_rules, write_rules, ClassifierFamily, GeneratorConfig,
    RuleSet, TraceConfig,
};
use dtree::{
    find_rebuild_divergence, run_engine, run_live_engine, serve_during, ChurnSchedule,
    ClassifierHandle, DecisionTree, EngineConfig, FaultInjector, FaultSchedule, FlatTree,
    RebuildPolicy, TreeStats, FAULT_POINTS,
};
use neurocuts::{
    churn_retrain_timeline, retrain_snapshot, LifecycleConfig, LifecycleWorker, NeuroCutsConfig,
    PartitionMode, PersistConfig, Persistence, RetrainTrigger, TimelineConfig, Trainer,
};

/// Top-level usage text.
pub const USAGE: &str = "\
neurocuts — learning packet-classification trees (SIGCOMM 2019 reproduction)

subcommands:
  generate --family acl|fw|ipc --size N [--seed S] [--out FILE]
      synthesise a ClassBench-style rule set (stdout if no --out)
  train    --rules FILE [--timesteps N] [--c 0..1]
           [--partition none|simple|efficuts] [--seed S] [--envs N]
           [--workers W] [--threads T] [--serve-trace N] [--out TREE.json]
      train a NeuroCuts policy (vectorised parallel envs, batched
      policy inference; --workers defaults to --threads, which
      defaults to all hardware threads), compile the best tree to its
      serving form, verify it against the linear-scan ground truth,
      and report the engine throughput on --threads cores; emits the
      tree as JSON
  build    --rules FILE --algo hicuts|hypercuts|hypersplit|efficuts|cutsplit
           [--out TREE.json]
      build a hand-tuned baseline tree
  classify --tree TREE.json --rules FILE [--trace N] [--seed S]
      replay a synthetic trace through a saved tree and verify it
      against the linear-scan ground truth
  serve-bench --tree TREE.json --rules FILE [--trace N] [--seed S]
              [--threads T] [--passes P]
      compile the tree to its serving form and measure scalar,
      batched, and sharded multi-core lookup throughput
  update-bench --tree TREE.json --rules FILE [--updates N] [--trace N]
               [--threads T] [--churn C] [--seed S]
               [--auto-retrain true] [--retrain-churn C] [--timesteps N]
               [--fault-schedule SPEC] [--persist-dir DIR]
      replay an insert/delete churn schedule through the live
      ClassifierHandle while engine readers serve concurrently;
      reports updates/sec applied and Mpps sustained during churn.
      with --auto-retrain true, a background lifecycle worker watches
      the churn and hot-swaps a freshly retrained tree mid-replay.
      --fault-schedule injects deterministic faults, e.g.
      \"retrain-panic@0;update-burst@100,400\" (points: retrain-panic,
      retrain-slow, adopt-corruption, update-burst, plus the crash
      points wal-append, checkpoint-write, adopt-persist, which abort
      the process mid-write — pair them with --persist-dir; @N = the
      N-th evaluation fires); the run prints the per-attempt health
      timeline and the final HealthReport.
      --persist-dir DIR attaches crash-consistent persistence: every
      admitted update is write-ahead logged under DIR, the run
      checkpoints on attach and at exit, and a kill -9 at any instant
      is recoverable with `neurocuts recover`
  lifecycle-bench --rules FILE [--updates N] [--trace N] [--timesteps N]
                  [--readers R] [--retrain-churn C] [--seed S]
                  [--fault-schedule SPEC] [--persist-dir DIR]
      the full churn → retrain → hot-swap loop: train an initial
      classifier, churn it under concurrent readers, let the
      background lifecycle worker retrain and verify-swap the
      optimised tree, and compare the result against a fresh train on
      the final rules; exits non-zero on any divergence or if no swap
      was adopted. --fault-schedule (same SPEC as update-bench) arms
      injected faults across the whole loop and reports recovery.
      --persist-dir (as in update-bench) additionally checkpoints
      after every adopted retrain
  recover  --persist-dir DIR [--rules FILE] [--trace N] [--seed S]
      rebuild the live classifier from DIR after a crash: load the
      newest valid checkpoint, truncate any torn write-ahead-log
      tail, replay the logged updates through admission control,
      prove the result against the linear-scan ground truth, and
      fold everything into a fresh checkpoint; with --rules the
      recovered tree is additionally verified over a synthetic trace
  stats    --tree TREE.json
      print a saved tree's statistics";

/// Parse `--fault-schedule` into a shared injector (`None` when the
/// flag is absent or the spec arms nothing).
fn parse_fault_schedule(args: &Args) -> Result<Option<std::sync::Arc<FaultInjector>>, String> {
    match args.get("fault-schedule") {
        Some(spec) => {
            let schedule = FaultSchedule::parse(spec).map_err(|e| e.to_string())?;
            if schedule.is_empty() {
                return Ok(None);
            }
            eprintln!("fault schedule armed: {schedule}");
            Ok(Some(std::sync::Arc::new(schedule.injector())))
        }
        None => Ok(None),
    }
}

/// Per-point firing report after a fault-injected run.
fn print_fault_outcome(faults: &FaultInjector) {
    for point in FAULT_POINTS {
        println!(
            "fault {:<16} fired {}/{} (evaluated {} times)",
            point.name(),
            faults.fired(point),
            faults.schedule().armed(point).len(),
            faults.evaluated(point)
        );
    }
}

fn read_rules(path: &str) -> Result<RuleSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_rules(&text).map_err(|e| format!("{path}: {e}"))
}

fn read_tree(path: &str) -> Result<DecisionTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    DecisionTree::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn write_out(out: Option<&str>, content: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
        }
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

/// `neurocuts generate`.
pub fn generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let family = match args.required("family")? {
        "acl" => ClassifierFamily::Acl,
        "fw" => ClassifierFamily::Fw,
        "ipc" => ClassifierFamily::Ipc,
        other => return Err(format!("unknown family {other:?} (acl|fw|ipc)")),
    };
    let size: usize = args.required("size")?.parse().map_err(|_| "bad --size")?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let cfg = GeneratorConfig::new(family, size).with_seed(seed);
    let rules = generate_rules(&cfg);
    eprintln!("generated {} ({} rules)", cfg.label(), rules.len());
    write_out(args.get("out"), &write_rules(&rules))
}

/// `neurocuts train`: the full train → compile → serve pipeline.
///
/// Trains with the vectorised collector (`--envs` lockstep
/// environments, `--workers` threads, batched policy inference), then
/// closes the loop the way a deployment would: the best tree is
/// compiled to a [`FlatTree`], verified packet-for-packet against the
/// linear-scan ground truth, and pushed through the PR-2 sharded
/// serving engine to report end-to-end lookup throughput.
pub fn train(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let rules = read_rules(args.required("rules")?)?;
    let timesteps: usize = args.parse_or("timesteps", 60_000)?;
    let c: f64 = args.parse_or("c", 1.0)?;
    if !(0.0..=1.0).contains(&c) {
        return Err("--c must be in [0, 1]".into());
    }
    let partition = match args.or("partition", "simple").as_str() {
        "none" => PartitionMode::None,
        "simple" => PartitionMode::Simple,
        "efficuts" => PartitionMode::EffiCuts,
        other => return Err(format!("unknown partition mode {other:?}")),
    };
    let seed: u64 = args.parse_or("seed", 0)?;
    let threads: usize =
        args.parse_or("threads", std::thread::available_parallelism().map_or(1, |t| t.get()))?;
    let serve_trace: usize = args.parse_or("serve-trace", 20_000)?;
    let mut cfg = NeuroCutsConfig::small(timesteps)
        .with_coeff(c)
        .with_partition_mode(partition)
        .with_seed(seed);
    cfg.num_envs = args.parse_or("envs", cfg.num_envs)?;
    cfg.workers = args.parse_or("workers", threads)?;

    eprintln!(
        "training on {} rules for up to {timesteps} timesteps ({} envs, {} workers)...",
        rules.len(),
        cfg.num_envs,
        cfg.workers
    );
    let mut trainer = Trainer::new(rules.clone(), cfg).map_err(|e| e.to_string())?;
    let report = trainer.train().map_err(|e| e.to_string())?;
    for h in &report.history {
        eprintln!(
            "  iter {:>3}: {:>7} steps  mean return {:>10.2}  best {:>8.1}",
            h.iteration, h.timesteps, h.mean_return, h.best_objective
        );
    }
    let (tree, stats) = match report.best {
        Some(b) => (b.tree, b.stats),
        None => trainer.greedy_tree(),
    };
    eprintln!("best tree: {stats}");

    // Compile to the serving form and prove it correct before it is
    // allowed anywhere near traffic.
    let flat = FlatTree::compile(&tree);
    eprintln!(
        "compiled: {} nodes, {} rules, {} resident bytes",
        flat.num_nodes(),
        flat.num_rules(),
        flat.resident_bytes()
    );
    if serve_trace > 0 {
        let trace = generate_trace(&rules, &TraceConfig::new(serve_trace).with_seed(seed));
        for p in &trace {
            let got = flat.classify_checked(&tree, p).map_err(|e| e.to_string())?;
            if got != rules.classify(p) {
                return Err(format!("trained tree diverged from the linear scan at {p}"));
            }
        }
        eprintln!("verified {} packets against the linear-scan ground truth", trace.len());
        let (_, engine) = run_engine(&flat, &trace, EngineConfig::new(threads));
        eprintln!(
            "serving engine {:>2}t  {:>10.0} pkts/s ({:.2} Mpps)",
            engine.threads,
            engine.packets_per_sec,
            engine.packets_per_sec / 1e6
        );
    }
    write_out(args.get("out"), &tree.to_json())
}

/// `neurocuts build`.
pub fn build(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let rules = read_rules(args.required("rules")?)?;
    let algo = args.required("algo")?;
    let tree = match algo {
        "hicuts" => baselines::build_hicuts(&rules, &baselines::HiCutsConfig::default()),
        "hypercuts" => baselines::build_hypercuts(&rules, &baselines::HyperCutsConfig::default()),
        "hypersplit" => {
            baselines::build_hypersplit(&rules, &baselines::HyperSplitConfig::default())
        }
        "efficuts" => baselines::build_efficuts(&rules, &baselines::EffiCutsConfig::default()),
        "cutsplit" => baselines::build_cutsplit(&rules, &baselines::CutSplitConfig::default()),
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    eprintln!("{algo}: {}", TreeStats::compute(&tree));
    write_out(args.get("out"), &tree.to_json())
}

/// `neurocuts classify`.
pub fn classify(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let tree = read_tree(args.required("tree")?)?;
    let rules = read_rules(args.required("rules")?)?;
    let n: usize = args.parse_or("trace", 10_000)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let trace = generate_trace(&rules, &TraceConfig::new(n).with_seed(seed));

    let start = std::time::Instant::now();
    let mut matched = 0usize;
    let mut mismatches = 0usize;
    for p in &trace {
        let got = tree.classify(p);
        if got.is_some() {
            matched += 1;
        }
        if got != rules.classify(p) {
            mismatches += 1;
        }
    }
    let elapsed = start.elapsed();
    println!(
        "{} packets: {} matched, {} ground-truth mismatches, {:.1} ns/lookup ({:.2} Mpps)",
        trace.len(),
        matched,
        mismatches,
        elapsed.as_nanos() as f64 / trace.len() as f64 / 2.0, // tree + scan per packet
        trace.len() as f64 / elapsed.as_secs_f64() / 1e6
    );
    if mismatches > 0 {
        return Err(format!("{mismatches} mismatches against the linear scan"));
    }
    println!("tree verified against the linear-scan ground truth");
    Ok(())
}

/// `neurocuts serve-bench`.
pub fn serve_bench(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let tree = read_tree(args.required("tree")?)?;
    let rules = read_rules(args.required("rules")?)?;
    let n: usize = args.parse_or("trace", 100_000)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let threads: usize =
        args.parse_or("threads", std::thread::available_parallelism().map_or(1, |t| t.get()))?;
    let passes: usize = args.parse_or("passes", 20)?;
    let trace = generate_trace(&rules, &TraceConfig::new(n).with_seed(seed));

    let flat = FlatTree::compile(&tree);
    eprintln!(
        "compiled: {} nodes, {} rules, {} resident bytes",
        flat.num_nodes(),
        flat.num_rules(),
        flat.resident_bytes()
    );

    // Correctness first: the compiled tree must agree with the source
    // tree before its throughput means anything. The checked lookup
    // also proves the snapshot is not stale (generation match).
    let mut expect = vec![None; trace.len()];
    flat.classify_batch_checked(&tree, &trace, &mut expect).map_err(|e| e.to_string())?;
    for (p, &want) in trace.iter().zip(&expect) {
        let scalar = flat.classify_checked(&tree, p).map_err(|e| e.to_string())?;
        if scalar != want || tree.classify(p) != want {
            return Err(format!("serving paths disagree at {p}"));
        }
    }

    let start = std::time::Instant::now();
    let mut hits = 0usize;
    for _ in 0..passes {
        hits = trace.iter().filter(|p| flat.classify(p).is_some()).count();
    }
    let scalar = (trace.len() * passes) as f64 / start.elapsed().as_secs_f64();
    println!("scalar      1t  {:>10.0} pkts/s  ({hits}/{} matched)", scalar, trace.len());

    let (_, batch) = run_engine(&flat, &trace, EngineConfig::new(1).with_passes(passes));
    println!("flat-batch  1t  {:>10.0} pkts/s", batch.packets_per_sec);

    let (out, engine) = run_engine(&flat, &trace, EngineConfig::new(threads).with_passes(passes));
    println!("engine     {:>2}t  {:>10.0} pkts/s", engine.threads, engine.packets_per_sec);
    if out != expect {
        return Err("engine results diverged from the batched path".into());
    }
    println!("all serving paths verified bit-identical");
    Ok(())
}

/// `neurocuts update-bench`: live classifier updates under traffic.
///
/// Builds a [`ClassifierHandle`] around the saved tree, spawns reader
/// threads that serve a synthetic trace through epoch-swapped
/// snapshots, and replays a seeded insert/delete schedule against the
/// handle. With `--auto-retrain true`, a background [`LifecycleWorker`]
/// runs alongside the replay and hot-swaps a freshly retrained tree
/// when the churn trigger fires. Afterwards the final snapshot is
/// verified bit-identical to a from-scratch recompile of the updated
/// tree.
pub fn update_bench(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let tree = read_tree(args.required("tree")?)?;
    let rules = read_rules(args.required("rules")?)?;
    let updates: usize = args.parse_or("updates", 1000)?;
    let n: usize = args.parse_or("trace", 50_000)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let threads: usize =
        args.parse_or("threads", std::thread::available_parallelism().map_or(1, |t| t.get()))?;
    let max_churn: f64 = args.parse_or("churn", 0.10)?;
    if !max_churn.is_finite() || max_churn <= 0.0 {
        return Err("--churn must be a positive fraction".into());
    }
    let auto_retrain: bool = args.parse_or("auto-retrain", false)?;
    let retrain_churn: f64 = args.parse_or("retrain-churn", 0.25)?;
    let train_timesteps: usize = args.parse_or("timesteps", 3_000)?;
    let faults = parse_fault_schedule(&args)?;
    let persistence = args.get("persist-dir").map(|dir| {
        Persistence::with_config(
            dir,
            PersistConfig { faults: faults.clone(), ..PersistConfig::default() },
        )
    });
    let trace = generate_trace(&rules, &TraceConfig::new(n).with_seed(seed));

    let policy = RebuildPolicy { max_churn, min_updates: 8, max_overlay: 256 };
    let handle = ClassifierHandle::new(tree, policy);
    if let Some(p) = &persistence {
        let ck = p.checkpoint(&handle, seed).map_err(|e| e.to_string())?;
        eprintln!(
            "persistence attached: {} (generation {}, wal-logged from here)",
            p.dir().display(),
            ck.generation
        );
    }
    eprintln!(
        "live handle: {} rules, epoch {}, rebuild at {:.0}% churn",
        handle.stats().active_rules,
        handle.epoch(),
        max_churn * 100.0
    );

    let live: Vec<usize> =
        (0..rules.len()).filter(|&id| handle.with_tree(|t| t.is_active(id))).collect();
    let mut schedule = ChurnSchedule::new(rules.rules().to_vec(), live, seed ^ 0x5eed);
    if let Some(faults) = &faults {
        schedule = schedule.with_faults(faults.clone());
    }
    let worker = auto_retrain.then(|| {
        let mut lc = LifecycleConfig::new(NeuroCutsConfig::small(train_timesteps).with_seed(seed));
        lc.trigger =
            RetrainTrigger { min_churn: retrain_churn, min_updates: 32, max_drift: f64::INFINITY };
        lc.faults = faults.clone();
        lc.persist = persistence.clone();
        LifecycleWorker::new(lc, &handle)
    });
    let stop = std::sync::atomic::AtomicBool::new(false);
    let ((churn_secs, served), lc_report) = std::thread::scope(|scope| {
        let worker_thread = worker.map(|w| {
            let (handle, trace, stop) = (&handle, &trace, &stop);
            scope.spawn(move || w.run(handle, trace, stop, std::time::Duration::from_millis(20)))
        });
        let measured = serve_during(&handle, &trace, threads.max(1), || {
            let start = std::time::Instant::now();
            for i in 0..updates {
                schedule.step(&handle);
                if (i + 1).is_multiple_of((updates / 10).max(1)) {
                    eprintln!(
                        "  {:>6}/{updates} updates  epoch {}  rebuilds {}  retrains {}  overlay {}",
                        i + 1,
                        handle.epoch(),
                        handle.stats().rebuilds,
                        handle.stats().retrains,
                        handle.stats().overlay_len
                    );
                }
            }
            start.elapsed().as_secs_f64()
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let lc_report = worker_thread.map(|t| t.join().expect("lifecycle worker thread"));
        (measured, lc_report)
    });

    let stats = handle.stats();
    let applied_per_sec = updates as f64 / churn_secs.max(1e-9);
    let sustained_mpps = served as f64 / churn_secs.max(1e-9) / 1e6;
    println!("updates applied   {updates} ({applied_per_sec:>10.0} updates/s)");
    println!("rebuilds          {} (epoch {})", stats.rebuilds, stats.epoch);
    println!("sustained serving {threads} readers  {sustained_mpps:>8.2} Mpps during churn");
    if let Some(report) = &lc_report {
        println!(
            "auto-retrain      {} attempt(s), {} adopted ({} trigger polls)",
            report.retrains,
            report.adopted(),
            report.polls
        );
        for e in &report.events {
            match &e.skipped {
                None => println!(
                    "  seed {}: {:.0}% churn -> depth {} -> {}, reconciled +{}/-{}, \
                     spot-checked {}, epoch {}",
                    e.train_seed,
                    e.churn * 100.0,
                    e.depth_before,
                    e.depth_after,
                    e.reconciled_inserts,
                    e.reconciled_deletes,
                    e.spot_checked,
                    e.epoch
                ),
                Some(why) => println!(
                    "  seed {} skipped: {why} (failures {}, backoff {}ms{}{})",
                    e.train_seed,
                    e.failures_after,
                    e.backoff_ms,
                    if e.fallback_rebuild { ", fallback rebuild" } else { "" },
                    if e.degraded { ", degraded" } else { "" }
                ),
            }
        }
    }
    println!("updates rejected  {} (admission control)", schedule.rejected());
    println!("health            {}", handle.health());
    if let Some(faults) = &faults {
        print_fault_outcome(faults);
    }

    // Correctness gate: the final snapshot must equal a full recompile.
    if let Some(p) = find_rebuild_divergence(&handle, &trace) {
        return Err(format!("snapshot diverged from full rebuild at {p}"));
    }
    println!("final snapshot verified bit-identical to a full rebuild");
    if let Some(p) = &persistence {
        let ck = p.checkpoint(&handle, seed).map_err(|e| e.to_string())?;
        println!(
            "final checkpoint  generation {} ({} bytes, folded {} wal record(s))",
            ck.generation, ck.bytes, ck.folded_records
        );
    }

    // And the live engine agrees too.
    let mut got = vec![None; trace.len()];
    handle.snapshot().classify_batch(&trace, &mut got);
    let (out, report) = run_live_engine(&handle, &trace, EngineConfig::new(threads));
    if out != got {
        return Err("live engine diverged from the snapshot".into());
    }
    println!(
        "live engine       {:>2}t  {:>10.0} pkts/s (epoch {}..{})",
        report.threads, report.packets_per_sec, report.min_epoch, report.max_epoch
    );
    Ok(())
}

/// `neurocuts lifecycle-bench`: the churn → retrain → hot-swap loop.
///
/// Trains an initial classifier, serves it through a
/// [`ClassifierHandle`] while a seeded churn schedule mutates the rule
/// set, then lets a [`LifecycleWorker`] detect the accumulated churn,
/// retrain on a frozen snapshot, verify the graft against the
/// linear-scan ground truth, and publish it through one epoch swap —
/// measuring sustained Mpps in every phase. Finishes by training a
/// fresh classifier on the *final* rules and comparing depths: the
/// auto-retrained tree should be close to what a from-scratch deploy
/// would give.
pub fn lifecycle_bench(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let rules = read_rules(args.required("rules")?)?;
    let updates: usize = args.parse_or("updates", 1_000)?;
    let n: usize = args.parse_or("trace", 20_000)?;
    let timesteps: usize = args.parse_or("timesteps", 3_000)?;
    let readers: usize = args.parse_or("readers", 2)?;
    let retrain_churn: f64 = args.parse_or("retrain-churn", 0.25)?;
    if !retrain_churn.is_finite() || retrain_churn <= 0.0 {
        return Err("--retrain-churn must be a positive fraction".into());
    }
    let seed: u64 = args.parse_or("seed", 0)?;
    let faults = parse_fault_schedule(&args)?;
    let persistence = args.get("persist-dir").map(|dir| {
        Persistence::with_config(
            dir,
            PersistConfig { faults: faults.clone(), ..PersistConfig::default() },
        )
    });
    let trace = generate_trace(&rules, &TraceConfig::new(n).with_seed(seed));
    let train_cfg = NeuroCutsConfig::small(timesteps).with_seed(seed);

    eprintln!("training the initial classifier on {} rules...", rules.len());
    let (tree, stats, _) = retrain_snapshot(&rules, &train_cfg, seed).map_err(|e| e.to_string())?;
    eprintln!("initial tree: {stats}");
    let handle = ClassifierHandle::new((*tree).clone(), RebuildPolicy::default_policy());
    if let Some(p) = &persistence {
        let ck = p.checkpoint(&handle, seed).map_err(|e| e.to_string())?;
        eprintln!(
            "persistence attached: {} (generation {}, wal-logged from here)",
            p.dir().display(),
            ck.generation
        );
    }

    let mut lc = LifecycleConfig::new(train_cfg.clone());
    lc.trigger =
        RetrainTrigger { min_churn: retrain_churn, min_updates: 32, max_drift: f64::INFINITY };
    lc.faults = faults.clone();
    lc.persist = persistence.clone();
    let mut worker = LifecycleWorker::new(lc, &handle);
    let tl = TimelineConfig {
        updates,
        readers: readers.max(1),
        measure_ms: 400,
        schedule_seed: seed ^ 0x11fe,
        check_every: (updates / 8).max(1),
        faults: faults.clone(),
    };
    let report = churn_retrain_timeline(&handle, &rules, &trace, &mut worker, &tl);

    println!("phase      secs     Mpps  updates  epoch  rebuilds  retrains  depth  overlay");
    for r in &report.phases {
        println!(
            "{:<9} {:>5.2} {:>8.2} {:>8} {:>6} {:>9} {:>9} {:>6} {:>8}",
            r.phase, r.secs, r.mpps, r.updates, r.epoch, r.rebuilds, r.retrains, r.depth, r.overlay
        );
    }
    println!("differential checks: {} run, {} divergences", report.checks, report.divergences);

    let lc_report = worker.into_report();
    for e in &lc_report.events {
        match &e.skipped {
            None => println!(
                "retrain (seed {}): {:.0}% churn, {} timesteps in {:.2}s, depth {} -> {}, \
                 reconciled +{}/-{}, spot-checked {} packets, published epoch {}",
                e.train_seed,
                e.churn * 100.0,
                e.timesteps,
                e.train_secs,
                e.depth_before,
                e.depth_after,
                e.reconciled_inserts,
                e.reconciled_deletes,
                e.spot_checked,
                e.epoch
            ),
            Some(why) => println!(
                "retrain (seed {}) skipped: {why} (failures {}, backoff {}ms{}{})",
                e.train_seed,
                e.failures_after,
                e.backoff_ms,
                if e.fallback_rebuild { ", fallback rebuild" } else { "" },
                if e.degraded { ", degraded" } else { "" }
            ),
        }
    }
    println!("updates rejected  {} (admission control)", report.rejected);
    if let Some(p) = &persistence {
        let ck = p.checkpoint(&handle, seed).map_err(|e| e.to_string())?;
        println!(
            "final checkpoint  generation {} ({} bytes, folded {} wal record(s))",
            ck.generation, ck.bytes, ck.folded_records
        );
    }
    println!("health            {}", handle.health());
    if let Some(faults) = &faults {
        print_fault_outcome(faults);
    }

    // The staleness comparator: how does the auto-retrained classifier
    // compare with training from scratch on the rules we ended up with?
    let final_rules = handle.rule_snapshot();
    let (_, fresh, _) =
        retrain_snapshot(final_rules.rules(), &train_cfg, seed).map_err(|e| e.to_string())?;
    let served_depth = handle.with_tree(TreeStats::compute).time;
    println!(
        "auto-retrained depth {served_depth} vs fresh-trained depth {} on the final {} rules \
         (ratio {:.2})",
        fresh.time,
        final_rules.len(),
        served_depth as f64 / fresh.time.max(1) as f64
    );

    if report.divergences > 0 {
        return Err(format!("{} differential checks diverged", report.divergences));
    }
    // Under fault injection a run may legitimately end degraded: the
    // fallback rebuild *is* the recovery path, so it satisfies the
    // "the loop did something" gate too.
    if lc_report.adopted() == 0 && lc_report.fallback_rebuilds() == 0 {
        return Err("no retrain was adopted — raise --updates or lower --retrain-churn".into());
    }
    println!(
        "lifecycle verified: every epoch certified, {} swap(s) adopted, {} fallback rebuild(s)",
        lc_report.adopted(),
        lc_report.fallback_rebuilds()
    );
    Ok(())
}

/// `neurocuts recover`: rebuild a serving classifier from a persist
/// directory after a crash.
///
/// Loads the newest checkpoint that reads back clean, truncates any
/// torn write-ahead-log tail, replays the logged updates through the
/// normal admission path, proves the result against the linear-scan
/// ground truth, and folds everything into a fresh generation — the
/// handle that comes back is already serving-safe. With `--rules` the
/// recovered tree is additionally verified over a synthetic trace.
pub fn recover(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let dir = std::path::PathBuf::from(args.required("persist-dir")?);
    let n: usize = args.parse_or("trace", 10_000)?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let probes = match args.get("rules") {
        Some(path) => {
            let rules = read_rules(path)?;
            generate_trace(&rules, &TraceConfig::new(n).with_seed(seed))
        }
        None => Vec::new(),
    };

    let started = std::time::Instant::now();
    let (handle, report) = neurocuts::recover(
        &dir,
        RebuildPolicy::default_policy(),
        &probes,
        &PersistConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let ms = started.elapsed().as_secs_f64() * 1e3;

    println!("recovered from {} in {ms:.1} ms", dir.display());
    println!("  base generation  {}", report.base_generation);
    println!("  wal replayed     {} record(s)", report.replayed);
    println!("  epoch            {}", report.epoch);
    println!("  train seed       {}", report.train_seed);
    println!("  spot checked     {} probe(s) against the linear scan", report.spot_checked);
    println!("  new generation   {}", report.new_generation);
    match &report.truncated_tail {
        Some(note) => println!("  torn tail        {note}"),
        None => println!("  torn tail        none"),
    }
    for skipped in &report.skipped_checkpoints {
        println!("  skipped          {skipped}");
    }
    println!("  rules            {}", handle.stats().active_rules);
    println!("health            {}", handle.health());
    Ok(())
}

/// `neurocuts stats`.
pub fn stats(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let tree = read_tree(args.required("tree")?)?;
    let stats = TreeStats::compute(&tree);
    println!("{stats}");
    println!("{}", dtree::LevelProfile::compute(&tree).render_ascii(48));
    Ok(())
}
