//! Minimal `--flag value` argument parsing.

use std::collections::HashMap;

/// Parsed `--key value` pairs.
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse `--key value` pairs; rejects stray positionals and
    /// flags without values.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let key =
                flag.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
            let value = it.next().ok_or_else(|| format!("--{key} requires a value"))?;
            values.insert(key.to_string(), value.clone());
        }
        Ok(Args { values })
    }

    /// An optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag with a default.
    pub fn or(&self, key: &str, default: &str) -> String {
        self.values.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// An optional parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&argv(&["--size", "100", "--family", "acl"])).unwrap();
        assert_eq!(a.required("size").unwrap(), "100");
        assert_eq!(a.or("family", "fw"), "acl");
        assert_eq!(a.or("seed", "7"), "7");
        assert_eq!(a.parse_or::<usize>("size", 0).unwrap(), 100);
    }

    #[test]
    fn rejects_missing_values_and_positionals() {
        assert!(Args::parse(&argv(&["--size"])).is_err());
        assert!(Args::parse(&argv(&["size", "100"])).is_err());
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert!(a.required("rules").is_err());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let a = Args::parse(&argv(&["--size", "lots"])).unwrap();
        let e = a.parse_or::<usize>("size", 0).unwrap_err();
        assert!(e.contains("--size"));
    }
}
