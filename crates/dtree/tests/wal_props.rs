//! Write-ahead-log property tests: damage of any kind — a flipped
//! byte, truncation at every possible offset, reordered records — must
//! surface as a typed error or a truncatable tail, never as a panic
//! and **never as a silently wrong replay** (every record a damaged
//! image does decode must be byte-for-byte one of the originals, in
//! order, from the front).

use classbench::Rule;
use dtree::wal::{
    self, encode_record, read_wal_bytes, WalError, WalRecord, WAL_HEADER_LEN, WAL_MAGIC,
};
use proptest::prelude::*;

/// Decode one drawn tuple into a record. Rules take arbitrary range
/// bytes on purpose: the WAL frames and checksums payloads without
/// judging them, so the codec must round-trip anything.
fn decode_drawn(kind: u8, id: u64, ranges: Vec<(u64, u64)>, priority: i32) -> WalRecord {
    match kind % 4 {
        0 => {
            let mut rule = Rule::default_rule(priority);
            for (r, (lo, hi)) in rule.ranges.iter_mut().zip(ranges) {
                r.lo = lo;
                r.hi = hi;
            }
            WalRecord::Insert { id: id as usize, rule }
        }
        1 => WalRecord::Delete { id: id as usize },
        2 => WalRecord::Rebuild,
        _ => WalRecord::Adopt,
    }
}

fn drawn_records(at_least: usize) -> impl Strategy<Value = Vec<WalRecord>> {
    proptest::collection::vec(
        (
            0u8..=255,
            0u64..=u64::MAX,
            proptest::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 5..6),
            i32::MIN..=i32::MAX,
        )
            .prop_map(|(k, id, ranges, prio)| decode_drawn(k, id, ranges, prio)),
        at_least..16,
    )
}

/// A complete on-disk WAL image: header + every record encoded at its
/// sequential LSN (exactly what `WalWriter` produces).
fn wal_image(start_lsn: u64, records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&WAL_MAGIC);
    bytes.extend_from_slice(&start_lsn.to_be_bytes());
    for (i, r) in records.iter().enumerate() {
        bytes.extend_from_slice(&encode_record(start_lsn + i as u64, r));
    }
    bytes
}

/// Whatever a damaged image yields, the decoded records must be an
/// exact in-order prefix of the originals — the "never silently wrong"
/// half of every property below.
fn assert_exact_prefix(decoded: &[WalRecord], originals: &[WalRecord]) {
    assert!(decoded.len() <= originals.len(), "decoded more records than were written");
    for (i, r) in decoded.iter().enumerate() {
        assert_eq!(r, &originals[i], "record {i} decoded differently than written");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single byte anywhere in the image is detected:
    /// a typed hard error (bad magic, LSN mismatch) or a reported
    /// tail — and the surviving records are an exact prefix.
    #[test]
    fn prop_single_byte_corruption_is_detected(
        records in drawn_records(1),
        start_lsn in 0u64..1_000_000,
        flip_raw in 0usize..1_000_000,
        flip_with in 1u8..=255,
    ) {
        let clean = wal_image(start_lsn, &records);
        let baseline = read_wal_bytes(&clean).expect("clean image must read");
        prop_assert!(baseline.tail.is_none());
        prop_assert_eq!(baseline.records.len(), records.len());

        let mut dirty = clean.clone();
        let at = flip_raw % dirty.len();
        dirty[at] ^= flip_with;

        match read_wal_bytes(&dirty) {
            Err(_) => {} // typed hard error — detected
            Ok(out) => {
                assert_exact_prefix(&out.records, &records);
                prop_assert!(
                    out.tail.is_some() || out.records.len() < records.len(),
                    "flip of byte {} went completely undetected",
                    at
                );
            }
        }
    }

    /// Truncating the image at *every* possible offset yields the exact
    /// prefix of complete records, reports the torn tail, and hands
    /// back a `valid_len` that re-reads clean — the contract recovery's
    /// tail repair is built on.
    #[test]
    fn prop_truncation_at_every_offset_yields_a_clean_prefix(
        records in drawn_records(1),
        start_lsn in 0u64..1_000_000,
        cut_raw in 0usize..1_000_000,
    ) {
        let clean = wal_image(start_lsn, &records);
        let cut = cut_raw % (clean.len() + 1); // every offset incl. full length
        let torn = &clean[..cut];

        let out = read_wal_bytes(torn).expect("truncation is never a hard error");
        assert_exact_prefix(&out.records, &records);
        if cut < WAL_HEADER_LEN {
            prop_assert!(matches!(out.tail, Some(WalError::TornHeader { .. })));
            prop_assert_eq!(out.valid_len, 0);
        } else {
            prop_assert!(out.valid_len as usize <= cut);
            if cut == clean.len() {
                prop_assert!(out.tail.is_none(), "a full image has no tail");
                prop_assert_eq!(out.records.len(), records.len());
            } else {
                // Mid-record cuts report a torn tail; cuts exactly on a
                // record boundary read clean with fewer records.
                prop_assert_eq!(out.tail.is_some(), out.valid_len as usize != cut);
            }
            // The repaired image (what `truncate_wal` would leave on
            // disk) must read back clean with the same records.
            let repaired = read_wal_bytes(&torn[..out.valid_len as usize])
                .expect("repaired image must read");
            prop_assert!(repaired.tail.is_none());
            prop_assert_eq!(&repaired.records, &out.records);
            prop_assert_eq!(repaired.next_lsn, out.next_lsn);
        }
    }

    /// Swapping any two records (framing intact, checksums valid) is a
    /// hard `LsnMismatch` — reordering cannot be repaired by truncation
    /// and must never replay.
    #[test]
    fn prop_reordered_records_are_a_hard_error(
        records in drawn_records(2),
        start_lsn in 0u64..1_000_000,
        a_raw in 0usize..1_000_000,
        off_raw in 0usize..1_000_000,
    ) {
        let a = a_raw % records.len();
        let b = (a + 1 + off_raw % (records.len() - 1)) % records.len();

        // Encode each record at its true LSN, then lay the blocks down
        // with positions a and b exchanged.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&start_lsn.to_be_bytes());
        let mut order: Vec<usize> = (0..records.len()).collect();
        order.swap(a, b);
        for &i in &order {
            bytes.extend_from_slice(&encode_record(start_lsn + i as u64, &records[i]));
        }

        match read_wal_bytes(&bytes) {
            Err(WalError::LsnMismatch { .. }) => {}
            other => prop_assert!(false, "reordering must be LsnMismatch, got {other:?}"),
        }
    }

    /// The codec itself round-trips anything: encode at an arbitrary
    /// LSN, read back, get the same records and the right next LSN.
    #[test]
    fn prop_encode_decode_round_trips(
        records in drawn_records(1),
        start_raw in 0u64..=u64::MAX,
    ) {
        // Keep start_lsn + len inside u64 (the writer never wraps).
        let start_lsn = start_raw.min(u64::MAX - records.len() as u64);
        let image = wal_image(start_lsn, &records);
        let out = read_wal_bytes(&image).expect("round trip");
        prop_assert!(out.tail.is_none());
        prop_assert_eq!(out.start_lsn, start_lsn);
        prop_assert_eq!(&out.records, &records);
        prop_assert_eq!(out.next_lsn, start_lsn + records.len() as u64);
        prop_assert_eq!(out.valid_len as usize, image.len());
    }
}

/// Non-property pin: `truncate_wal` + `valid_len` actually repair a
/// torn file on disk end to end.
#[test]
fn truncate_repairs_a_torn_file_on_disk() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("nc-walprops-{}.ncwal", std::process::id()));
    let records =
        vec![WalRecord::Rebuild, WalRecord::Delete { id: 3 }, WalRecord::Adopt, WalRecord::Rebuild];
    let mut image = wal_image(5, &records);
    image.truncate(image.len() - 2); // tear the last record
    std::fs::write(&path, &image).unwrap();

    let out = wal::read_wal(&path).unwrap();
    assert!(matches!(out.tail, Some(WalError::TornRecord { .. })));
    assert_eq!(out.records.len(), 3);
    wal::truncate_wal(&path, out.valid_len).unwrap();

    let repaired = wal::read_wal(&path).unwrap();
    assert!(repaired.tail.is_none());
    assert_eq!(repaired.records, records[..3]);
    assert_eq!(repaired.next_lsn, 8);
    std::fs::remove_file(&path).unwrap();
}
