//! Structural property tests: arbitrary random expansion sequences must
//! preserve every tree invariant — arena consistency, space tiling,
//! rule assignment by intersection, and lookup ≡ linear scan.

use classbench::{generate_rules, ClassifierFamily, Dim, GeneratorConfig, Packet};
use dtree::{DecisionTree, NodeKind};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha8Rng;

/// Expand `tree` with `steps` random operations drawn from `rng`.
fn random_expand(tree: &mut DecisionTree, rng: &mut ChaCha8Rng, steps: usize) {
    for _ in 0..steps {
        let leaves: Vec<usize> = tree
            .leaf_ids()
            .filter(|&id| tree.node(id).num_rules() > 2 && tree.is_separable(id))
            .collect();
        let Some(&id) = leaves.as_slice().choose(rng) else { return };
        let dims: Vec<Dim> = classbench::DIMS
            .iter()
            .copied()
            .filter(|&d| tree.node(id).space.range(d).len() >= 2)
            .collect();
        let Some(&dim) = dims.as_slice().choose(rng) else { continue };
        match rng.gen_range(0..4) {
            0 => {
                let ncuts = *[2usize, 4, 8].choose(rng).unwrap();
                tree.cut_node(id, dim, ncuts);
            }
            1 => {
                let range = *tree.node(id).space.range(dim);
                if range.len() >= 3 {
                    let t = rng.gen_range(range.lo + 1..range.hi);
                    tree.split_node(id, dim, t);
                } else {
                    tree.cut_node(id, dim, 2);
                }
            }
            2 => {
                // Partition into two arbitrary non-empty subsets.
                let rules = tree.rules_at(id).to_vec();
                if rules.len() >= 2 {
                    let k = rng.gen_range(1..rules.len());
                    let (a, b) = rules.split_at(k);
                    tree.partition_node(id, vec![a.to_vec(), b.to_vec()]);
                }
            }
            _ => {
                let kids = tree.cut_node(id, dim, 2);
                for k in kids {
                    tree.truncate_covered(k);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_random_expansions_keep_all_invariants(
        seed in 0u64..1000, steps in 1usize..25)
    {
        let rules = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Ipc, 80).with_seed(seed));
        let mut tree = DecisionTree::new(&rules);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        random_expand(&mut tree, &mut rng, steps);

        // (1) Arena consistency: children point back to their parent and
        // sit one level deeper; non-partition children tile the parent.
        for (id, node) in tree.nodes().iter().enumerate() {
            for &c in node.kind.children() {
                prop_assert_eq!(tree.node(c).parent, Some(id));
                prop_assert_eq!(tree.node(c).depth, node.depth + 1);
            }
            match &node.kind {
                NodeKind::Partition { children } => {
                    // Partition children share the parent's space and
                    // exactly cover its rules.
                    let mut all: Vec<usize> = children
                        .iter()
                        .flat_map(|&c| tree.rules_at(c).to_vec())
                        .collect();
                    all.sort_unstable();
                    let mut expect = tree.rules_at(id).to_vec();
                    expect.sort_unstable();
                    prop_assert_eq!(all, expect);
                    for &c in children {
                        prop_assert_eq!(tree.node(c).space, node.space);
                    }
                }
                k => {
                    // Space-dividing kinds: child volumes sum to parent.
                    let kids = k.children();
                    if !kids.is_empty() {
                        let vol: u128 =
                            kids.iter().map(|&c| tree.node(c).space.volume()).sum();
                        prop_assert_eq!(vol, node.space.volume());
                    }
                }
            }
        }

        // (2) Rule assignment: every leaf holds exactly the rules that
        // intersect its space, minus covered-rule truncation, which can
        // only *remove* shadowed rules (checked via lookup equivalence).
        for id in tree.leaf_ids() {
            let node = tree.node(id);
            for &r in tree.rules_at(id) {
                prop_assert!(node.space.intersects_rule(tree.rule(r)));
            }
        }

        // (3) Lookup equals the linear scan (includes the effect of
        // truncate_covered, which must never change results).
        let mut prng = ChaCha8Rng::seed_from_u64(seed ^ 0x7777);
        for _ in 0..40 {
            let p = Packet::new(
                prng.gen_range(0..1u64 << 32),
                prng.gen_range(0..1u64 << 32),
                prng.gen_range(0..1u64 << 16),
                prng.gen_range(0..1u64 << 16),
                prng.gen_range(0..256),
            );
            prop_assert_eq!(tree.classify(&p), tree.linear_classify(&p), "at {}", p);
            // Traced lookup agrees with plain lookup.
            prop_assert_eq!(tree.classify_traced(&p).0, tree.classify(&p));
        }

        // (4) Serialisation round-trip preserves everything observable.
        let restored = DecisionTree::from_json(&tree.to_json()).unwrap();
        prop_assert_eq!(restored.num_nodes(), tree.num_nodes());
        let p = Packet::new(1, 2, 3, 4, 6);
        prop_assert_eq!(restored.classify(&p), tree.classify(&p));
    }

    #[test]
    fn prop_stats_sane_after_random_expansion(seed in 0u64..500, steps in 1usize..20) {
        let rules = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(seed));
        let mut tree = DecisionTree::new(&rules);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9999);
        random_expand(&mut tree, &mut rng, steps);
        let stats = dtree::TreeStats::compute(&tree);
        prop_assert!(stats.time >= 1);
        prop_assert!(stats.max_depth < stats.nodes);
        prop_assert!(stats.leaves >= 1);
        prop_assert!(stats.bytes > 0);
        // Worst-case time bounds every individual lookup cost.
        let mut prng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..10 {
            let p = Packet::new(
                prng.gen_range(0..1u64 << 32),
                prng.gen_range(0..1u64 << 32),
                prng.gen_range(0..1u64 << 16),
                prng.gen_range(0..1u64 << 16),
                prng.gen_range(0..256),
            );
            prop_assert!(tree.classify_traced(&p).1 <= stats.time);
        }
    }
}
