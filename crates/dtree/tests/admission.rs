//! Admission-control property tests: `ClassifierHandle::insert` must
//! classify *any* rule — inverted ranges, empty ranges, bounds past the
//! dimension span, exact duplicates — into the right [`UpdateError`]
//! variant, never panic, and leave the published state untouched when
//! it refuses.

use classbench::{
    generate_rules, ClassifierFamily, Dim, DimRange, GeneratorConfig, Rule, RuleSet, DIMS,
};
use dtree::{ClassifierHandle, DecisionTree, RebuildPolicy, UpdateError};
use proptest::prelude::*;

fn seed_handle() -> ClassifierHandle {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 40).with_seed(7));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.cut_node(tree.root(), Dim::SrcIp, 4) {
        let _ = k;
    }
    ClassifierHandle::new(tree, RebuildPolicy::default_policy())
}

/// Decode one drawn `(a, b, kind)` triple into a range for `dim`:
/// kinds 0–2 are degenerate (inverted / empty / past the span), the
/// rest are well-formed ranges inside the span.
fn decode_range(dim: Dim, a: u64, b: u64, kind: u8) -> DimRange {
    let span = dim.span();
    match kind {
        // Inverted: lo strictly above hi. Constructed field-by-field —
        // `DimRange::new` debug-asserts against exactly this shape,
        // which is why admission has to catch it at the API boundary.
        0 => DimRange { lo: (a % span).max(b % span) + 1, hi: (a % span).min(b % span) },
        // Empty: lo == hi.
        1 => DimRange { lo: a % (span + 1), hi: a % (span + 1) },
        // Past the span: hi beyond the dimension's value space.
        2 => DimRange { lo: a % span, hi: span + 1 + (b % 1_000) },
        // Full span.
        3 => DimRange::full(dim),
        // Well-formed sub-range.
        _ => {
            let lo = a % span;
            DimRange { lo, hi: lo + 1 + (b % (span - lo)) }
        }
    }
}

/// The taxonomy the handle must report, re-derived independently:
/// dimensions are checked in `DIMS` order, inverted wins over
/// empty/overflow within one dimension.
fn expected_error(rule: &Rule) -> Option<UpdateError> {
    for dim in DIMS {
        let r = rule.range(dim);
        if r.lo > r.hi {
            return Some(UpdateError::InvertedRange { dim, lo: r.lo, hi: r.hi });
        }
        if r.lo == r.hi || r.hi > dim.span() {
            return Some(UpdateError::InvalidRange { dim, lo: r.lo, hi: r.hi });
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary (mostly malformed) rules: the exact error variant is
    /// predictable, nothing panics, and a refusal changes nothing.
    #[test]
    fn prop_insert_classifies_any_rule_into_the_right_error(
        draws in proptest::collection::vec(
            (0u64..(1u64 << 33), 0u64..(1u64 << 33), 0u8..8), 5),
        priority in -1000i32..1000)
    {
        let mut ranges = [DimRange::full(Dim::Proto); 5];
        for (i, dim) in DIMS.into_iter().enumerate() {
            let (a, b, kind) = draws[i];
            ranges[i] = decode_range(dim, a, b, kind);
        }
        let rule = Rule::new(ranges, priority);

        let handle = seed_handle();
        let epoch_before = handle.epoch();
        let stats_before = handle.stats();

        match (handle.insert(rule.clone()), expected_error(&rule)) {
            (Err(got), Some(want)) => {
                prop_assert_eq!(got.clone(), want);
                // A refusal is invisible to readers and to the stats...
                prop_assert_eq!(handle.epoch(), epoch_before);
                let stats = handle.stats();
                prop_assert_eq!(stats.active_rules, stats_before.active_rules);
                prop_assert_eq!(stats.total_inserted, stats_before.total_inserted);
                // ...but not to the health report.
                prop_assert_eq!(
                    handle.health().last_error, Some(got.to_string()));
            }
            (Ok(id), None) => {
                // Admitted: the id serves immediately.
                prop_assert!(handle.epoch() > epoch_before);
                prop_assert_eq!(
                    handle.stats().total_inserted,
                    stats_before.total_inserted + 1);
                prop_assert!(handle.delete(id).is_ok());
            }
            (Err(UpdateError::DuplicateRule(_)), None) => {
                // Legal only if the draw reproduced a seed rule exactly.
                prop_assert!(handle.epoch() == epoch_before);
            }
            (got, want) => prop_assert!(
                false, "admission mismatch: got {:?}, expected {:?}", got, want),
        }
    }

    /// Exact duplicates of an *active* rule are always refused with the
    /// surviving id; deleting the original re-opens admission.
    #[test]
    fn prop_duplicates_are_refused_while_active_and_admitted_after_delete(
        draws in proptest::collection::vec(
            (0u64..(1u64 << 33), 0u64..(1u64 << 33), 3u8..8), 5),
        priority in 0i32..100_000)
    {
        let mut ranges = [DimRange::full(Dim::Proto); 5];
        for (i, dim) in DIMS.into_iter().enumerate() {
            let (a, b, kind) = draws[i];
            ranges[i] = decode_range(dim, a, b, kind);
        }
        let rule = Rule::new(ranges, priority);
        prop_assert_eq!(expected_error(&rule), None, "kinds 3.. are well-formed");

        // Seed rules all carry negative priorities, so the drawn rule
        // (priority >= 0) can never collide with them.
        let seeds = RuleSet::from_ordered(
            (0..8).map(|i| Rule::default_rule(-1 - i)).collect());
        let handle = ClassifierHandle::new(
            DecisionTree::new(&seeds), RebuildPolicy::default_policy());

        let inserted = handle.insert(rule.clone());
        prop_assert!(inserted.is_ok(), "well-formed rule refused: {:?}", inserted);
        let id = inserted.unwrap();
        // Re-inserting the identical rule must name the surviving copy.
        prop_assert_eq!(
            handle.insert(rule.clone()), Err(UpdateError::DuplicateRule(id)));
        // The duplicate check only scans *active* rules.
        prop_assert!(handle.delete(id).is_ok());
        prop_assert!(handle.insert(rule.clone()).is_ok());
    }
}
