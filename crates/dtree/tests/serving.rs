//! Differential tests for the serving path: the scalar compiled
//! lookup, the batched wavefront lookup, and the sharded multi-core
//! engine must all return **bit-identical** rule ids to the arena
//! tree's `classify` — and, where rule ids are comparable, to the
//! `RuleSet` linear-scan ground truth — on every node kind
//! (Cut / MultiCut / DenseCut / Split / Partition) and on the
//! empty-leaf and deleted-rule edge cases.

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, DimRange, GeneratorConfig, Packet, Rule,
    RuleSet, TraceConfig,
};
use dtree::{classify_sharded, updates, DecisionTree, FlatTree};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha8Rng;

/// Assert every serving path agrees on `trace`.
///
/// `ruleset` enables the linear-scan ground-truth comparison; pass
/// `None` when the tree has diverged from the rule set (incremental
/// updates renumber nothing, but inserted rules are not in the set).
fn assert_all_paths_agree(tree: &DecisionTree, ruleset: Option<&RuleSet>, trace: &[Packet]) {
    let flat = FlatTree::compile(tree);
    let mut batch = vec![None; trace.len()];
    flat.classify_batch(trace, &mut batch);
    for threads in [1, 2, 4, 7] {
        let mut sharded = vec![None; trace.len()];
        classify_sharded(&flat, trace, &mut sharded, threads);
        assert_eq!(sharded, batch, "engine({threads}) diverged from batch");
    }
    for (p, &batched) in trace.iter().zip(&batch) {
        let scalar = flat.classify(p);
        let arena = tree.classify(p);
        assert_eq!(scalar, arena, "flat vs tree at {p}");
        assert_eq!(batched, scalar, "batch vs flat at {p}");
        assert_eq!(arena, tree.linear_classify(p), "tree vs arena linear scan at {p}");
        if let Some(rs) = ruleset {
            assert_eq!(arena, rs.classify(p), "tree vs RuleSet ground truth at {p}");
        }
    }
}

#[test]
fn cut_tree_all_paths_agree() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 300).with_seed(11));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.cut_node(tree.root(), Dim::SrcIp, 16) {
        if !tree.is_terminal(k, 8) {
            tree.cut_node(k, Dim::DstIp, 4);
        }
    }
    let trace = generate_trace(&rules, &TraceConfig::new(500).with_seed(12));
    assert_all_paths_agree(&tree, Some(&rules), &trace);
}

#[test]
fn multicut_tree_all_paths_agree() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 250).with_seed(13));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.multicut_node(tree.root(), &[(Dim::SrcIp, 4), (Dim::DstIp, 4)]) {
        if !tree.is_terminal(k, 8) && tree.dim_separable(k, Dim::DstPort) {
            tree.multicut_node(k, &[(Dim::DstPort, 4), (Dim::Proto, 2)]);
        }
    }
    let trace = generate_trace(&rules, &TraceConfig::new(500).with_seed(14));
    assert_all_paths_agree(&tree, Some(&rules), &trace);
}

#[test]
fn dense_cut_tree_all_paths_agree() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Ipc, 200).with_seed(15));
    let mut tree = DecisionTree::new(&rules);
    let range = *tree.node(tree.root()).space.range(Dim::SrcIp);
    let q = range.len() / 4;
    tree.dense_cut_node(
        tree.root(),
        Dim::SrcIp,
        vec![range.lo, range.lo + q / 2, range.lo + q, range.lo + 3 * q, range.hi],
    );
    let trace = generate_trace(&rules, &TraceConfig::new(500).with_seed(16));
    assert_all_paths_agree(&tree, Some(&rules), &trace);
}

#[test]
fn split_tree_all_paths_agree() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 200).with_seed(17));
    let mut tree = DecisionTree::new(&rules);
    let (l, r) = tree.split_node(tree.root(), Dim::DstPort, 1024);
    tree.split_node(l, Dim::SrcIp, 1 << 31);
    tree.split_node(r, Dim::Proto, 17);
    let trace = generate_trace(&rules, &TraceConfig::new(500).with_seed(18));
    assert_all_paths_agree(&tree, Some(&rules), &trace);
}

#[test]
fn partition_tree_all_paths_agree() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 200).with_seed(19));
    let mut tree = DecisionTree::new(&rules);
    let all = tree.rules_at(tree.root()).to_vec();
    let third = all.len() / 3;
    let (a, rest) = all.split_at(third);
    let (b, c) = rest.split_at(third);
    let parts = tree.partition_node(tree.root(), vec![a.to_vec(), b.to_vec(), c.to_vec()]);
    for p in parts {
        if !tree.is_terminal(p, 16) {
            tree.cut_node(p, Dim::SrcIp, 4);
        }
    }
    let trace = generate_trace(&rules, &TraceConfig::new(500).with_seed(20));
    assert_all_paths_agree(&tree, Some(&rules), &trace);
}

#[test]
fn empty_leaves_classify_to_none_on_every_path() {
    // No default rule: packets outside every rule fall through to None,
    // and cutting concentrates the rules so some leaves are empty.
    let mut narrow = Rule::default_rule(5);
    narrow.ranges[Dim::SrcIp.index()] = DimRange::new(0, 1 << 16);
    let mut other = Rule::default_rule(3);
    other.ranges[Dim::SrcIp.index()] = DimRange::new(1 << 20, 1 << 21);
    other.ranges[Dim::Proto.index()] = DimRange::exact(6);
    let rules = RuleSet::new(vec![narrow, other]);
    let mut tree = DecisionTree::new(&rules);
    tree.cut_node(tree.root(), Dim::SrcIp, 32);
    let flat = FlatTree::compile(&tree);
    // High src-ip space is uncovered: every path must return None.
    let miss = Packet::new(u64::from(u32::MAX) - 5, 0, 0, 0, 17);
    assert_eq!(tree.classify(&miss), None);
    assert_eq!(flat.classify(&miss), None);
    let hit = Packet::new(100, 0, 0, 0, 17);
    assert_eq!(flat.classify(&hit), Some(0));
    let trace: Vec<Packet> = (0..200u64)
        .map(|i| Packet::new((i * 7919) % (1 << 32), i % (1 << 32), i % 65536, i % 65536, i % 256))
        .collect();
    assert_all_paths_agree(&tree, Some(&rules), &trace);
}

#[test]
fn deleted_rules_are_invisible_to_every_path() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(21));
    let mut tree = DecisionTree::new(&rules);
    for k in tree.cut_node(tree.root(), Dim::DstIp, 8) {
        if !tree.is_terminal(k, 8) {
            tree.cut_node(k, Dim::SrcPort, 4);
        }
    }
    // Insert a shadowing rule, delete it again, and delete some
    // original rules outright.
    let top = tree.rules().iter().map(|r| r.priority).max().unwrap();
    let id = updates::insert_rule(&mut tree, Rule::default_rule(top + 1));
    updates::delete_rule(&mut tree, id).unwrap();
    for victim in [0usize, 7, 42] {
        if tree.is_active(victim) {
            updates::delete_rule(&mut tree, victim).unwrap();
        }
    }
    let flat = FlatTree::compile(&tree);
    assert_eq!(flat.num_rules(), tree.num_active_rules());
    // Rule ids in the tree no longer line up with the rule set
    // (deletions), so compare the tree-side paths only.
    let trace = generate_trace(&rules, &TraceConfig::new(400).with_seed(22));
    assert_all_paths_agree(&tree, None, &trace);
    for p in &trace {
        assert_ne!(flat.classify(p), Some(id), "deleted rule resurfaced at {p}");
    }
}

/// Expand `tree` with `steps` random operations covering all five node
/// kinds (the invariants suite exercises structure; here the point is
/// serving-path parity on every kind, including DenseCut/MultiCut).
fn random_expand_all_kinds(tree: &mut DecisionTree, rng: &mut ChaCha8Rng, steps: usize) {
    for _ in 0..steps {
        let leaves: Vec<usize> = tree
            .leaf_ids()
            .filter(|&id| tree.node(id).num_rules() > 2 && tree.is_separable(id))
            .collect();
        let Some(&id) = leaves.as_slice().choose(rng) else { return };
        let dims: Vec<Dim> = classbench::DIMS
            .iter()
            .copied()
            .filter(|&d| tree.node(id).space.range(d).len() >= 4)
            .collect();
        let Some(&dim) = dims.as_slice().choose(rng) else { continue };
        match rng.gen_range(0..5) {
            0 => {
                let ncuts = *[2usize, 4, 8, 16].choose(rng).unwrap();
                tree.cut_node(id, dim, ncuts);
            }
            1 => {
                let second: Vec<Dim> = dims.iter().copied().filter(|&d| d != dim).collect();
                match second.as_slice().choose(rng) {
                    Some(&d2) => tree.multicut_node(id, &[(dim, 2), (d2, 2)]),
                    None => tree.cut_node(id, dim, 2),
                };
            }
            2 => {
                // Quartile bounds: strictly increasing for any len >= 4.
                let range = *tree.node(id).space.range(dim);
                let len = range.len();
                tree.dense_cut_node(
                    id,
                    dim,
                    vec![range.lo, range.lo + len / 4, range.lo + len / 2, range.hi],
                );
            }
            3 => {
                let range = *tree.node(id).space.range(dim);
                let t = rng.gen_range(range.lo + 1..range.hi);
                tree.split_node(id, dim, t);
            }
            _ => {
                let rules = tree.rules_at(id).to_vec();
                let k = rng.gen_range(1..rules.len());
                let (a, b) = rules.split_at(k);
                tree.partition_node(id, vec![a.to_vec(), b.to_vec()]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_serving_paths_agree_on_random_trees(seed in 0u64..1000, steps in 1usize..20) {
        let rules = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Fw, 100).with_seed(seed));
        let mut tree = DecisionTree::new(&rules);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5e41);
        random_expand_all_kinds(&mut tree, &mut rng, steps);

        let flat = FlatTree::compile(&tree);
        prop_assert_eq!(flat.num_nodes(), tree.num_nodes());

        // Random valid packets plus a rule-biased trace.
        let mut prng = ChaCha8Rng::seed_from_u64(seed ^ 0xbead);
        let mut trace: Vec<Packet> = (0..60)
            .map(|_| Packet::new(
                prng.gen_range(0..1u64 << 32),
                prng.gen_range(0..1u64 << 32),
                prng.gen_range(0..1u64 << 16),
                prng.gen_range(0..1u64 << 16),
                prng.gen_range(0..256),
            ))
            .collect();
        trace.extend(generate_trace(&rules, &TraceConfig::new(60).with_seed(seed)));

        let mut batch = vec![None; trace.len()];
        flat.classify_batch(&trace, &mut batch);
        let mut sharded = vec![None; trace.len()];
        classify_sharded(&flat, &trace, &mut sharded, 3);
        for (i, p) in trace.iter().enumerate() {
            let arena = tree.classify(p);
            prop_assert_eq!(arena, rules.classify(p), "tree vs ground truth at {}", p);
            prop_assert_eq!(flat.classify(p), arena, "flat vs tree at {}", p);
            prop_assert_eq!(batch[i], arena, "batch vs tree at {}", p);
            prop_assert_eq!(sharded[i], arena, "engine vs tree at {}", p);
        }
    }
}
