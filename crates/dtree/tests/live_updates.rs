//! Differential churn tests for the live-update serving path.
//!
//! The claim under test: a [`ClassifierHandle`] serving snapshot —
//! compiled `FlatTree` + delete patches + insert overlay — is
//! **bit-identical** to a from-scratch `FlatTree::compile` of the
//! handle's current tree (and to the arena linear scan) after *every*
//! interleaved insert/delete, on every node kind, with duplicate
//! priorities and rules spanning multiple partition children, while
//! sharded engine readers hammer the handle concurrently.

use classbench::{
    generate_rules, generate_trace, ClassifierFamily, Dim, DimRange, GeneratorConfig, Packet, Rule,
    RuleSet, TraceConfig,
};
use dtree::{
    classify_sharded_live, run_live_engine, ClassifierHandle, DecisionTree, EngineConfig, FlatTree,
    RebuildPolicy,
};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha8Rng;

/// Expand `tree` with `steps` random operations covering all five node
/// kinds (mirrors the serving-path suite: parity must hold on every
/// kind, not just cut trees).
fn random_expand_all_kinds(tree: &mut DecisionTree, rng: &mut ChaCha8Rng, steps: usize) {
    for _ in 0..steps {
        let leaves: Vec<usize> = tree
            .leaf_ids()
            .filter(|&id| tree.node(id).num_rules() > 2 && tree.is_separable(id))
            .collect();
        let Some(&id) = leaves.as_slice().choose(rng) else { return };
        let dims: Vec<Dim> = classbench::DIMS
            .iter()
            .copied()
            .filter(|&d| tree.node(id).space.range(d).len() >= 4)
            .collect();
        let Some(&dim) = dims.as_slice().choose(rng) else { continue };
        match rng.gen_range(0..5) {
            0 => {
                tree.cut_node(id, dim, *[2usize, 4, 8].choose(rng).unwrap());
            }
            1 => {
                let second: Vec<Dim> = dims.iter().copied().filter(|&d| d != dim).collect();
                match second.as_slice().choose(rng) {
                    Some(&d2) => tree.multicut_node(id, &[(dim, 2), (d2, 2)]),
                    None => tree.cut_node(id, dim, 2),
                };
            }
            2 => {
                let range = *tree.node(id).space.range(dim);
                let len = range.len();
                tree.dense_cut_node(
                    id,
                    dim,
                    vec![range.lo, range.lo + len / 4, range.lo + len / 2, range.hi],
                );
            }
            3 => {
                let range = *tree.node(id).space.range(dim);
                let t = rng.gen_range(range.lo + 1..range.hi);
                tree.split_node(id, dim, t);
            }
            _ => {
                let rules = tree.rules_at(id).to_vec();
                let k = rng.gen_range(1..rules.len());
                let (a, b) = rules.split_at(k);
                tree.partition_node(id, vec![a.to_vec(), b.to_vec()]);
            }
        }
    }
}

/// A randomised insert candidate: bounds drawn from a donor rule pool,
/// priority sometimes duplicating an existing one (tie-breaks by id
/// must hold across the compiled table and the overlay).
fn random_insert(rng: &mut ChaCha8Rng, donors: &RuleSet, handle: &ClassifierHandle) -> Rule {
    let mut rule = donors.rules()[rng.gen_range(0..donors.len())].clone();
    rule.priority = if rng.gen_range(0..4) == 0 {
        // Duplicate an existing priority outright.
        handle.with_tree(|t| {
            let r = &t.rules()[rng.gen_range(0..t.rules().len())];
            r.priority
        })
    } else {
        rng.gen_range(-50..5000)
    };
    if rng.gen_range(0..4) == 0 {
        // Widen to a full wildcard in a couple of dimensions so the
        // rule spans many leaves (and several partition children).
        rule.ranges[Dim::SrcIp.index()] = DimRange::full(Dim::SrcIp);
        rule.ranges[Dim::DstIp.index()] = DimRange::full(Dim::DstIp);
    }
    rule
}

/// Assert the handle's published snapshot serves exactly what a
/// from-scratch rebuild of its tree serves (and the arena linear scan).
fn assert_snapshot_is_rebuild_identical(handle: &ClassifierHandle, probes: &[Packet]) {
    let snap = handle.snapshot();
    let rebuilt = handle.with_tree(FlatTree::compile);
    let mut batch = vec![None; probes.len()];
    snap.classify_batch(probes, &mut batch);
    for (i, p) in probes.iter().enumerate() {
        let want = rebuilt.classify(p);
        assert_eq!(snap.classify(p), want, "snapshot vs rebuild at {p}");
        assert_eq!(batch[i], want, "snapshot batch vs rebuild at {p}");
        let linear = handle.with_tree(|t| t.linear_classify(p));
        assert_eq!(want, linear, "rebuild vs linear scan at {p}");
    }
}

/// The acceptance gate: ≥1k interleaved inserts/deletes applied
/// through the handle while sharded engine readers serve concurrently;
/// every published snapshot must match a full rebuild bit-for-bit.
#[test]
fn thousand_update_churn_is_rebuild_identical_under_concurrent_reads() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(60));
    let donors = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 200).with_seed(61));
    let mut tree = DecisionTree::new(&rules);
    let mut rng = ChaCha8Rng::seed_from_u64(0x11fe);
    random_expand_all_kinds(&mut tree, &mut rng, 12);
    let handle = ClassifierHandle::new(
        tree,
        RebuildPolicy { max_churn: 0.08, min_updates: 6, max_overlay: 256 },
    );

    let probes = generate_trace(&rules, &TraceConfig::new(40).with_seed(62));
    let trace = generate_trace(&rules, &TraceConfig::new(500).with_seed(63));
    let stop = std::sync::atomic::AtomicBool::new(false);
    let served = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Two concurrent sharded readers serve continuously while the
        // update thread churns; they must never tear, panic, or block.
        for _ in 0..2 {
            let handle = &handle;
            let trace = &trace;
            let stop = &stop;
            let served = &served;
            scope.spawn(move || {
                let mut out = vec![None; trace.len()];
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    classify_sharded_live(handle, trace, &mut out, 2);
                    served.fetch_add(trace.len(), std::sync::atomic::Ordering::Relaxed);
                }
            });
        }

        let mut live: Vec<usize> = (0..rules.len()).collect();
        let mut applied = 0usize;
        while applied < 1000 {
            let do_insert = live.len() < 40 || rng.gen_range(0..5) < 3;
            if do_insert {
                // A random draw may exactly duplicate a live rule;
                // admission rejects those without publishing, so they
                // don't count as an applied update.
                let Ok(id) = handle.insert(random_insert(&mut rng, &donors, &handle)) else {
                    continue;
                };
                live.push(id);
            } else {
                let idx = rng.gen_range(0..live.len());
                let id = live.swap_remove(idx);
                handle.delete(id).unwrap();
            }
            applied += 1;
            // Bit-identical to a full rebuild after *every* update
            // (probe set), and on a bigger trace at checkpoints.
            assert_snapshot_is_rebuild_identical(&handle, &probes);
            if applied.is_multiple_of(200) {
                assert_snapshot_is_rebuild_identical(&handle, &trace);
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Every applied update published exactly one new epoch.
    let stats = handle.stats();
    assert_eq!(stats.epoch, 1000);
    assert!(stats.rebuilds > 0, "8% churn over 1000 updates must have rebuilt");
    assert!(served.load(std::sync::atomic::Ordering::Relaxed) > 0, "readers must have served");
    assert_snapshot_is_rebuild_identical(&handle, &trace);

    // The final snapshot also agrees with a timed live-engine run.
    let (out, report) = run_live_engine(&handle, &trace, EngineConfig::new(3));
    let rebuilt = handle.with_tree(FlatTree::compile);
    for (p, got) in trace.iter().zip(&out) {
        assert_eq!(*got, rebuilt.classify(p), "live engine at {p}");
    }
    assert_eq!(report.min_epoch, 1000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random trees over all five node kinds, random interleaved
    /// updates through the handle, rebuild-identical after every step.
    #[test]
    fn prop_churned_snapshots_match_full_rebuild(seed in 0u64..500, steps in 1usize..14) {
        let rules = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Fw, 90).with_seed(seed));
        let donors = generate_rules(
            &GeneratorConfig::new(ClassifierFamily::Acl, 60).with_seed(seed ^ 0xd0));
        let mut tree = DecisionTree::new(&rules);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc0de);
        random_expand_all_kinds(&mut tree, &mut rng, steps);
        let policy = if seed.is_multiple_of(2) {
            RebuildPolicy { max_churn: 0.10, min_updates: 5, max_overlay: 256 }
        } else {
            RebuildPolicy::never()
        };
        let handle = ClassifierHandle::new(tree, policy);

        let mut probes: Vec<Packet> = generate_trace(
            &rules, &TraceConfig::new(25).with_seed(seed ^ 0xabc));
        probes.extend((0..15).map(|_| Packet::new(
            rng.gen_range(0..1u64 << 32),
            rng.gen_range(0..1u64 << 32),
            rng.gen_range(0..1u64 << 16),
            rng.gen_range(0..1u64 << 16),
            rng.gen_range(0..256),
        )));

        let mut live: Vec<usize> = (0..rules.len()).collect();
        for _ in 0..30 {
            if live.is_empty() || rng.gen_range(0..5) < 3 {
                // Duplicate draws are rejected by admission control.
                if let Ok(id) = handle.insert(random_insert(&mut rng, &donors, &handle)) {
                    live.push(id);
                }
            } else {
                let idx = rng.gen_range(0..live.len());
                let id = live.swap_remove(idx);
                prop_assert!(handle.delete(id).is_ok());
            }
            let snap = handle.snapshot();
            let rebuilt = handle.with_tree(FlatTree::compile);
            let mut batch = vec![None; probes.len()];
            snap.classify_batch(&probes, &mut batch);
            for (i, p) in probes.iter().enumerate() {
                let want = rebuilt.classify(p);
                prop_assert_eq!(snap.classify(p), want, "snapshot vs rebuild at {}", p);
                prop_assert_eq!(batch[i], want, "batch vs rebuild at {}", p);
                let linear = handle.with_tree(|t| t.linear_classify(p));
                prop_assert_eq!(want, linear, "rebuild vs linear at {}", p);
            }
        }
    }
}

/// A rule spanning several partition children must stay consistent
/// through insert → serve → delete, whichever child the routed insert
/// placed it in.
#[test]
fn wildcard_insert_spans_partition_children_and_deletes_cleanly() {
    let rules = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 120).with_seed(70));
    let mut tree = DecisionTree::new(&rules);
    let all = tree.rules_at(tree.root()).to_vec();
    let third = all.len() / 3;
    let (a, rest) = all.split_at(third);
    let (b, c) = rest.split_at(third);
    let parts = tree.partition_node(tree.root(), vec![a.to_vec(), b.to_vec(), c.to_vec()]);
    for p in parts {
        if !tree.is_terminal(p, 16) {
            tree.cut_node(p, Dim::SrcIp, 4);
        }
    }
    let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
    let probes = generate_trace(&rules, &TraceConfig::new(300).with_seed(71));

    let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
    let id = handle.insert(Rule::default_rule(top + 1)).unwrap();
    assert_snapshot_is_rebuild_identical(&handle, &probes);
    let snap = handle.snapshot();
    for p in &probes {
        assert_eq!(snap.classify(p), Some(id), "full wildcard must shadow everything at {p}");
    }
    handle.delete(id).unwrap();
    assert_snapshot_is_rebuild_identical(&handle, &probes);
    let snap = handle.snapshot();
    for p in &probes {
        assert_ne!(snap.classify(p), Some(id), "deleted wildcard resurfaced at {p}");
    }
}
