//! Update-aware serving: live inserts/deletes without pausing readers.
//!
//! PR 2 built the fast serving path — a compiled [`FlatTree`] driven by
//! batched wavefront lookups across sharded workers — but compiled it
//! **once**: `insert_rule`/`delete_rule` mutate only the arena
//! [`DecisionTree`], so a deployed `FlatTree` silently kept serving
//! stale matches. This module closes that gap with the §4 update model
//! ("Handling classifier updates"): small updates are applied in place
//! and published immediately; a full recompile happens only when the
//! accumulated churn crosses the rebuild policy's threshold.
//!
//! The design is an **epoch-swap scheme** (cf. runtime-updatable
//! network configuration systems such as Chameleon):
//!
//! * [`ClassifierHandle`] owns the mutable tree behind a
//!   `parking_lot::RwLock`. Writers (updates) take the write lock;
//!   readers never touch the tree at all.
//! * Every update publishes a new immutable [`Snapshot`] —
//!   `Arc`-swapped under the lock, handed out by
//!   [`ClassifierHandle::snapshot`] with one `Arc` clone. Readers keep
//!   classifying against whatever snapshot they hold; nothing blocks,
//!   nothing is torn.
//! * A monotonically increasing **epoch counter** (an `AtomicU64`,
//!   readable without the lock) lets readers detect that a newer
//!   snapshot exists with a single atomic load and re-fetch at their
//!   convenience — the sharded engine does this between batches.
//!
//! Below the rebuild threshold, updates are cheap:
//!
//! * **Deletes** of compiled rules are patched into a copy-on-write
//!   clone of the `FlatTree` ([`FlatTree::patch_delete`] stamps the
//!   rule's leaf-scan entries unsatisfiable); deletes of
//!   not-yet-compiled rules just drop them from the overlay.
//! * **Inserts** land in a small precedence-sorted **overlay** carried
//!   by the snapshot. A lookup merges the compiled winner with the
//!   first matching overlay rule by (priority, id) precedence —
//!   bit-identical to what a full recompile would serve, verified by
//!   the differential churn tests.
//!
//! When [`UpdateLog::churn`] crosses [`RebuildPolicy::max_churn`], the
//! handle recompiles the `FlatTree` from the updated tree, clears the
//! overlay, resets the log, and publishes the fresh snapshot — still
//! without pausing readers.

use crate::flat::FlatTree;
use crate::node::RuleId;
use crate::tree::DecisionTree;
use crate::updates::{self, UpdateError, UpdateLog};
use classbench::{Packet, Rule};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When accumulated small updates trigger a full recompile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Recompile when `log.churn(active_rules)` reaches this fraction
    /// (the paper retrains "when enough small updates accumulate").
    pub max_churn: f64,
    /// Never recompile before this many updates have been applied,
    /// so tiny classifiers don't thrash on every single update.
    pub min_updates: usize,
}

impl RebuildPolicy {
    /// Recompile at 10% churn, but not before 8 updates.
    pub fn default_policy() -> Self {
        RebuildPolicy { max_churn: 0.10, min_updates: 8 }
    }

    /// Never recompile automatically (updates stay incremental until
    /// [`ClassifierHandle::force_rebuild`] is called). Useful for tests
    /// that exercise the patch/overlay path exclusively.
    pub fn never() -> Self {
        RebuildPolicy { max_churn: f64::INFINITY, min_updates: usize::MAX }
    }

    /// True when the log has accumulated enough churn to rebuild.
    pub fn should_rebuild(&self, log: &UpdateLog, active_rules: usize) -> bool {
        log.total() >= self.min_updates && log.churn(active_rules) >= self.max_churn
    }
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self::default_policy()
    }
}

/// An immutable, self-contained serving state: one compiled tree plus
/// the overlay of inserts it does not know about yet. Cheap to clone
/// behind an `Arc`; readers hold it for as long as they like.
#[derive(Debug)]
pub struct Snapshot {
    /// Epoch this snapshot was published at (monotonic per handle).
    epoch: u64,
    /// [`DecisionTree::generation`] this snapshot faithfully serves.
    tree_generation: u64,
    /// The compiled tree. Shared (not cloned) across snapshots until a
    /// delete patches it (copy-on-write) or a rebuild replaces it.
    flat: Arc<FlatTree>,
    /// Rules inserted since the last recompile, in precedence order
    /// (higher priority first, ties broken by lower id). Small by
    /// construction: the rebuild policy recompiles before it grows.
    overlay: Arc<Vec<(RuleId, Rule)>>,
}

impl Snapshot {
    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The tree generation this snapshot serves exactly.
    pub fn tree_generation(&self) -> u64 {
        self.tree_generation
    }

    /// The compiled tree inside (stats, resident bytes, …).
    pub fn flat(&self) -> &FlatTree {
        &self.flat
    }

    /// Rules currently served from the overlay rather than the
    /// compiled table.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Active rules served by this snapshot (compiled + overlay).
    pub fn num_rules(&self) -> usize {
        self.flat.num_rules() + self.overlay.len()
    }

    /// First overlay match for `packet`, as `(id, priority)`. The
    /// overlay is precedence-sorted, so the first hit is the best.
    #[inline]
    fn overlay_match(&self, packet: &Packet) -> Option<(RuleId, i32)> {
        self.overlay.iter().find(|(_, r)| r.matches(packet)).map(|(id, r)| (*id, r.priority))
    }

    /// Merge a compiled winner (by table rank) with the overlay winner
    /// by (priority, id) precedence — the same ordering the arena tree
    /// and the linear-scan ground truth use.
    #[inline]
    fn merge(&self, rank: Option<u32>, overlay: Option<(RuleId, i32)>) -> Option<RuleId> {
        match (rank, overlay) {
            (None, None) => None,
            (Some(rank), None) => Some(self.flat.rank_to_id(rank)),
            (None, Some((id, _))) => Some(id),
            (Some(rank), Some((oid, oprio))) => {
                let fid = self.flat.rank_to_id(rank);
                let fprio = self.flat.rank_priority(rank);
                if oprio > fprio || (oprio == fprio && oid < fid) {
                    Some(oid)
                } else {
                    Some(fid)
                }
            }
        }
    }

    /// Classify a packet: the id of the highest-precedence active rule,
    /// identical to a fresh `FlatTree::compile` of the current tree.
    pub fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.merge(self.flat.classify_rank(packet), self.overlay_match(packet))
    }

    /// Batched classify (wavefront through the compiled tree, then the
    /// overlay merge per packet), same results as [`Self::classify`].
    ///
    /// # Panics
    /// Panics if `packets` and `out` have different lengths.
    pub fn classify_batch(&self, packets: &[Packet], out: &mut [Option<RuleId>]) {
        assert_eq!(packets.len(), out.len(), "output slice must match the batch");
        if self.overlay.is_empty() {
            self.flat.classify_batch(packets, out);
        } else {
            self.flat.classify_batch_with(packets, |pi, rank| {
                out[pi] = self.merge(rank, self.overlay_match(&packets[pi]));
            });
        }
    }
}

/// Everything the write path owns, behind one lock.
#[derive(Debug)]
struct State {
    tree: DecisionTree,
    policy: RebuildPolicy,
    flat: Arc<FlatTree>,
    overlay: Vec<(RuleId, Rule)>,
    log: UpdateLog,
    rebuilds: u64,
    published: Arc<Snapshot>,
}

/// Aggregate counters of a handle's update history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Current epoch (number of published snapshots since creation).
    pub epoch: u64,
    /// Full recompiles triggered by the rebuild policy (or forced).
    pub rebuilds: u64,
    /// In-place updates since the last recompile.
    pub log: UpdateLog,
    /// Active rules currently served.
    pub active_rules: usize,
    /// Rules currently in the overlay (not yet compiled).
    pub overlay_len: usize,
}

/// The owner of a live classifier: the mutable [`DecisionTree`] plus
/// an atomically swappable compiled snapshot (see module docs).
///
/// Shared by reference (or `Arc`) between one-or-more updater threads
/// and any number of reader threads; all methods take `&self`.
#[derive(Debug)]
pub struct ClassifierHandle {
    state: RwLock<State>,
    /// Published epoch, readable without the lock: readers compare
    /// against [`Snapshot::epoch`] to cheaply detect staleness.
    epoch: AtomicU64,
}

impl ClassifierHandle {
    /// Wrap a built tree for live serving: compiles the initial
    /// snapshot (epoch 0) and takes ownership of the tree.
    pub fn new(tree: DecisionTree, policy: RebuildPolicy) -> Self {
        let flat = Arc::new(FlatTree::compile(&tree));
        debug_assert!(!flat.is_stale(&tree));
        let published = Arc::new(Snapshot {
            epoch: 0,
            tree_generation: tree.generation(),
            flat: flat.clone(),
            overlay: Arc::new(Vec::new()),
        });
        ClassifierHandle {
            state: RwLock::new(State {
                tree,
                policy,
                flat,
                overlay: Vec::new(),
                log: UpdateLog::default(),
                rebuilds: 0,
                published,
            }),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current serving snapshot (one `Arc` clone under a read
    /// lock; the lock is held for nanoseconds, never across lookups).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.state.read().published.clone()
    }

    /// The latest published epoch. A reader whose snapshot reports an
    /// older [`Snapshot::epoch`] should re-fetch; the load is a single
    /// atomic, so polling it per batch costs nothing.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Insert a rule: applied to the tree in place (§4), served from
    /// the overlay until the next recompile. Publishes a new snapshot
    /// before returning. Returns the new rule's stable id.
    pub fn insert(&self, rule: Rule) -> RuleId {
        let mut s = self.state.write();
        let id = updates::insert_rule(&mut s.tree, rule.clone());
        s.log.inserted += 1;
        if s.policy.should_rebuild(&s.log, s.tree.num_active_rules()) {
            Self::rebuild_locked(&mut s);
        } else {
            // Keep the overlay precedence-sorted so lookups take the
            // first match.
            let pos = s
                .overlay
                .iter()
                .position(|(oid, r)| {
                    rule.priority > r.priority || (rule.priority == r.priority && id < *oid)
                })
                .unwrap_or(s.overlay.len());
            s.overlay.insert(pos, (id, rule));
        }
        self.publish_locked(&mut s);
        id
    }

    /// Delete a rule: applied to the tree in place, then either dropped
    /// from the overlay (not-yet-compiled rules) or patched out of a
    /// copy-on-write clone of the compiled tree
    /// ([`FlatTree::patch_delete`]). Publishes a new snapshot before
    /// returning. Errors on unknown/already-deleted ids without
    /// touching the serving state.
    pub fn delete(&self, id: RuleId) -> Result<(), UpdateError> {
        let mut s = self.state.write();
        updates::delete_rule(&mut s.tree, id)?;
        s.log.deleted += 1;
        // Check the rebuild policy *first*: when this delete tips the
        // churn over the threshold, the recompile supersedes both the
        // overlay removal and the copy-on-write patch (whose clone
        // would otherwise be paid and immediately thrown away).
        if s.policy.should_rebuild(&s.log, s.tree.num_active_rules()) {
            Self::rebuild_locked(&mut s);
        } else if let Some(pos) = s.overlay.iter().position(|(oid, _)| *oid == id) {
            s.overlay.remove(pos);
        } else {
            // Advance the compiled tree's freshness stamp only when the
            // patch leaves it reflecting the tree exactly; while overlay
            // inserts are pending, the flat alone is genuinely stale
            // (it misses those rules) and must keep saying so.
            let generation =
                if s.overlay.is_empty() { s.tree.generation() } else { s.flat.generation() };
            // Readers hold the current Arc, so make_mut clones once
            // (copy-on-write) and the patch lands in the new copy.
            Arc::make_mut(&mut s.flat).patch_delete(id, generation);
        }
        self.publish_locked(&mut s);
        Ok(())
    }

    /// Recompile now regardless of churn (e.g. after a retrain).
    pub fn force_rebuild(&self) {
        let mut s = self.state.write();
        Self::rebuild_locked(&mut s);
        self.publish_locked(&mut s);
    }

    /// Current update counters.
    pub fn stats(&self) -> UpdateStats {
        let s = self.state.read();
        UpdateStats {
            epoch: s.published.epoch,
            rebuilds: s.rebuilds,
            log: s.log,
            active_rules: s.tree.num_active_rules(),
            overlay_len: s.overlay.len(),
        }
    }

    /// Churn accumulated since the last recompile.
    pub fn churn(&self) -> f64 {
        let s = self.state.read();
        s.log.churn(s.tree.num_active_rules())
    }

    /// Run `f` against the owned tree (read lock held for the call).
    /// The differential tests use this to rebuild from scratch and
    /// compare; production readers should use [`Self::snapshot`].
    pub fn with_tree<R>(&self, f: impl FnOnce(&DecisionTree) -> R) -> R {
        f(&self.state.read().tree)
    }

    fn rebuild_locked(s: &mut State) {
        s.flat = Arc::new(FlatTree::compile(&s.tree));
        s.overlay.clear();
        s.log = UpdateLog::default();
        s.rebuilds += 1;
        // A freshly compiled snapshot must never be stale.
        debug_assert!(!s.flat.is_stale(&s.tree));
    }

    fn publish_locked(&self, s: &mut State) {
        let epoch = s.published.epoch + 1;
        // No generation-lockstep assert here: the generation counts
        // *mutations*, not content, so an insert that round-trips
        // through the overlay (insert then delete before any rebuild)
        // legitimately leaves the compiled tree generations behind while
        // still content-identical. The snapshot records the tree
        // generation it serves; the differential churn tests pin the
        // content claim.
        s.published = Arc::new(Snapshot {
            epoch,
            tree_generation: s.tree.generation(),
            flat: s.flat.clone(),
            overlay: Arc::new(s.overlay.clone()),
        });
        self.epoch.store(epoch, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, DimRange, GeneratorConfig,
        TraceConfig,
    };

    fn built_tree(seed: u64) -> (DecisionTree, classbench::RuleSet) {
        let rules =
            generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(seed));
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstIp, 4);
            }
        }
        (tree, rules)
    }

    /// The snapshot must serve exactly what a from-scratch recompile of
    /// the handle's current tree serves.
    fn assert_snapshot_matches_rebuild(handle: &ClassifierHandle, trace: &[Packet]) {
        let snap = handle.snapshot();
        let rebuilt = handle.with_tree(FlatTree::compile);
        let mut batch = vec![None; trace.len()];
        snap.classify_batch(trace, &mut batch);
        for (i, p) in trace.iter().enumerate() {
            let want = rebuilt.classify(p);
            assert_eq!(snap.classify(p), want, "snapshot vs rebuild at {p}");
            assert_eq!(batch[i], want, "snapshot batch vs rebuild at {p}");
        }
    }

    #[test]
    fn inserts_are_served_without_recompile() {
        let (tree, rules) = built_tree(30);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(31));
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();

        let mut r = Rule::default_rule(top + 1);
        r.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let id = handle.insert(r);
        assert_eq!(handle.stats().overlay_len, 1);
        assert_eq!(handle.stats().rebuilds, 0);

        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), 1);
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(snap.classify(&p), Some(id), "overlay insert must win");
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn deletes_patch_the_compiled_tree() {
        let (tree, rules) = built_tree(32);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(33));
        for victim in [0usize, 5, 17] {
            handle.delete(victim).unwrap();
        }
        assert_eq!(handle.stats().rebuilds, 0);
        assert_eq!(handle.stats().log.deleted, 3);
        assert_snapshot_matches_rebuild(&handle, &trace);
        // Double delete surfaces as an error, not a panic, and does not
        // publish a new epoch.
        let epoch = handle.epoch();
        assert_eq!(handle.delete(0), Err(UpdateError::InactiveRule(0)));
        assert_eq!(handle.epoch(), epoch);
    }

    #[test]
    fn insert_then_delete_roundtrips_through_overlay() {
        let (tree, rules) = built_tree(34);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let id = handle.insert(Rule::default_rule(top + 5));
        assert_eq!(handle.stats().overlay_len, 1);
        handle.delete(id).unwrap();
        assert_eq!(handle.stats().overlay_len, 0, "overlay delete must not touch the flat");
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(35));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn rebuild_policy_triggers_and_resets_the_log() {
        let (tree, rules) = built_tree(36);
        let n = tree.num_active_rules();
        // 10% churn at min_updates 4: the 15th update on 150 rules.
        let policy = RebuildPolicy { max_churn: 0.10, min_updates: 4 };
        let handle = ClassifierHandle::new(tree, policy);
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let mut rebuilds_seen = 0;
        for i in 0..40 {
            let before = handle.stats();
            handle.insert(Rule::default_rule(top + 1 + i));
            let after = handle.stats();
            if after.rebuilds > before.rebuilds {
                rebuilds_seen += 1;
                assert_eq!(after.log, UpdateLog::default(), "rebuild must reset the log");
                assert_eq!(after.overlay_len, 0, "rebuild must clear the overlay");
            }
        }
        assert!(rebuilds_seen >= 1, "40 inserts on {n} rules must cross 10% churn");
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(37));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn policy_decision_matches_churn_arithmetic() {
        let policy = RebuildPolicy { max_churn: 0.10, min_updates: 8 };
        let mut log = UpdateLog::default();
        assert!(!policy.should_rebuild(&log, 100));
        log.inserted = 7;
        // 7 updates: churn lower than min_updates gate.
        assert!(!policy.should_rebuild(&log, 10), "min_updates must gate early rebuilds");
        log.inserted = 8;
        log.deleted = 2;
        assert!(policy.should_rebuild(&log, 100), "10/100 = 10% churn");
        assert!(!policy.should_rebuild(&log, 101), "10/101 < 10% churn");
        assert!(!RebuildPolicy::never().should_rebuild(&log, 1));
    }

    #[test]
    fn epoch_counter_tracks_publishes() {
        let (tree, _) = built_tree(38);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.snapshot().epoch(), 0);
        handle.insert(Rule::default_rule(9_999));
        assert_eq!(handle.epoch(), 1);
        handle.delete(0).unwrap();
        assert_eq!(handle.epoch(), 2);
        // An old snapshot keeps serving, but its epoch reveals it.
        let old = handle.snapshot();
        handle.insert(Rule::default_rule(10_000));
        assert!(old.epoch() < handle.epoch());
        assert_eq!(handle.snapshot().epoch(), handle.epoch());
    }

    #[test]
    fn force_rebuild_compiles_overlay_into_the_table() {
        let (tree, rules) = built_tree(39);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        for i in 0..5 {
            handle.insert(Rule::default_rule(top + 1 + i));
        }
        assert_eq!(handle.stats().overlay_len, 5);
        handle.force_rebuild();
        let s = handle.stats();
        assert_eq!(s.overlay_len, 0);
        assert_eq!(s.rebuilds, 1);
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(40));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn compiled_flat_stays_stale_while_overlay_inserts_are_pending() {
        // A delete patch must not launder staleness: with an overlay
        // insert pending, the compiled FlatTree alone misses that rule,
        // so even after a patched delete it must keep reporting stale
        // (the *snapshot* serves correctly — the overlay supplies the
        // missing rule — but the bare flat does not).
        let (tree, rules) = built_tree(44);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        handle.insert(Rule::default_rule(top + 1));
        handle.delete(0).unwrap();
        let snap = handle.snapshot();
        let p = Packet::new(1, 2, 3, 4, 6);
        handle.with_tree(|t| {
            assert!(snap.flat().is_stale(t), "flat misses the overlay insert");
            assert!(snap.flat().classify_checked(t, &p).is_err());
        });
        // The snapshot itself still serves rebuild-identical results.
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(45));
        assert_snapshot_matches_rebuild(&handle, &trace);
        // Once the overlay is folded in by a rebuild, the compiled
        // tree is the whole truth again and freshness returns.
        handle.force_rebuild();
        let snap = handle.snapshot();
        handle.with_tree(|t| {
            assert!(!snap.flat().is_stale(t));
            assert!(snap.flat().classify_checked(t, &p).is_ok());
        });
    }

    #[test]
    fn duplicate_priorities_tiebreak_by_id_across_overlay_and_table() {
        // Two identical-priority full-wildcard rules: one compiled, one
        // in the overlay. The compiled one has the lower id, so it must
        // keep winning — the merge tie-break is (priority, lower id),
        // same as the arena and the linear scan.
        let rules = classbench::RuleSet::new(vec![Rule::default_rule(7)]);
        let tree = DecisionTree::new(&rules);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let dup = handle.insert(Rule::default_rule(7));
        let p = Packet::new(1, 1, 1, 1, 1);
        let snap = handle.snapshot();
        assert_eq!(snap.classify(&p), Some(0), "lower id must win the tie");
        assert_eq!(handle.with_tree(|t| t.classify(&p)), Some(0));
        // Delete the compiled one: now the overlay rule wins.
        handle.delete(0).unwrap();
        assert_eq!(handle.snapshot().classify(&p), Some(dup));
    }
}
