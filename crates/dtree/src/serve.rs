//! Update-aware serving: live inserts/deletes without pausing readers.
//!
//! PR 2 built the fast serving path — a compiled [`FlatTree`] driven by
//! batched wavefront lookups across sharded workers — but compiled it
//! **once**: `insert_rule`/`delete_rule` mutate only the arena
//! [`DecisionTree`], so a deployed `FlatTree` silently kept serving
//! stale matches. This module closes that gap with the §4 update model
//! ("Handling classifier updates"): small updates are applied in place
//! and published immediately; a full recompile happens only when the
//! accumulated churn crosses the rebuild policy's threshold.
//!
//! The design is an **epoch-swap scheme** (cf. runtime-updatable
//! network configuration systems such as Chameleon):
//!
//! * [`ClassifierHandle`] owns the mutable tree behind a
//!   `parking_lot::RwLock`. Writers (updates) take the write lock;
//!   readers never touch the tree at all.
//! * Every update publishes a new immutable [`Snapshot`] —
//!   `Arc`-swapped under the lock, handed out by
//!   [`ClassifierHandle::snapshot`] with one `Arc` clone. Readers keep
//!   classifying against whatever snapshot they hold; nothing blocks,
//!   nothing is torn.
//! * A monotonically increasing **epoch counter** (an `AtomicU64`,
//!   readable without the lock) lets readers detect that a newer
//!   snapshot exists with a single atomic load and re-fetch at their
//!   convenience — the sharded engine does this between batches.
//!
//! Below the rebuild threshold, updates are cheap:
//!
//! * **Deletes** of compiled rules are patched into a copy-on-write
//!   clone of the `FlatTree` ([`FlatTree::patch_delete`] stamps the
//!   rule's leaf-scan entries unsatisfiable); deletes of
//!   not-yet-compiled rules just drop them from the overlay.
//! * **Inserts** land in a small precedence-sorted **overlay** carried
//!   by the snapshot. A lookup merges the compiled winner with the
//!   first matching overlay rule by (priority, id) precedence —
//!   bit-identical to what a full recompile would serve, verified by
//!   the differential churn tests.
//!
//! When [`UpdateLog::churn`] crosses [`RebuildPolicy::max_churn`], the
//! handle recompiles the `FlatTree` from the updated tree, clears the
//! overlay, resets the log, and publishes the fresh snapshot — still
//! without pausing readers.

use crate::flat::FlatTree;
use crate::node::RuleId;
use crate::tree::DecisionTree;
use crate::updates::{self, UpdateError, UpdateLog};
use crate::wal;
use classbench::{Dim, Packet, Rule, RuleSet};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When accumulated small updates trigger a full recompile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Recompile when `log.churn(active_rules)` reaches this fraction
    /// (the paper retrains "when enough small updates accumulate").
    pub max_churn: f64,
    /// Never recompile before this many updates have been applied,
    /// so tiny classifiers don't thrash on every single update.
    pub min_updates: usize,
    /// Hard bound on the insert overlay. An insert that would grow the
    /// overlay past this folds everything into a recompile instead
    /// (backpressure, counted in [`HealthReport::backpressure_rebuilds`])
    /// — an update storm can never make per-lookup overlay scans grow
    /// without limit, whatever the churn fraction says.
    pub max_overlay: usize,
}

impl RebuildPolicy {
    /// Recompile at 10% churn, but not before 8 updates; overlay hard
    /// bound 256.
    pub fn default_policy() -> Self {
        RebuildPolicy { max_churn: 0.10, min_updates: 8, max_overlay: 256 }
    }

    /// Never recompile automatically (updates stay incremental until
    /// [`ClassifierHandle::force_rebuild`] is called). Useful for tests
    /// that exercise the patch/overlay path exclusively — which is why
    /// the overlay bound is also lifted; production policies should
    /// keep a finite `max_overlay`.
    pub fn never() -> Self {
        RebuildPolicy { max_churn: f64::INFINITY, min_updates: usize::MAX, max_overlay: usize::MAX }
    }

    /// True when the log has accumulated enough churn to rebuild.
    pub fn should_rebuild(&self, log: &UpdateLog, active_rules: usize) -> bool {
        log.total() >= self.min_updates && log.churn(active_rules) >= self.max_churn
    }
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self::default_policy()
    }
}

/// An immutable, self-contained serving state: one compiled tree plus
/// the overlay of inserts it does not know about yet. Cheap to clone
/// behind an `Arc`; readers hold it for as long as they like.
#[derive(Debug)]
pub struct Snapshot {
    /// Epoch this snapshot was published at (monotonic per handle).
    epoch: u64,
    /// [`DecisionTree::generation`] this snapshot faithfully serves.
    tree_generation: u64,
    /// The compiled tree. Shared (not cloned) across snapshots until a
    /// delete patches it (copy-on-write) or a rebuild replaces it.
    flat: Arc<FlatTree>,
    /// Rules inserted since the last recompile, in precedence order
    /// (higher priority first, ties broken by lower id). Small by
    /// construction: the rebuild policy recompiles before it grows.
    overlay: Arc<Vec<(RuleId, Rule)>>,
}

impl Snapshot {
    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The tree generation this snapshot serves exactly.
    pub fn tree_generation(&self) -> u64 {
        self.tree_generation
    }

    /// The compiled tree inside (stats, resident bytes, …).
    pub fn flat(&self) -> &FlatTree {
        &self.flat
    }

    /// Rules currently served from the overlay rather than the
    /// compiled table.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Active rules served by this snapshot (compiled + overlay).
    pub fn num_rules(&self) -> usize {
        self.flat.num_rules() + self.overlay.len()
    }

    /// First overlay match for `packet`, as `(id, priority)`. The
    /// overlay is precedence-sorted, so the first hit is the best.
    #[inline]
    fn overlay_match(&self, packet: &Packet) -> Option<(RuleId, i32)> {
        self.overlay.iter().find(|(_, r)| r.matches(packet)).map(|(id, r)| (*id, r.priority))
    }

    /// Merge a compiled winner (by table rank) with the overlay winner
    /// by (priority, id) precedence — the same ordering the arena tree
    /// and the linear-scan ground truth use.
    #[inline]
    fn merge(&self, rank: Option<u32>, overlay: Option<(RuleId, i32)>) -> Option<RuleId> {
        match (rank, overlay) {
            (None, None) => None,
            (Some(rank), None) => Some(self.flat.rank_to_id(rank)),
            (None, Some((id, _))) => Some(id),
            (Some(rank), Some((oid, oprio))) => {
                let fid = self.flat.rank_to_id(rank);
                let fprio = self.flat.rank_priority(rank);
                if oprio > fprio || (oprio == fprio && oid < fid) {
                    Some(oid)
                } else {
                    Some(fid)
                }
            }
        }
    }

    /// Classify a packet: the id of the highest-precedence active rule,
    /// identical to a fresh `FlatTree::compile` of the current tree.
    pub fn classify(&self, packet: &Packet) -> Option<RuleId> {
        self.merge(self.flat.classify_rank(packet), self.overlay_match(packet))
    }

    /// Batched classify (wavefront through the compiled tree, then the
    /// overlay merge per packet), same results as [`Self::classify`].
    ///
    /// # Panics
    /// Panics if `packets` and `out` have different lengths.
    // nc-lint: kernel
    pub fn classify_batch(&self, packets: &[Packet], out: &mut [Option<RuleId>]) {
        // nc-lint: allow(no-panic-in-serving, error-taxonomy, reason = "documented length-contract guard (see # Panics); misuse is a caller bug, not runtime input")
        assert_eq!(packets.len(), out.len(), "output slice must match the batch");
        if self.overlay.is_empty() {
            self.flat.classify_batch(packets, out);
        } else {
            self.flat.classify_batch_with(packets, |pi, rank| {
                out[pi] = self.merge(rank, self.overlay_match(&packets[pi]));
            });
        }
    }
}

/// Everything the write path owns, behind one lock.
#[derive(Debug)]
struct State {
    tree: DecisionTree,
    policy: RebuildPolicy,
    flat: Arc<FlatTree>,
    overlay: Vec<(RuleId, Rule)>,
    log: UpdateLog,
    rebuilds: u64,
    retrains: u64,
    total_inserted: usize,
    total_deleted: usize,
    published: Arc<Snapshot>,
    /// Overlay-bound folds forced instead of unbounded growth.
    backpressure_rebuilds: u64,
    /// Most recent update/adopt error (sticky; health reporting).
    last_error: Option<String>,
    /// Lifecycle-worker view, pushed via [`ClassifierHandle::note_worker_health`].
    worker_failures: u64,
    worker_degraded: bool,
    /// Durability sink: every admitted insert/delete/adopt/rebuild is
    /// appended here *before* it mutates anything (`None` = no
    /// persistence attached; updates are then memory-only).
    wal: Option<wal::WalWriter>,
    /// Generation of the checkpoint the attached WAL runs ahead of.
    checkpoint_generation: Option<u64>,
    /// Sticky note from the recovery that built this handle (torn-tail
    /// truncations and the like), `None` for a clean start.
    last_recover_error: Option<String>,
}

/// A point-in-time health view of a live classifier: the failure side
/// of the serving story, queryable from the engine and the CLI. The
/// worker-side fields (`consecutive_failures`, `degraded`) are pushed
/// by the lifecycle worker through
/// [`ClassifierHandle::note_worker_health`]; the rest the handle tracks
/// itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Consecutive transient retrain failures of the attached lifecycle
    /// worker (0 when healthy or no worker attached).
    pub consecutive_failures: u64,
    /// The worker degraded to heuristic fold-rebuilds after exhausting
    /// its retry budget; cleared by the next successful retrain.
    pub degraded: bool,
    /// Rules currently served from the overlay.
    pub overlay_len: usize,
    /// The policy's hard overlay bound.
    pub overlay_cap: usize,
    /// Published epochs since the last full fold — how many incremental
    /// updates the compiled table is behind the rule arena (0 right
    /// after any rebuild/adopt).
    pub epoch_lag: u64,
    /// Folds forced by the overlay bound rather than the churn policy.
    pub backpressure_rebuilds: u64,
    /// The most recent update/adopt/retrain error, if any (sticky).
    pub last_error: Option<String>,
    /// Records appended to the write-ahead log since the last
    /// checkpoint rotation (`None` = no persistence attached) — how
    /// much replay a crash right now would cost.
    pub wal_len: Option<u64>,
    /// Generation of the newest durable checkpoint behind the WAL
    /// (`None` = no persistence attached).
    pub checkpoint_generation: Option<u64>,
    /// Sticky note from the recovery that built this handle, e.g. a
    /// truncated torn tail (`None` = clean start or clean recovery).
    pub last_recover_error: Option<String>,
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failures {} degraded {} overlay {}/{} epoch_lag {} backpressure {} last_error {} wal {} ckpt {} recover_error {}",
            self.consecutive_failures,
            self.degraded,
            self.overlay_len,
            if self.overlay_cap == usize::MAX {
                "inf".to_string()
            } else {
                self.overlay_cap.to_string()
            },
            self.epoch_lag,
            self.backpressure_rebuilds,
            self.last_error.as_deref().unwrap_or("none"),
            self.wal_len.map_or_else(|| "off".to_string(), |n| n.to_string()),
            self.checkpoint_generation.map_or_else(|| "none".to_string(), |g| g.to_string()),
            self.last_recover_error.as_deref().unwrap_or("none"),
        )
    }
}

/// Aggregate counters of a handle's update history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Current epoch (number of published snapshots since creation).
    pub epoch: u64,
    /// Full recompiles: policy-triggered, [`ClassifierHandle::force_rebuild`],
    /// and [`ClassifierHandle::adopt`] swaps all count here — every path
    /// that folds the overlay and resets the log is a rebuild.
    pub rebuilds: u64,
    /// Retrained trees swapped in via [`ClassifierHandle::adopt`]
    /// (a subset of `rebuilds`).
    pub retrains: u64,
    /// In-place updates since the last recompile.
    pub log: UpdateLog,
    /// Lifetime inserts, never reset by rebuilds — the churn-since-
    /// baseline signal retrain triggers watch (`log` alone loses its
    /// history on every rebuild).
    pub total_inserted: usize,
    /// Lifetime deletes, never reset by rebuilds.
    pub total_deleted: usize,
    /// Active rules currently served.
    pub active_rules: usize,
    /// Rules currently in the overlay (not yet compiled).
    pub overlay_len: usize,
}

impl UpdateStats {
    /// Lifetime updates of either kind (never reset by rebuilds).
    pub fn lifetime_updates(&self) -> usize {
        self.total_inserted + self.total_deleted
    }
}

/// A frozen, priority-ordered copy of a handle's active rules, plus the
/// bookkeeping needed to graft an externally built (retrained) tree
/// back into the handle's id space ([`ClassifierHandle::adopt`]).
///
/// Rule `i` of [`Self::rules`] is handle rule `map[i]`; the order is a
/// stable sort by descending priority, so equal priorities keep
/// ascending handle-id order and the snapshot's (priority, lower-id)
/// precedence is exactly the handle's.
#[derive(Debug, Clone)]
pub struct RuleSnapshot {
    rules: RuleSet,
    map: Vec<RuleId>,
    generation: u64,
    epoch: u64,
}

impl RuleSnapshot {
    /// The frozen active rules, in priority order — ready to hand to a
    /// trainer or tree builder.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Number of rules in the snapshot.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the snapshot holds no rules.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `map[i]` = handle-arena id of snapshot rule `i`.
    pub fn map(&self) -> &[RuleId] {
        &self.map
    }

    /// The tree generation at snapshot time (updates applied since then
    /// are reconciled by [`ClassifierHandle::adopt`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The published epoch at snapshot time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Why [`ClassifierHandle::adopt`] refused to swap a tree in. The
/// handle's serving state is untouched on every error path.
#[derive(Debug, Clone, PartialEq)]
pub enum AdoptError {
    /// The template's rule arena does not match the snapshot's rules —
    /// it was built for some other rule set (or a stale snapshot).
    TemplateMismatch {
        /// Rules the snapshot froze.
        expected: usize,
        /// Rules the template was built over.
        got: usize,
    },
    /// The grafted tree failed its linear-scan spot check on this
    /// packet; the swap was abandoned before publishing anything.
    Diverged(Packet),
    /// The snapshot's id map does not fit this handle's arena — it was
    /// frozen from some *other* handle (previously a `graft` panic).
    ForeignSnapshot {
        /// Largest handle id the snapshot maps onto.
        max_id: RuleId,
        /// This handle's arena size.
        arena: usize,
    },
    /// The swap passed its spot check but its write-ahead log record
    /// could not be appended; the swap was refused (serving state
    /// untouched) so the durable log never trails the served state.
    WalAppend {
        /// The I/O error class reported by the failed append.
        kind: std::io::ErrorKind,
    },
}

impl std::fmt::Display for AdoptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdoptError::TemplateMismatch { expected, got } => {
                write!(f, "template was built over {got} rules but the snapshot froze {expected}")
            }
            AdoptError::Diverged(p) => {
                write!(f, "grafted tree diverged from the linear scan at {p}")
            }
            AdoptError::ForeignSnapshot { max_id, arena } => {
                write!(f, "snapshot maps rule id {max_id} but the handle arena holds {arena}")
            }
            AdoptError::WalAppend { kind } => {
                write!(f, "write-ahead log append failed ({kind:?}); adopt refused")
            }
        }
    }
}

impl std::error::Error for AdoptError {}

/// What an [`ClassifierHandle::adopt`] swap did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdoptReport {
    /// The epoch the swapped-in tree was published at.
    pub epoch: u64,
    /// Rules inserted after the snapshot was taken, routed into the
    /// grafted structure during the swap.
    pub reconciled_inserts: usize,
    /// Rules deleted after the snapshot was taken, dropped from the
    /// grafted leaf lists during the swap.
    pub reconciled_deletes: usize,
    /// Leaf placements restored for snapshot-time rules: the template
    /// builder may truncate rules covered by higher-precedence ones,
    /// and a post-snapshot delete of a coverer makes those reachable
    /// again (0 whenever no deletes needed reconciling).
    pub repaired_placements: usize,
    /// Packets the pre-publish linear-scan spot check verified.
    pub spot_checked: usize,
}

/// A packet at the low corner of every dimension of `rule` — inside the
/// rule whenever its ranges are non-empty. Differential checks add one
/// per overlay rule so overlay-served inserts are actually exercised.
// nc-lint: allow(no-panic-in-serving, reason = "Dim::index() is 0..NUM_DIMS over the fixed [DimRange; NUM_DIMS] array")
fn probe_packet(rule: &Rule) -> Packet {
    Packet::new(
        rule.ranges[Dim::SrcIp.index()].lo,
        rule.ranges[Dim::DstIp.index()].lo,
        rule.ranges[Dim::SrcPort.index()].lo,
        rule.ranges[Dim::DstPort.index()].lo,
        rule.ranges[Dim::Proto.index()].lo,
    )
}

/// The owner of a live classifier: the mutable [`DecisionTree`] plus
/// an atomically swappable compiled snapshot (see module docs).
///
/// Shared by reference (or `Arc`) between one-or-more updater threads
/// and any number of reader threads; all methods take `&self`.
#[derive(Debug)]
pub struct ClassifierHandle {
    state: RwLock<State>,
    /// Published epoch, readable without the lock: readers compare
    /// against [`Snapshot::epoch`] to cheaply detect staleness.
    epoch: AtomicU64,
}

impl ClassifierHandle {
    /// Wrap a built tree for live serving: compiles the initial
    /// snapshot (epoch 0) and takes ownership of the tree.
    pub fn new(tree: DecisionTree, policy: RebuildPolicy) -> Self {
        Self::new_at_epoch(tree, policy, 0)
    }

    /// [`Self::new`], but the initial snapshot publishes at `epoch`
    /// instead of 0. Recovery uses this to resume the epoch line where
    /// the checkpoint froze it, so `checkpoint epoch + replayed WAL
    /// records` lands on exactly the pre-crash epoch (every logged
    /// record publishes exactly one epoch).
    pub fn new_at_epoch(tree: DecisionTree, policy: RebuildPolicy, epoch: u64) -> Self {
        let flat = Arc::new(FlatTree::compile(&tree));
        debug_assert!(!flat.is_stale(&tree));
        let published = Arc::new(Snapshot {
            epoch,
            tree_generation: tree.generation(),
            flat: flat.clone(),
            overlay: Arc::new(Vec::new()),
        });
        ClassifierHandle {
            state: RwLock::new(State {
                tree,
                policy,
                flat,
                overlay: Vec::new(),
                log: UpdateLog::default(),
                rebuilds: 0,
                retrains: 0,
                total_inserted: 0,
                total_deleted: 0,
                published,
                backpressure_rebuilds: 0,
                last_error: None,
                worker_failures: 0,
                worker_degraded: false,
                wal: None,
                checkpoint_generation: None,
                last_recover_error: None,
            }),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The current serving snapshot (one `Arc` clone under a read
    /// lock; the lock is held for nanoseconds, never across lookups).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.state.read().published.clone()
    }

    /// The latest published epoch. A reader whose snapshot reports an
    /// older [`Snapshot::epoch`] should re-fetch; the load is a single
    /// atomic, so polling it per batch costs nothing.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Insert a rule: applied to the tree in place (§4), served from
    /// the overlay until the next recompile. Publishes a new snapshot
    /// before returning. Returns the new rule's stable id.
    ///
    /// Admission control rejects malformed rules (inverted, degenerate
    /// or out-of-span ranges — [`updates::validate_rule`]) and exact
    /// duplicates of an active rule (same ranges and priority; the
    /// error carries the existing id) without touching the serving
    /// state or publishing an epoch. An insert that would grow the
    /// overlay past [`RebuildPolicy::max_overlay`] still lands, but
    /// folds the overlay into a recompile instead of growing it
    /// (backpressure, visible in [`Self::health`]).
    pub fn insert(&self, rule: Rule) -> Result<RuleId, UpdateError> {
        let mut s = self.state.write();
        if let Err(err) = updates::validate_rule(&rule) {
            s.last_error = Some(err.to_string());
            return Err(err);
        }
        if let Some(existing) =
            (0..s.tree.rules().len()).find(|&id| s.tree.is_active(id) && *s.tree.rule(id) == rule)
        {
            let err = UpdateError::DuplicateRule(existing);
            s.last_error = Some(err.to_string());
            return Err(err);
        }
        // Log before mutating: the arena assigns ids by append order,
        // so the id this insert will get is the current arena length —
        // logged and re-verified on replay. A failed append refuses the
        // update with every bit of state untouched.
        let predicted = s.tree.rules().len();
        if let Err(kind) = Self::wal_append_locked(
            &mut s,
            &wal::WalRecord::Insert { id: predicted, rule: rule.clone() },
        ) {
            return Err(UpdateError::WalAppend { kind });
        }
        let id = updates::insert_rule(&mut s.tree, rule.clone());
        debug_assert_eq!(id, predicted, "arena ids are assigned by append order");
        s.log.inserted += 1;
        s.total_inserted += 1;
        if s.policy.should_rebuild(&s.log, s.tree.num_active_rules()) {
            Self::rebuild_locked(&mut s);
        } else if s.overlay.len() >= s.policy.max_overlay {
            // Overlay at its hard bound: fold everything (the new rule
            // is already in the tree) instead of growing the per-lookup
            // scan — the OverlayFull backpressure signal.
            s.backpressure_rebuilds += 1;
            s.last_error = Some(UpdateError::OverlayFull { cap: s.policy.max_overlay }.to_string());
            Self::rebuild_locked(&mut s);
        } else {
            // Keep the overlay precedence-sorted so lookups take the
            // first match.
            let pos = s
                .overlay
                .iter()
                .position(|(oid, r)| {
                    rule.priority > r.priority || (rule.priority == r.priority && id < *oid)
                })
                .unwrap_or(s.overlay.len());
            s.overlay.insert(pos, (id, rule));
        }
        self.publish_locked(&mut s);
        Ok(id)
    }

    /// Delete a rule: applied to the tree in place, then either dropped
    /// from the overlay (not-yet-compiled rules) or patched out of a
    /// copy-on-write clone of the compiled tree
    /// ([`FlatTree::patch_delete`]). Publishes a new snapshot before
    /// returning. Errors on unknown/already-deleted ids without
    /// touching the serving state.
    pub fn delete(&self, id: RuleId) -> Result<(), UpdateError> {
        let mut s = self.state.write();
        // Admission-check first (mirroring `delete_rule`'s own guards)
        // so only deletes that will actually land reach the WAL; then
        // log before mutating.
        let err = if id >= s.tree.rules().len() {
            Some(UpdateError::UnknownRule(id))
        } else if !s.tree.is_active(id) {
            Some(UpdateError::InactiveRule(id))
        } else {
            None
        };
        if let Some(err) = err {
            s.last_error = Some(err.to_string());
            return Err(err);
        }
        if let Err(kind) = Self::wal_append_locked(&mut s, &wal::WalRecord::Delete { id }) {
            return Err(UpdateError::WalAppend { kind });
        }
        if let Err(err) = updates::delete_rule(&mut s.tree, id) {
            s.last_error = Some(err.to_string());
            return Err(err);
        }
        s.log.deleted += 1;
        s.total_deleted += 1;
        // Check the rebuild policy *first*: when this delete tips the
        // churn over the threshold, the recompile supersedes both the
        // overlay removal and the copy-on-write patch (whose clone
        // would otherwise be paid and immediately thrown away).
        if s.policy.should_rebuild(&s.log, s.tree.num_active_rules()) {
            Self::rebuild_locked(&mut s);
        } else if let Some(pos) = s.overlay.iter().position(|(oid, _)| *oid == id) {
            s.overlay.remove(pos);
        } else {
            // Advance the compiled tree's freshness stamp only when the
            // patch leaves it reflecting the tree exactly; while overlay
            // inserts are pending, the flat alone is genuinely stale
            // (it misses those rules) and must keep saying so.
            let generation =
                if s.overlay.is_empty() { s.tree.generation() } else { s.flat.generation() };
            // Readers hold the current Arc, so make_mut clones once
            // (copy-on-write) and the patch lands in the new copy.
            Arc::make_mut(&mut s.flat).patch_delete(id, generation);
        }
        self.publish_locked(&mut s);
        Ok(())
    }

    /// Recompile now regardless of churn (e.g. after a retrain).
    ///
    /// Counter semantics are identical to a policy-triggered rebuild:
    /// the log resets, the overlay folds into the table, and
    /// [`UpdateStats::rebuilds`] counts the recompile. Lifetime
    /// counters ([`UpdateStats::total_inserted`]/`total_deleted`) are
    /// never reset by either path.
    ///
    /// With a WAL attached the rebuild is logged first (it publishes an
    /// epoch, and every published epoch must be one durable record); if
    /// the append fails the rebuild is skipped — the sticky
    /// [`HealthReport::last_error`] records why — because publishing an
    /// unlogged epoch would silently desynchronise recovery.
    pub fn force_rebuild(&self) {
        let mut s = self.state.write();
        if Self::wal_append_locked(&mut s, &wal::WalRecord::Rebuild).is_err() {
            return;
        }
        Self::rebuild_locked(&mut s);
        self.publish_locked(&mut s);
    }

    /// Freeze the current active rule set for an off-lock retrain. The
    /// returned snapshot carries the id map [`ClassifierHandle::adopt`]
    /// needs to graft a tree built over it back into this handle.
    ///
    /// Cheap relative to training: one pass over the arena under a read
    /// lock (readers are unaffected, updates wait for the copy).
    pub fn rule_snapshot(&self) -> RuleSnapshot {
        let s = self.state.read();
        let mut pairs: Vec<(RuleId, Rule)> = (0..s.tree.rules().len())
            .filter(|&id| s.tree.is_active(id))
            .map(|id| (id, s.tree.rule(id).clone()))
            .collect();
        // Stable sort by descending priority: exactly the order
        // `RuleSet::new` imposes, with ascending handle id as the tie
        // order — so snapshot-id precedence maps onto handle-id
        // precedence and grafting preserves every tie-break.
        pairs.sort_by_key(|(_, r)| std::cmp::Reverse(r.priority));
        let map: Vec<RuleId> = pairs.iter().map(|&(id, _)| id).collect();
        let rules = RuleSet::new(pairs.into_iter().map(|(_, r)| r).collect());
        RuleSnapshot { rules, map, generation: s.tree.generation(), epoch: s.published.epoch }
    }

    /// Swap in an externally built tree (typically a background retrain
    /// over [`Self::rule_snapshot`]) through the epoch-swap protocol:
    ///
    /// 1. graft the template's structure onto the live rule arena
    ///    ([`DecisionTree::graft`]);
    /// 2. reconcile updates that landed after the snapshot — deletes
    ///    drop out of the grafted leaf lists, inserts route in, and any
    ///    template truncation exposed by a delete is repaired, so the
    ///    grafted tree serves exactly the *current* rule set;
    /// 3. spot-check the graft against the linear-scan ground truth
    ///    over `spot_check` plus one probe packet per pending overlay
    ///    rule — a failure abandons the swap with the serving state
    ///    untouched;
    /// 4. recompile, fold the overlay, reset the churn log, and publish
    ///    one new epoch — atomically from any reader's point of view.
    ///
    /// Readers never pause; updates wait (write lock) for the graft +
    /// compile, the same stall a policy rebuild already imposes.
    pub fn adopt(
        &self,
        template: &DecisionTree,
        snap: &RuleSnapshot,
        spot_check: &[Packet],
    ) -> Result<AdoptReport, AdoptError> {
        let mut s = self.state.write();
        // A snapshot from a different handle (or one whose arena ids
        // outrun ours) would index out of bounds below; reject it as a
        // typed error instead of panicking under the write lock.
        if snap.map.len() != snap.rules.len()
            || snap.map.iter().any(|&id| id >= s.tree.rules().len())
        {
            let err = AdoptError::ForeignSnapshot {
                max_id: snap.map.iter().copied().max().unwrap_or(0),
                arena: s.tree.rules().len(),
            };
            s.last_error = Some(err.to_string());
            return Err(err);
        }
        if template.rules() != snap.rules.rules() {
            let err = AdoptError::TemplateMismatch {
                expected: snap.rules.len(),
                got: template.rules().len(),
            };
            s.last_error = Some(err.to_string());
            return Err(err);
        }
        let mut grafted = DecisionTree::graft(template, &snap.map, &s.tree);
        let mut in_snap = vec![false; s.tree.rules().len()];
        for &id in &snap.map {
            // nc-lint: allow(no-panic-in-serving, reason = "snapshot maps are minted by rule_snapshot from this arena; foreign snapshots were rejected above")
            in_snap[id] = true;
        }
        // Post-snapshot deletes: the grafted active flags (copied from
        // the live tree) already exclude them from matching and
        // compilation; dropping them from the leaf lists is the same
        // hygiene `delete_rule` applies.
        let mut deletes = 0usize;
        for &id in &snap.map {
            if !grafted.is_active(id) {
                updates::route_remove(&mut grafted, id);
                deletes += 1;
            }
        }
        // Post-snapshot inserts route in; and once any snapshot rule
        // was deleted, leaves the template truncated under that rule's
        // cover may be missing rules that are now reachable again, so
        // every snapshot rule gets the full routing guarantee too. With
        // zero deletes every truncation is still covered by an active
        // rule and snapshot rules are known-placed, so only the new
        // inserts need routing.
        let mut inserts = 0usize;
        let mut repaired = 0usize;
        for (id, &snapped) in in_snap.iter().enumerate() {
            if !grafted.is_active(id) {
                continue;
            }
            if !snapped {
                updates::ensure_rule(&mut grafted, id);
                inserts += 1;
            } else if deletes > 0 {
                repaired += updates::ensure_rule(&mut grafted, id);
            }
        }
        // Certify before anything is published: the graft must agree
        // with the linear-scan ground truth over the caller's trace and
        // a probe inside every overlay-served insert.
        let diverged = spot_check
            .iter()
            .copied()
            .chain(s.overlay.iter().map(|(_, r)| probe_packet(r)))
            .find(|p| grafted.classify(p) != grafted.linear_classify(p));
        if let Some(p) = diverged {
            let err = AdoptError::Diverged(p);
            s.last_error = Some(err.to_string());
            return Err(err);
        }
        // Spot check passed — log the swap before performing it. An
        // Adopt record replays as a rebuild: classification-identical
        // by the spot-check contract just proven; the adopted tree
        // *shape* becomes durable when its checkpoint lands.
        if let Err(kind) = Self::wal_append_locked(&mut s, &wal::WalRecord::Adopt) {
            return Err(AdoptError::WalAppend { kind });
        }
        let spot_checked = spot_check.len() + s.overlay.len();
        s.tree = grafted;
        Self::rebuild_locked(&mut s);
        s.retrains += 1;
        self.publish_locked(&mut s);
        Ok(AdoptReport {
            epoch: s.published.epoch,
            reconciled_inserts: inserts,
            reconciled_deletes: deletes,
            repaired_placements: repaired,
            spot_checked,
        })
    }

    /// Differential certification under one consistent view: a single
    /// read-lock acquisition grabs the published snapshot, recompiles
    /// the tree from scratch, and synthesises one probe packet inside
    /// every pending overlay rule; the comparison then runs lock-free.
    /// Returns the first diverging packet (`None` = certified). The
    /// probes matter: a snapshot taken mid-overlay serves inserts the
    /// compiled table does not know about, and an arbitrary trace may
    /// never hit them.
    pub fn check_divergence(&self, trace: &[Packet]) -> Option<Packet> {
        let (snap, rebuilt, probes) = {
            let s = self.state.read();
            let probes: Vec<Packet> = s.overlay.iter().map(|(_, r)| probe_packet(r)).collect();
            (s.published.clone(), FlatTree::compile(&s.tree), probes)
        };
        let mut got = vec![None; trace.len()];
        snap.classify_batch(trace, &mut got);
        for (p, g) in trace.iter().zip(&got) {
            if *g != rebuilt.classify(p) {
                return Some(*p);
            }
        }
        probes.into_iter().find(|p| snap.classify(p) != rebuilt.classify(p))
    }

    /// Current update counters.
    pub fn stats(&self) -> UpdateStats {
        let s = self.state.read();
        UpdateStats {
            epoch: s.published.epoch,
            rebuilds: s.rebuilds,
            retrains: s.retrains,
            log: s.log,
            total_inserted: s.total_inserted,
            total_deleted: s.total_deleted,
            active_rules: s.tree.num_active_rules(),
            overlay_len: s.overlay.len(),
        }
    }

    /// A point-in-time health report for operators and the CLI: the
    /// lifecycle worker's failure streak and degraded flag (pushed via
    /// [`Self::note_worker_health`]), overlay occupancy against its
    /// bound, epoch lag (updates published since the last recompile —
    /// how far the compiled table trails the live rule set), rebuilds
    /// forced by overlay backpressure, and the last recorded error.
    pub fn health(&self) -> HealthReport {
        let s = self.state.read();
        HealthReport {
            consecutive_failures: s.worker_failures,
            degraded: s.worker_degraded,
            overlay_len: s.overlay.len(),
            overlay_cap: s.policy.max_overlay,
            epoch_lag: s.log.total() as u64,
            backpressure_rebuilds: s.backpressure_rebuilds,
            last_error: s.last_error.clone(),
            wal_len: s.wal.as_ref().map(wal::WalWriter::appended),
            checkpoint_generation: s.checkpoint_generation,
            last_recover_error: s.last_recover_error.clone(),
        }
    }

    /// Record the lifecycle worker's view of its own health so
    /// [`Self::health`] reports one merged picture. `last_error` is
    /// sticky: `None` leaves the previous record in place (errors are
    /// diagnostics, not state — only a new error overwrites).
    pub fn note_worker_health(
        &self,
        consecutive_failures: u64,
        degraded: bool,
        last_error: Option<String>,
    ) {
        let mut s = self.state.write();
        s.worker_failures = consecutive_failures;
        s.worker_degraded = degraded;
        if last_error.is_some() {
            s.last_error = last_error;
        }
    }

    /// Churn accumulated since the last recompile.
    pub fn churn(&self) -> f64 {
        let s = self.state.read();
        s.log.churn(s.tree.num_active_rules())
    }

    /// Run `f` against the owned tree (read lock held for the call).
    /// The differential tests use this to rebuild from scratch and
    /// compare; production readers should use [`Self::snapshot`].
    pub fn with_tree<R>(&self, f: impl FnOnce(&DecisionTree) -> R) -> R {
        f(&self.state.read().tree)
    }

    /// Attach a write-ahead log running ahead of checkpoint
    /// `generation`: every subsequently admitted insert, delete, adopt,
    /// and forced rebuild is appended (and refused on append failure)
    /// *before* it mutates the serving state. Replaces any previously
    /// attached writer.
    pub fn attach_wal(&self, writer: wal::WalWriter, generation: u64) {
        let mut s = self.state.write();
        s.wal = Some(writer);
        s.checkpoint_generation = Some(generation);
    }

    /// Atomically freeze a checkpoint image and rotate the WAL: under
    /// one write-lock acquisition, `make_writer` is called with the LSN
    /// the next record must carry (so the LSN line continues unbroken
    /// across generations), the new writer replaces the old (which is
    /// synced and retired), and the tree + epoch are cloned out as the
    /// image the caller must now write durably as checkpoint
    /// `generation`. No update can slip between the image and the
    /// rotation — that is the crash-consistency pivot: every admitted
    /// op is either inside the returned image or in the new WAL.
    ///
    /// If `make_writer` fails nothing changes (same writer, same
    /// generation).
    pub fn rotate_wal<E>(
        &self,
        generation: u64,
        make_writer: impl FnOnce(u64) -> Result<wal::WalWriter, E>,
    ) -> Result<(DecisionTree, u64), E> {
        let mut s = self.state.write();
        let next_lsn = s.wal.as_ref().map_or(0, wal::WalWriter::next_lsn);
        let writer = make_writer(next_lsn)?;
        if let Some(mut old) = s.wal.replace(writer) {
            // Best-effort: flush the retired generation's sync batch.
            // Its records were already `write`-visible (process-crash
            // durable); this closes the power-loss window before the
            // file is superseded by the checkpoint being written.
            let _ = old.sync();
        }
        s.checkpoint_generation = Some(generation);
        Ok((s.tree.clone(), s.published.epoch))
    }

    /// Record the outcome of the recovery that built this handle:
    /// the checkpoint generation resumed from and, sticky, any
    /// truncated-tail note (surfaced by [`Self::health`]).
    pub fn note_recovery(&self, generation: u64, note: Option<String>) {
        let mut s = self.state.write();
        s.checkpoint_generation = Some(generation);
        if note.is_some() {
            s.last_recover_error = note;
        }
    }

    /// Append to the attached WAL (no-op without one). On failure the
    /// full error lands in the sticky `last_error` and the I/O class is
    /// returned — callers refuse the mutation, so the durable log never
    /// trails the served state.
    fn wal_append_locked(s: &mut State, record: &wal::WalRecord) -> Result<(), std::io::ErrorKind> {
        let Some(w) = s.wal.as_mut() else { return Ok(()) };
        match w.append(record) {
            Ok(_) => Ok(()),
            Err(err) => {
                s.last_error = Some(format!("wal append refused the update: {err}"));
                Err(err.io_kind())
            }
        }
    }

    fn rebuild_locked(s: &mut State) {
        s.flat = Arc::new(FlatTree::compile(&s.tree));
        s.overlay.clear();
        s.log = UpdateLog::default();
        s.rebuilds += 1;
        // A freshly compiled snapshot must never be stale.
        debug_assert!(!s.flat.is_stale(&s.tree));
    }

    fn publish_locked(&self, s: &mut State) {
        let epoch = s.published.epoch + 1;
        // No generation-lockstep assert here: the generation counts
        // *mutations*, not content, so an insert that round-trips
        // through the overlay (insert then delete before any rebuild)
        // legitimately leaves the compiled tree generations behind while
        // still content-identical. The snapshot records the tree
        // generation it serves; the differential churn tests pin the
        // content claim.
        s.published = Arc::new(Snapshot {
            epoch,
            tree_generation: s.tree.generation(),
            flat: s.flat.clone(),
            overlay: Arc::new(s.overlay.clone()),
        });
        self.epoch.store(epoch, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classbench::{
        generate_rules, generate_trace, ClassifierFamily, Dim, DimRange, GeneratorConfig,
        TraceConfig,
    };

    fn built_tree(seed: u64) -> (DecisionTree, classbench::RuleSet) {
        let rules =
            generate_rules(&GeneratorConfig::new(ClassifierFamily::Acl, 150).with_seed(seed));
        let mut tree = DecisionTree::new(&rules);
        for k in tree.cut_node(tree.root(), Dim::SrcIp, 8) {
            if !tree.is_terminal(k, 8) {
                tree.cut_node(k, Dim::DstIp, 4);
            }
        }
        (tree, rules)
    }

    /// The snapshot must serve exactly what a from-scratch recompile of
    /// the handle's current tree serves.
    fn assert_snapshot_matches_rebuild(handle: &ClassifierHandle, trace: &[Packet]) {
        let snap = handle.snapshot();
        let rebuilt = handle.with_tree(FlatTree::compile);
        let mut batch = vec![None; trace.len()];
        snap.classify_batch(trace, &mut batch);
        for (i, p) in trace.iter().enumerate() {
            let want = rebuilt.classify(p);
            assert_eq!(snap.classify(p), want, "snapshot vs rebuild at {p}");
            assert_eq!(batch[i], want, "snapshot batch vs rebuild at {p}");
        }
    }

    #[test]
    fn inserts_are_served_without_recompile() {
        let (tree, rules) = built_tree(30);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(31));
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();

        let mut r = Rule::default_rule(top + 1);
        r.ranges[Dim::Proto.index()] = DimRange::exact(6);
        let id = handle.insert(r).unwrap();
        assert_eq!(handle.stats().overlay_len, 1);
        assert_eq!(handle.stats().rebuilds, 0);

        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), 1);
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(snap.classify(&p), Some(id), "overlay insert must win");
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn deletes_patch_the_compiled_tree() {
        let (tree, rules) = built_tree(32);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(33));
        for victim in [0usize, 5, 17] {
            handle.delete(victim).unwrap();
        }
        assert_eq!(handle.stats().rebuilds, 0);
        assert_eq!(handle.stats().log.deleted, 3);
        assert_snapshot_matches_rebuild(&handle, &trace);
        // Double delete surfaces as an error, not a panic, and does not
        // publish a new epoch.
        let epoch = handle.epoch();
        assert_eq!(handle.delete(0), Err(UpdateError::InactiveRule(0)));
        assert_eq!(handle.epoch(), epoch);
    }

    #[test]
    fn insert_then_delete_roundtrips_through_overlay() {
        let (tree, rules) = built_tree(34);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let id = handle.insert(Rule::default_rule(top + 5)).unwrap();
        assert_eq!(handle.stats().overlay_len, 1);
        handle.delete(id).unwrap();
        assert_eq!(handle.stats().overlay_len, 0, "overlay delete must not touch the flat");
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(35));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn rebuild_policy_triggers_and_resets_the_log() {
        let (tree, rules) = built_tree(36);
        let n = tree.num_active_rules();
        // 10% churn at min_updates 4: the 15th update on 150 rules.
        let policy = RebuildPolicy { max_churn: 0.10, min_updates: 4, max_overlay: 256 };
        let handle = ClassifierHandle::new(tree, policy);
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let mut rebuilds_seen = 0;
        for i in 0..40 {
            let before = handle.stats();
            handle.insert(Rule::default_rule(top + 1 + i)).unwrap();
            let after = handle.stats();
            if after.rebuilds > before.rebuilds {
                rebuilds_seen += 1;
                assert_eq!(after.log, UpdateLog::default(), "rebuild must reset the log");
                assert_eq!(after.overlay_len, 0, "rebuild must clear the overlay");
            }
        }
        assert!(rebuilds_seen >= 1, "40 inserts on {n} rules must cross 10% churn");
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(37));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn policy_decision_matches_churn_arithmetic() {
        let policy = RebuildPolicy { max_churn: 0.10, min_updates: 8, max_overlay: 256 };
        let mut log = UpdateLog::default();
        assert!(!policy.should_rebuild(&log, 100));
        log.inserted = 7;
        // 7 updates: churn lower than min_updates gate.
        assert!(!policy.should_rebuild(&log, 10), "min_updates must gate early rebuilds");
        log.inserted = 8;
        log.deleted = 2;
        assert!(policy.should_rebuild(&log, 100), "10/100 = 10% churn");
        assert!(!policy.should_rebuild(&log, 101), "10/101 < 10% churn");
        assert!(!RebuildPolicy::never().should_rebuild(&log, 1));
    }

    #[test]
    fn epoch_counter_tracks_publishes() {
        let (tree, _) = built_tree(38);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.snapshot().epoch(), 0);
        handle.insert(Rule::default_rule(9_999)).unwrap();
        assert_eq!(handle.epoch(), 1);
        handle.delete(0).unwrap();
        assert_eq!(handle.epoch(), 2);
        // An old snapshot keeps serving, but its epoch reveals it.
        let old = handle.snapshot();
        handle.insert(Rule::default_rule(10_000)).unwrap();
        assert!(old.epoch() < handle.epoch());
        assert_eq!(handle.snapshot().epoch(), handle.epoch());
    }

    #[test]
    fn force_rebuild_compiles_overlay_into_the_table() {
        let (tree, rules) = built_tree(39);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        for i in 0..5 {
            handle.insert(Rule::default_rule(top + 1 + i)).unwrap();
        }
        assert_eq!(handle.stats().overlay_len, 5);
        handle.force_rebuild();
        let s = handle.stats();
        assert_eq!(s.overlay_len, 0);
        assert_eq!(s.rebuilds, 1);
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(40));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn compiled_flat_stays_stale_while_overlay_inserts_are_pending() {
        // A delete patch must not launder staleness: with an overlay
        // insert pending, the compiled FlatTree alone misses that rule,
        // so even after a patched delete it must keep reporting stale
        // (the *snapshot* serves correctly — the overlay supplies the
        // missing rule — but the bare flat does not).
        let (tree, rules) = built_tree(44);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        handle.insert(Rule::default_rule(top + 1)).unwrap();
        handle.delete(0).unwrap();
        let snap = handle.snapshot();
        let p = Packet::new(1, 2, 3, 4, 6);
        handle.with_tree(|t| {
            assert!(snap.flat().is_stale(t), "flat misses the overlay insert");
            assert!(snap.flat().classify_checked(t, &p).is_err());
        });
        // The snapshot itself still serves rebuild-identical results.
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(45));
        assert_snapshot_matches_rebuild(&handle, &trace);
        // Once the overlay is folded in by a rebuild, the compiled
        // tree is the whole truth again and freshness returns.
        handle.force_rebuild();
        let snap = handle.snapshot();
        handle.with_tree(|t| {
            assert!(!snap.flat().is_stale(t));
            assert!(snap.flat().classify_checked(t, &p).is_ok());
        });
    }

    #[test]
    fn force_rebuild_counter_semantics_match_the_policy_path() {
        // Satellite: a manual rebuild must read exactly like a policy
        // rebuild — log reset, overlay folded, `rebuilds` incremented —
        // while the lifetime counters keep the full history.
        let (tree, rules) = built_tree(46);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        for i in 0..6 {
            handle.insert(Rule::default_rule(top + 1 + i)).unwrap();
        }
        handle.delete(3).unwrap();
        let before = handle.stats();
        assert_eq!(before.log, UpdateLog { inserted: 6, deleted: 1 });
        handle.force_rebuild();
        let after = handle.stats();
        assert_eq!(after.log, UpdateLog::default(), "manual rebuild must reset the log");
        assert_eq!(after.overlay_len, 0);
        assert_eq!(after.rebuilds, before.rebuilds + 1, "manual rebuilds must be counted");
        assert_eq!(after.total_inserted, 6, "lifetime counters survive the rebuild");
        assert_eq!(after.total_deleted, 1);
        assert_eq!(after.lifetime_updates(), 7);
        // The policy path reads identically: a policy-triggered rebuild
        // leaves the same reset log and the next counter value.
        let (tree2, _) = built_tree(46);
        let policy = RebuildPolicy { max_churn: 0.001, min_updates: 1, max_overlay: 256 };
        let h2 = ClassifierHandle::new(tree2, policy);
        h2.insert(Rule::default_rule(top + 50)).unwrap();
        let s2 = h2.stats();
        assert_eq!(s2.log, UpdateLog::default());
        assert_eq!(s2.rebuilds, 1);
        assert_eq!(s2.total_inserted, 1);
    }

    #[test]
    fn emptied_classifier_stays_finite_and_recovers() {
        // Satellite: deleting every rule must not wedge the handle or
        // the policy — churn stays finite, an empty tree compiles, and
        // the classifier accepts new rules afterwards.
        let rules = classbench::RuleSet::from_ordered(vec![
            Rule::default_rule(0),
            Rule::default_rule(0),
            Rule::default_rule(0),
            Rule::default_rule(0),
            Rule::default_rule(0),
        ]);
        let tree = DecisionTree::new(&rules);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        for id in 0..5 {
            handle.delete(id).unwrap();
        }
        let s = handle.stats();
        assert_eq!(s.active_rules, 0);
        assert!(handle.churn().is_finite(), "zero active rules must not yield NaN/inf churn");
        assert_eq!(handle.churn(), 5.0);
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(handle.snapshot().classify(&p), None);
        // An empty tree recompiles without panicking, and the rebuild
        // resets the churn signal instead of latching it.
        handle.force_rebuild();
        assert_eq!(handle.churn(), 0.0);
        assert_eq!(handle.snapshot().classify(&p), None);
        let id = handle.insert(Rule::default_rule(1)).unwrap();
        assert_eq!(handle.snapshot().classify(&p), Some(id));
    }

    #[test]
    fn policy_rebuild_fires_once_on_an_emptied_classifier() {
        let rules = classbench::RuleSet::from_ordered(vec![
            Rule::default_rule(0),
            Rule::default_rule(0),
            Rule::default_rule(0),
            Rule::default_rule(0),
            Rule::default_rule(0),
        ]);
        let tree = DecisionTree::new(&rules);
        let policy = RebuildPolicy { max_churn: 0.5, min_updates: 3, max_overlay: 256 };
        let handle = ClassifierHandle::new(tree, policy);
        for id in 0..5 {
            handle.delete(id).unwrap();
        }
        let s = handle.stats();
        assert!(s.rebuilds >= 1, "crossing the churn threshold must rebuild");
        assert!(
            s.log.total() < policy.min_updates,
            "the log resets after each rebuild instead of permanently re-triggering"
        );
        assert_eq!(s.total_deleted, 5);
    }

    #[test]
    fn rule_snapshot_freezes_priority_ordered_rules() {
        let (tree, rules) = built_tree(47);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        handle.insert(Rule::default_rule(top + 9)).unwrap();
        handle.delete(2).unwrap();
        let snap = handle.rule_snapshot();
        assert_eq!(snap.len(), handle.stats().active_rules);
        assert!(!snap.is_empty());
        assert_eq!(snap.epoch(), handle.epoch());
        // Priority-ordered, and every entry maps back to the live rule
        // it was copied from.
        for i in 0..snap.len() {
            if i > 0 {
                assert!(snap.rules().rule(i - 1).priority >= snap.rules().rule(i).priority);
            }
            let handle_id = snap.map()[i];
            handle.with_tree(|t| {
                assert!(t.is_active(handle_id));
                assert_eq!(t.rule(handle_id), snap.rules().rule(i));
            });
        }
    }

    #[test]
    fn adopt_swaps_in_an_externally_built_tree() {
        let (tree, rules) = built_tree(48);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(49));
        let snap = handle.rule_snapshot();
        // "Retrain" out of band: a differently shaped tree over the
        // frozen snapshot (stands in for a Trainer run).
        let mut template = DecisionTree::new(snap.rules());
        for k in template.cut_node(template.root(), Dim::DstIp, 16) {
            if !template.is_terminal(k, 8) {
                template.cut_node(k, Dim::SrcIp, 4);
            }
        }
        let epoch_before = handle.epoch();
        let report = handle.adopt(&template, &snap, &trace).expect("clean adopt");
        assert_eq!(report.epoch, epoch_before + 1, "one atomic epoch swap");
        assert_eq!(report.reconciled_inserts, 0);
        assert_eq!(report.reconciled_deletes, 0);
        assert_eq!(report.spot_checked, trace.len());
        let s = handle.stats();
        assert_eq!(s.retrains, 1);
        assert_eq!(s.rebuilds, 1, "an adopt is also a rebuild");
        assert_eq!(s.overlay_len, 0);
        assert_eq!(s.log, UpdateLog::default(), "adopt folds the churn log atomically");
        // The handle now serves the template's structure over its own
        // rule ids, bit-identical to a recompile.
        handle.with_tree(|t| {
            assert_eq!(t.node(t.root()).kind.children().len(), 16, "template shape adopted");
        });
        assert_snapshot_matches_rebuild(&handle, &trace);
        assert_eq!(handle.check_divergence(&trace), None);
    }

    #[test]
    fn adopt_reconciles_post_snapshot_updates() {
        let (tree, rules) = built_tree(50);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let trace = generate_trace(&rules, &TraceConfig::new(300).with_seed(51));
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let snap = handle.rule_snapshot();
        // Updates land while the "retrain" is in flight.
        let late: Vec<RuleId> =
            (0..3).map(|i| handle.insert(Rule::default_rule(top + 1 + i)).unwrap()).collect();
        handle.delete(0).unwrap();
        handle.delete(7).unwrap();
        let mut template = DecisionTree::new(snap.rules());
        template.cut_node(template.root(), Dim::SrcIp, 8);
        let report = handle.adopt(&template, &snap, &trace).expect("clean adopt");
        assert_eq!(report.reconciled_inserts, 3, "post-snapshot inserts routed in");
        assert_eq!(report.reconciled_deletes, 2, "post-snapshot deletes dropped");
        assert_eq!(
            report.spot_checked,
            trace.len() + 3,
            "overlay-served inserts get probe packets in the spot check"
        );
        // Late inserts are served, deleted rules are not.
        let p = Packet::new(1, 2, 3, 4, 6);
        let got = handle.snapshot().classify(&p);
        assert_eq!(got, Some(late[2]), "highest-priority late insert must win");
        handle.with_tree(|t| {
            assert!(!t.is_active(0));
            assert!(!t.is_active(7));
        });
        assert_snapshot_matches_rebuild(&handle, &trace);
        assert_eq!(handle.check_divergence(&trace), None);
    }

    #[test]
    fn adopt_rejects_a_template_built_for_other_rules() {
        let (tree, _) = built_tree(52);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let snap = handle.rule_snapshot();
        let other = generate_rules(&GeneratorConfig::new(ClassifierFamily::Fw, 60).with_seed(53));
        let template = DecisionTree::new(&other);
        let epoch = handle.epoch();
        match handle.adopt(&template, &snap, &[]) {
            Err(AdoptError::TemplateMismatch { expected, got }) => {
                assert_eq!(expected, snap.len());
                assert_eq!(got, 60);
            }
            other => panic!("expected TemplateMismatch, got {other:?}"),
        }
        assert_eq!(handle.epoch(), epoch, "a rejected adopt publishes nothing");
    }

    #[test]
    fn adopt_spot_check_blocks_a_divergent_template() {
        // A template whose leaf lists secretly dropped a live rule must
        // be caught by the pre-publish linear-scan spot check and leave
        // the serving state untouched.
        let (tree, _) = built_tree(54);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let snap = handle.rule_snapshot();
        let mut template = DecisionTree::new(snap.rules());
        template.cut_node(template.root(), Dim::SrcIp, 8);
        // Sabotage: deactivating in the template removes rule 0 from
        // its leaves but leaves the arena content (checked by adopt)
        // intact — the graft then misses a rule that is live in the
        // handle.
        updates::delete_rule(&mut template, 0).unwrap();
        let victim = snap.rules().rule(0);
        let probe = Packet::new(
            victim.ranges[Dim::SrcIp.index()].lo,
            victim.ranges[Dim::DstIp.index()].lo,
            victim.ranges[Dim::SrcPort.index()].lo,
            victim.ranges[Dim::DstPort.index()].lo,
            victim.ranges[Dim::Proto.index()].lo,
        );
        let epoch = handle.epoch();
        match handle.adopt(&template, &snap, &[probe]) {
            Err(AdoptError::Diverged(p)) => assert_eq!(p, probe),
            other => panic!("expected Diverged, got {other:?}"),
        }
        assert_eq!(handle.epoch(), epoch, "a failed spot check publishes nothing");
        assert_eq!(handle.stats().retrains, 0);
    }

    #[test]
    fn check_divergence_probes_overlay_served_inserts() {
        // With an empty trace, certification still exercises pending
        // overlay rules through synthesised probe packets — a snapshot
        // taken mid-overlay is certified on the inserts it serves.
        let (tree, rules) = built_tree(58);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let mut r = Rule::default_rule(top + 1);
        r.ranges[Dim::Proto.index()] = DimRange::exact(17);
        handle.insert(r).unwrap();
        assert_eq!(handle.stats().overlay_len, 1);
        assert_eq!(handle.check_divergence(&[]), None);
    }

    #[test]
    fn duplicate_priorities_tiebreak_by_id_across_overlay_and_table() {
        // Two identical-priority rules covering the probe: one
        // compiled, one in the overlay (its SrcIp range narrowed so
        // admission control does not flag it as an exact duplicate).
        // The compiled one has the lower id, so it must keep winning —
        // the merge tie-break is (priority, lower id), same as the
        // arena and the linear scan.
        let rules = classbench::RuleSet::new(vec![Rule::default_rule(7)]);
        let tree = DecisionTree::new(&rules);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let mut twin = Rule::default_rule(7);
        twin.ranges[Dim::SrcIp.index()] = DimRange::new(0, 1 << 16);
        let dup = handle.insert(twin).unwrap();
        let p = Packet::new(1, 1, 1, 1, 1);
        let snap = handle.snapshot();
        assert_eq!(snap.classify(&p), Some(0), "lower id must win the tie");
        assert_eq!(handle.with_tree(|t| t.classify(&p)), Some(0));
        // Delete the compiled one: now the overlay rule wins.
        handle.delete(0).unwrap();
        assert_eq!(handle.snapshot().classify(&p), Some(dup));
    }

    #[test]
    fn admission_rejects_malformed_and_duplicate_rules_without_publishing() {
        let (tree, rules) = built_tree(60);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let epoch = handle.epoch();
        let stats = handle.stats();

        // Inverted range.
        let mut inverted = Rule::default_rule(9_000);
        inverted.ranges[Dim::SrcPort.index()] = DimRange { lo: 80, hi: 10 };
        match handle.insert(inverted) {
            Err(UpdateError::InvertedRange { dim: Dim::SrcPort, lo: 80, hi: 10 }) => {}
            other => panic!("expected InvertedRange, got {other:?}"),
        }
        // Degenerate (empty) range.
        let mut empty = Rule::default_rule(9_001);
        empty.ranges[Dim::DstIp.index()] = DimRange { lo: 7, hi: 7 };
        assert!(matches!(handle.insert(empty), Err(UpdateError::InvalidRange { .. })));
        // Out-of-span range.
        let mut wide = Rule::default_rule(9_002);
        wide.ranges[Dim::Proto.index()] = DimRange { lo: 0, hi: 300 };
        assert!(matches!(
            handle.insert(wide),
            Err(UpdateError::InvalidRange { dim: Dim::Proto, lo: 0, hi: 300 })
        ));
        // Exact duplicate of an active rule reports the existing id.
        let twin = rules.rules()[3].clone();
        assert_eq!(handle.insert(twin), Err(UpdateError::DuplicateRule(3)));

        // None of the rejections touched the serving state.
        assert_eq!(handle.epoch(), epoch, "rejected inserts publish nothing");
        let after = handle.stats();
        assert_eq!(after.total_inserted, stats.total_inserted);
        assert_eq!(after.active_rules, stats.active_rules);
        assert_eq!(after.overlay_len, 0);
        // But the health report remembers the last rejection.
        let health = handle.health();
        assert!(health.last_error.as_deref().unwrap_or("").contains("already active"));
        // A deleted rule's twin is admissible again: duplicates are
        // checked against *active* rules only.
        handle.delete(3).unwrap();
        handle.insert(rules.rules()[3].clone()).unwrap();
    }

    #[test]
    fn overlay_bound_forces_fold_rebuild_backpressure() {
        let (tree, rules) = built_tree(62);
        let policy =
            RebuildPolicy { max_churn: f64::INFINITY, min_updates: usize::MAX, max_overlay: 4 };
        let handle = ClassifierHandle::new(tree, policy);
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        for i in 0..4 {
            handle.insert(Rule::default_rule(top + 1 + i)).unwrap();
        }
        assert_eq!(handle.stats().overlay_len, 4);
        assert_eq!(handle.stats().rebuilds, 0);
        // The 5th insert would overflow the overlay: it still lands,
        // but folds everything into a recompile instead.
        let id = handle.insert(Rule::default_rule(top + 9)).unwrap();
        let s = handle.stats();
        assert_eq!(s.overlay_len, 0, "backpressure folds the overlay");
        assert_eq!(s.rebuilds, 1);
        let health = handle.health();
        assert_eq!(health.backpressure_rebuilds, 1);
        assert_eq!(health.overlay_cap, 4);
        assert!(health.last_error.as_deref().unwrap_or("").contains("overlay reached its bound"));
        // The folded insert is served.
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(handle.snapshot().classify(&p), Some(id));
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(63));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn health_report_tracks_overlay_epoch_lag_and_worker_state() {
        let (tree, rules) = built_tree(64);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let h0 = handle.health();
        assert_eq!(h0.consecutive_failures, 0);
        assert!(!h0.degraded);
        assert_eq!(h0.overlay_len, 0);
        assert_eq!(h0.epoch_lag, 0);
        assert_eq!(h0.last_error, None);

        handle.insert(Rule::default_rule(top + 1)).unwrap();
        handle.delete(0).unwrap();
        let h1 = handle.health();
        assert_eq!(h1.overlay_len, 1);
        assert_eq!(h1.epoch_lag, 2, "one insert + one delete since the last recompile");

        handle.note_worker_health(3, true, Some("injected retrain panic".into()));
        let h2 = handle.health();
        assert_eq!(h2.consecutive_failures, 3);
        assert!(h2.degraded);
        assert_eq!(h2.last_error.as_deref(), Some("injected retrain panic"));
        // `None` leaves the sticky last_error in place.
        handle.note_worker_health(0, false, None);
        let h3 = handle.health();
        assert_eq!(h3.consecutive_failures, 0);
        assert!(!h3.degraded);
        assert_eq!(h3.last_error.as_deref(), Some("injected retrain panic"));
        // A rebuild clears the epoch lag.
        handle.force_rebuild();
        assert_eq!(handle.health().epoch_lag, 0);
        // Display formats every field (inf cap for a never-policy).
        let line = handle.health().to_string();
        assert!(line.contains("overlay 0/inf"), "got {line}");
    }

    #[test]
    fn overlay_inserted_rule_deleted_before_compile_never_reaches_the_flat() {
        // Satellite: an id that lives only in the overlay and dies
        // before any recompile must never appear in a FlatTree — the
        // delete drops it from the overlay without cloning the flat,
        // and the eventual fold excludes it.
        let (tree, rules) = built_tree(66);
        let handle = ClassifierHandle::new(tree, RebuildPolicy::never());
        let top = rules.rules().iter().map(|r| r.priority).max().unwrap();
        let keep_lo = handle.insert(Rule::default_rule(top + 1)).unwrap();
        let victim = handle.insert(Rule::default_rule(top + 2)).unwrap();
        let keep_hi = handle.insert(Rule::default_rule(top + 3)).unwrap();
        let flat_before = handle.snapshot().flat() as *const FlatTree as usize;
        handle.delete(victim).unwrap();
        let snap = handle.snapshot();
        // The delete was overlay-only: the compiled tree was neither
        // patched nor recompiled (same allocation), and the overlay
        // dropped exactly the victim.
        assert_eq!(snap.flat() as *const FlatTree as usize, flat_before, "flat must be untouched");
        assert_eq!(handle.stats().overlay_len, 2);
        let p = Packet::new(1, 2, 3, 4, 6);
        assert_eq!(snap.classify(&p), Some(keep_hi), "surviving overlay rules keep serving");
        // After the fold, the victim id is gone from the compiled tree
        // too: classify never returns it, the survivors win.
        handle.force_rebuild();
        let folded = handle.snapshot();
        assert_eq!(folded.classify(&p), Some(keep_hi));
        handle.delete(keep_hi).unwrap();
        assert_eq!(handle.snapshot().classify(&p), Some(keep_lo), "victim must not resurface");
        let trace = generate_trace(&rules, &TraceConfig::new(200).with_seed(67));
        assert_snapshot_matches_rebuild(&handle, &trace);
    }

    #[test]
    fn adopt_rejects_a_foreign_snapshot_without_panicking() {
        // A snapshot from a *different* handle whose arena ids outrun
        // ours used to index out of bounds inside adopt; now it is a
        // typed error that leaves the epoch untouched.
        let (big_tree, _) = built_tree(68);
        let big = ClassifierHandle::new(big_tree, RebuildPolicy::never());
        let foreign = big.rule_snapshot();
        let small_rules = classbench::RuleSet::new(vec![Rule::default_rule(1)]);
        let small = ClassifierHandle::new(DecisionTree::new(&small_rules), RebuildPolicy::never());
        let template = DecisionTree::new(foreign.rules());
        let epoch = small.epoch();
        match small.adopt(&template, &foreign, &[]) {
            Err(AdoptError::ForeignSnapshot { max_id, arena }) => {
                assert!(max_id >= arena);
                assert_eq!(arena, 1);
            }
            other => panic!("expected ForeignSnapshot, got {other:?}"),
        }
        assert_eq!(small.epoch(), epoch, "a rejected adopt publishes nothing");
        assert!(small.health().last_error.as_deref().unwrap_or("").contains("arena"));
    }
}
